//! Shared helpers for the FireLedger examples (`cargo run -p
//! fireledger-examples --bin <name>`): small formatting utilities so each
//! example binary stays focused on the protocol usage it demonstrates.

use fireledger_sim::RunSummary;

/// Pretty-prints a run summary as a small report.
pub fn print_summary(title: &str, s: &RunSummary) {
    println!("--- {title} ---");
    println!("  duration            : {:.2} s (simulated)", s.duration_secs);
    println!("  throughput          : {:.0} tx/s ({:.1} blocks/s)", s.tps, s.bps);
    println!("  delivery latency    : avg {:.3} s, p95 {:.3} s", s.avg_latency_secs, s.p95_latency_secs);
    println!("  recoveries per sec  : {:.2}", s.recoveries_per_sec);
    println!("  messages sent       : {}", s.msgs_sent);
}
