//! Shared helpers for the FireLedger examples (`cargo run -p
//! fireledger-examples --bin <name>`): small formatting utilities so each
//! example binary stays focused on the protocol usage it demonstrates.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use fireledger_runtime::RunReport;

/// Pretty-prints a run report as a small summary block.
pub fn print_report(title: &str, r: &RunReport) {
    println!("--- {title} ---");
    println!("  protocol / runtime  : {} / {}", r.protocol, r.runtime);
    println!("  duration            : {:.2} s", r.duration_secs);
    println!(
        "  throughput          : {:.0} tx/s ({:.1} blocks/s)",
        r.tps, r.bps
    );
    println!(
        "  delivery latency    : avg {:.3} s, p95 {:.3} s",
        r.avg_latency_secs, r.p95_latency_secs
    );
    println!("  recoveries per sec  : {:.2}", r.recoveries_per_sec);
    println!("  messages sent       : {}", r.msgs_sent);
}
