//! Quickstart: run a 4-node FireLedger/FLO cluster on the simulator, load it
//! with client transactions, and watch them come out as definitively
//! decided, totally ordered blocks on every node — all through the unified
//! `ClusterBuilder` / `Scenario` / `Runtime` API.
//!
//! Run with: `cargo run -p fireledger-examples --bin quickstart`

use fireledger_examples::print_report;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimTime, Simulation};
use std::time::Duration;

fn main() {
    // 1. Configure a 4-node cluster (tolerating f = 1 Byzantine node) with
    //    small blocks so the output stays readable.
    let params = ProtocolParams::new(4)
        .with_batch_size(5)
        .with_tx_size(128)
        .with_fill_blocks(false) // only order real client transactions
        .with_base_timeout(Duration::from_millis(20));
    let cluster = ClusterBuilder::<FloCluster>::new(params).with_seed(42);

    // 2. Describe the experiment: single data-center links, an open-loop
    //    client submitting transactions, two simulated seconds.
    let scenario = Scenario::new("quickstart")
        .single_dc()
        .open_loop(200.0, 128)
        .run_for(Duration::from_secs(2))
        .with_warmup(Duration::ZERO);

    // 3a. The one-call path: run it and read the unified report.
    let report = Simulator.run(&cluster, &scenario).unwrap();

    // 3b. The inspectable path: drive the same pieces by hand to look at the
    //     individual deliveries (the report only carries aggregates).
    let mut sim = Simulation::with_adversary(
        scenario.sim_config(),
        cluster.build().unwrap(),
        Box::new(scenario.crash_schedule(&cluster.crash_times())),
    );
    for (at, node, tx) in scenario.injection_schedule(4) {
        sim.inject_transaction_at(node, tx, at);
    }
    sim.run_until(SimTime::ZERO + scenario.duration);

    println!("Deliveries at node p0:");
    for d in sim.deliveries(NodeId(0)).iter().take(8) {
        println!(
            "  worker {} round {:>3} proposed by {} : {} txs",
            d.worker,
            d.round,
            d.proposer,
            d.block.len()
        );
    }

    // 4. Every node delivered the same ordered prefix of blocks.
    let reference: Vec<_> = sim
        .deliveries(NodeId(0))
        .iter()
        .map(|d| d.block.header.payload_hash)
        .collect();
    for i in 1..4u32 {
        let other: Vec<_> = sim
            .deliveries(NodeId(i))
            .iter()
            .map(|d| d.block.header.payload_hash)
            .collect();
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "node {i} must agree with node 0"
        );
    }
    println!("\nAll 4 nodes delivered the same totally ordered chain prefix.");
    print_report("quickstart summary", &report);
}
