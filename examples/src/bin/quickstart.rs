//! Quickstart: run a 4-node FireLedger/FLO cluster on the simulator, submit a
//! few client transactions, and watch them come out as definitively decided,
//! totally ordered blocks on every node.
//!
//! Run with: `cargo run -p fireledger-examples --bin quickstart`

use fireledger::prelude::*;
use fireledger_examples::print_summary;
use fireledger_sim::{SimConfig, Simulation};
use std::time::Duration;

fn main() {
    // 1. Configure a 4-node cluster (tolerating f = 1 Byzantine node) with
    //    small blocks so the output stays readable.
    let params = ProtocolParams::new(4)
        .with_batch_size(5)
        .with_tx_size(128)
        .with_fill_blocks(false) // only order real client transactions
        .with_base_timeout(Duration::from_millis(20));
    let nodes = build_cluster(&params, 42);

    // 2. Drive the cluster on the single data-center network model.
    let mut sim = Simulation::new(SimConfig::single_dc(), nodes);

    // 3. Submit a handful of client transactions to different nodes.
    for i in 0..20u64 {
        let target = NodeId((i % 4) as u32);
        let payload = format!("transfer #{i}: alice -> bob : {} coins", 10 + i);
        sim.inject_transaction(target, Transaction::new(1, i, payload.into_bytes()), Duration::from_millis(i));
    }

    // 4. Run for two simulated seconds.
    sim.run_for(Duration::from_secs(2));

    // 5. Every node delivered the same ordered prefix of blocks.
    println!("Deliveries at node p0:");
    for d in sim.deliveries(NodeId(0)).iter().take(8) {
        println!(
            "  worker {} round {:>3} proposed by {} : {} txs",
            d.worker, d.round, d.proposer, d.block.len()
        );
        for tx in &d.block.txs {
            println!("      {:?} -> {}", tx.id(), String::from_utf8_lossy(&tx.payload));
        }
    }
    let reference: Vec<_> = sim.deliveries(NodeId(0)).iter().map(|d| d.block.header.payload_hash).collect();
    for i in 1..4u32 {
        let other: Vec<_> = sim.deliveries(NodeId(i)).iter().map(|d| d.block.header.payload_hash).collect();
        let common = reference.len().min(other.len());
        assert_eq!(other[..common], reference[..common], "node {i} must agree with node 0");
    }
    println!("\nAll 4 nodes delivered the same totally ordered chain prefix.");
    print_summary("quickstart summary", &sim.summary());
}
