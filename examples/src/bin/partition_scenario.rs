//! Partition scenario: split a 4-node FLO cluster down the middle, watch
//! commits stall (no side holds a quorum), heal the split, and watch the
//! optimistic path recover — the README's "Running a partition scenario"
//! walkthrough, and the headline FireLedger behaviour of the paper: fast
//! until faults appear, graceful afterwards.
//!
//! Run with: `cargo run -p fireledger-examples --bin partition_scenario`
//!
//! Add `--tcp` to replay the identical plan over the real localhost TCP
//! mesh (the run then takes ~2 wall-clock seconds).

use fireledger_runtime::{catalog, prelude::*};
use std::time::Duration;

fn main() {
    let split = Duration::from_millis(400);
    let heal = Duration::from_millis(1000);
    let duration = Duration::from_millis(2000);

    // The declarative fault plan: {p0, p1} | {p2, p3} between 0.4s and 1.0s.
    // The same value drives the simulator, the threaded runtime and the TCP
    // runtime (see docs/SCENARIOS.md for the whole catalog).
    let plan = catalog::partition_heal(4, split, heal);

    let params = ProtocolParams::new(4).with_batch_size(16).with_tx_size(128);
    let cluster = ClusterBuilder::<FloCluster>::new(params).with_seed(42);
    let scenario = Scenario::new("partition-demo")
        .ideal()
        .with_warmup(Duration::ZERO)
        .run_for(duration)
        .with_faults(plan);

    let on_tcp = std::env::args().any(|a| a == "--tcp");
    let report = if on_tcp {
        Tcp.run(&cluster, &scenario).expect("tcp partition run")
    } else {
        Simulator
            .run(&cluster, &scenario)
            .expect("sim partition run")
    };

    println!(
        "plan={} runtime={} | split at {:.1}s, heal at {:.1}s, run {:.1}s",
        report.fault_plan,
        report.runtime,
        split.as_secs_f64(),
        heal.as_secs_f64(),
        duration.as_secs_f64()
    );
    println!(
        "{:<6} {:>8} {:>16} {:>16} {:>12}",
        "node", "blocks", "first delivery", "last delivery", "max gap"
    );
    for d in &report.per_node {
        println!(
            "p{:<5} {:>8} {:>15.3}s {:>15.3}s {:>11.3}s",
            d.node, d.blocks, d.first_delivery_secs, d.last_delivery_secs, d.max_gap_secs
        );
    }
    let gap = (heal - split).as_secs_f64();
    let stalled = report.per_node.iter().all(|d| d.max_gap_secs >= gap * 0.8);
    let recovered = report
        .per_node
        .iter()
        .all(|d| d.last_delivery_secs > heal.as_secs_f64());
    println!(
        "\ncommit stall spans the split on every node: {stalled}\n\
         deliveries resume after the heal on every node: {recovered}"
    );
    println!("JSON: {}", report.to_json());
}
