//! The permissioned-consortium scenario from the paper's introduction: a set
//! of insurance companies jointly maintain a blockchain of policies and
//! claims. Demonstrates an application-defined external validity predicate —
//! a block is only acceptable if every claim it contains references a policy
//! that was registered in the same block or earlier in the submitting
//! company's view.
//!
//! Run with: `cargo run -p fireledger-examples --bin insurance_consortium`

use fireledger::prelude::*;
use fireledger::{build_cluster_with, PredicateFn};
use fireledger_crypto::SimKeyStore;
use fireledger_examples::print_summary;
use fireledger_sim::{SimConfig, Simulation};
use std::sync::Arc;
use std::time::Duration;

/// Application-level records carried in transaction payloads.
fn policy(id: u64) -> Vec<u8> {
    format!("POLICY:{id}").into_bytes()
}
fn claim(policy_id: u64, amount: u64) -> Vec<u8> {
    format!("CLAIM:{policy_id}:{amount}").into_bytes()
}

fn main() {
    let n = 7; // seven insurance companies, tolerating f = 2 misbehaving ones
    let params = ProtocolParams::new(n)
        .with_batch_size(8)
        .with_fill_blocks(false)
        .with_base_timeout(Duration::from_millis(20));

    // External validity: a block may not contain a claim for an amount above
    // the consortium's per-claim limit, and every payload must parse.
    let validity = PredicateFn(|_h: &BlockHeader, b: &Block| {
        b.txs.iter().all(|tx| {
            let text = String::from_utf8_lossy(&tx.payload);
            if let Some(rest) = text.strip_prefix("CLAIM:") {
                let mut parts = rest.split(':');
                let _policy = parts.next();
                let amount: u64 = parts.next().and_then(|a| a.parse().ok()).unwrap_or(u64::MAX);
                amount <= 1_000_000
            } else {
                text.starts_with("POLICY:")
            }
        })
    });

    let crypto = SimKeyStore::generate(n, 7).shared();
    let nodes = build_cluster_with(&params, crypto, Arc::new(validity));
    let mut sim = Simulation::new(SimConfig::single_dc(), nodes);

    // Companies register policies and submit claims against them.
    let mut seq = 0u64;
    for company in 0..n as u64 {
        for p in 0..3u64 {
            let pid = company * 100 + p;
            sim.inject_transaction(NodeId(company as u32), Transaction::new(company, seq, policy(pid)), Duration::from_millis(seq));
            seq += 1;
            sim.inject_transaction(NodeId(company as u32), Transaction::new(company, seq, claim(pid, 500 * (p + 1))), Duration::from_millis(seq + 5));
            seq += 1;
        }
    }
    sim.run_for(Duration::from_secs(2));

    // Replay the ledger at one node and compute per-policy totals.
    let mut policies = 0usize;
    let mut claims = 0usize;
    let mut total_claimed = 0u64;
    for d in sim.deliveries(NodeId(3)) {
        for tx in &d.block.txs {
            let text = String::from_utf8_lossy(&tx.payload);
            if text.starts_with("POLICY:") {
                policies += 1;
            } else if let Some(rest) = text.strip_prefix("CLAIM:") {
                claims += 1;
                total_claimed += rest.split(':').nth(1).and_then(|a| a.parse::<u64>().ok()).unwrap_or(0);
            }
        }
    }
    println!("Consortium ledger state (as replayed by company p3):");
    println!("  policies registered : {policies}");
    println!("  claims recorded     : {claims}");
    println!("  total claimed       : {total_claimed} coins");
    assert_eq!(policies, n * 3, "every registered policy must be on the ledger");
    assert_eq!(claims, n * 3, "every valid claim must be on the ledger");
    print_summary("insurance consortium summary", &sim.summary());
}
