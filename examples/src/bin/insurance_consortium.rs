//! The permissioned-consortium scenario from the paper's introduction: a set
//! of insurance companies jointly maintain a blockchain of policies and
//! claims. Demonstrates an application-defined external validity predicate —
//! plugged into the cluster through `ClusterBuilder::with_validity` — and
//! replaying the resulting ledger.
//!
//! Run with: `cargo run -p fireledger-examples --bin insurance_consortium`

use fireledger::PredicateFn;
use fireledger_examples::print_report;
use fireledger_runtime::prelude::*;
use fireledger_sim::Simulation;
use std::sync::Arc;
use std::time::Duration;

/// Application-level records carried in transaction payloads.
fn policy(id: u64) -> Vec<u8> {
    format!("POLICY:{id}").into_bytes()
}
fn claim(policy_id: u64, amount: u64) -> Vec<u8> {
    format!("CLAIM:{policy_id}:{amount}").into_bytes()
}

fn main() {
    let n = 7; // seven insurance companies, tolerating f = 2 misbehaving ones
    let params = ProtocolParams::new(n)
        .with_batch_size(8)
        .with_fill_blocks(false)
        .with_base_timeout(Duration::from_millis(20));

    // External validity: a block may not contain a claim for an amount above
    // the consortium's per-claim limit, and every payload must parse.
    let validity = PredicateFn(|_h: &BlockHeader, b: &Block| {
        b.txs.iter().all(|tx| {
            let text = String::from_utf8_lossy(&tx.payload);
            if let Some(rest) = text.strip_prefix("CLAIM:") {
                let mut parts = rest.split(':');
                let _policy = parts.next();
                let amount: u64 = parts
                    .next()
                    .and_then(|a| a.parse().ok())
                    .unwrap_or(u64::MAX);
                amount <= 1_000_000
            } else {
                text.starts_with("POLICY:")
            }
        })
    });

    let cluster = ClusterBuilder::<FloCluster>::new(params)
        .with_seed(7)
        .with_validity(Arc::new(validity));
    let scenario = Scenario::new("insurance").single_dc();

    // Companies register policies and submit claims against them; the ledger
    // content matters here, so drive the simulation by hand.
    let mut sim = Simulation::new(scenario.sim_config(), cluster.build().unwrap());
    let mut seq = 0u64;
    for company in 0..n as u64 {
        for p in 0..3u64 {
            let pid = company * 100 + p;
            sim.inject_transaction(
                NodeId(company as u32),
                Transaction::new(company, seq, policy(pid)),
                Duration::from_millis(seq),
            );
            seq += 1;
            sim.inject_transaction(
                NodeId(company as u32),
                Transaction::new(company, seq, claim(pid, 500 * (p + 1))),
                Duration::from_millis(seq + 5),
            );
            seq += 1;
        }
    }
    sim.run_for(Duration::from_secs(2));

    // Replay the ledger at one node and compute per-policy totals.
    let mut policies = 0usize;
    let mut claims = 0usize;
    let mut total_claimed = 0u64;
    for d in sim.deliveries(NodeId(3)) {
        for tx in &d.block.txs {
            let text = String::from_utf8_lossy(&tx.payload);
            if text.starts_with("POLICY:") {
                policies += 1;
            } else if let Some(rest) = text.strip_prefix("CLAIM:") {
                claims += 1;
                total_claimed += rest
                    .split(':')
                    .nth(1)
                    .and_then(|a| a.parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
    }
    println!("Consortium ledger state (as replayed by company p3):");
    println!("  policies registered : {policies}");
    println!("  claims recorded     : {claims}");
    println!("  total claimed       : {total_claimed} coins");
    assert_eq!(
        policies,
        n * 3,
        "every registered policy must be on the ledger"
    );
    assert_eq!(claims, n * 3, "every valid claim must be on the ledger");

    // Counter-demonstration: the same cluster under *generic* random client
    // traffic orders (almost) nothing, because every random payload fails the
    // consortium's validity predicate — external validity is enforced by the
    // protocol, not by the application replay.
    let report = Simulator
        .run(
            &cluster,
            &Scenario::new("insurance-random-traffic")
                .single_dc()
                .closed_loop(7, Duration::from_millis(50), 24)
                .run_for(Duration::from_secs(2))
                .with_warmup(Duration::ZERO),
        )
        .unwrap();
    println!(
        "\nRandom (invalid) traffic against the same validity predicate: {:.0} tx/s ordered —",
        report.tps
    );
    println!("the predicate keeps malformed records off the ledger at the consensus layer.");
    print_report("random-traffic run", &report);
}
