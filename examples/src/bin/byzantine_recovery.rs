//! Byzantine recovery in action: one node equivocates — it sends different
//! blocks to the two halves of the cluster whenever it is the proposer — and
//! the correct nodes detect the inconsistency through the hash chain,
//! reliably broadcast a proof, run the recovery procedure, and keep a single
//! agreed chain. Safety (agreement on the definite prefix) is checked at the
//! end; the recovery rate corresponds to Figure 12 of the paper.
//!
//! Run with: `cargo run -p fireledger-examples --bin byzantine_recovery`

use fireledger::prelude::*;
use fireledger::{AcceptAll, ClusterNode, EquivocatingNode};
use fireledger_crypto::SimKeyStore;
use fireledger_examples::print_summary;
use fireledger_sim::{SimConfig, Simulation};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let n = 4;
    let params = ProtocolParams::new(n)
        .with_batch_size(10)
        .with_tx_size(128)
        .with_base_timeout(Duration::from_millis(20));
    let crypto = SimKeyStore::generate(n, 9).shared();

    // Node p3 is Byzantine: it equivocates on every block it proposes.
    let nodes: Vec<ClusterNode> = (0..n)
        .map(|i| {
            let flo = FloNode::new(NodeId(i as u32), params.clone(), crypto.clone(), Arc::new(AcceptAll));
            if i == n - 1 {
                ClusterNode::Equivocating(EquivocatingNode::new(flo, crypto.clone()))
            } else {
                ClusterNode::Honest(flo)
            }
        })
        .collect();

    let mut sim = Simulation::new(SimConfig::single_dc(), nodes);
    sim.run_for(Duration::from_secs(3));

    let summary = sim.summary_for(&[NodeId(0), NodeId(1), NodeId(2)]);
    println!("Equivocating proposer: p3 (sends different chain versions to each half)");
    println!("Recoveries per second observed: {:.2}", summary.recoveries_per_sec);

    // Safety: the correct nodes' definite prefixes are identical.
    let prefix = |i: u32| {
        let node = sim.node(NodeId(i)).flo();
        let chain = node.worker(0).chain();
        chain
            .entries()
            .iter()
            .take(chain.definite_len())
            .map(|e| e.signed_header.header.payload_hash)
            .collect::<Vec<_>>()
    };
    let reference = prefix(0);
    for i in 1..3u32 {
        let other = prefix(i);
        let common = reference.len().min(other.len());
        assert_eq!(other[..common], reference[..common], "correct node p{i} diverged!");
    }
    println!(
        "Safety holds: all correct nodes agree on a definite prefix of {} blocks despite {} recoveries.",
        reference.len(),
        (summary.recoveries_per_sec * summary.duration_secs).round()
    );
    print_summary("byzantine recovery summary", &summary);
}
