//! Byzantine recovery in action: one node equivocates — it sends different
//! blocks to the two halves of the cluster whenever it is the proposer — and
//! the correct nodes detect the inconsistency through the hash chain,
//! reliably broadcast a proof, run the recovery procedure, and keep a single
//! agreed chain. The Byzantine behaviour is a one-line `NodeRole` in the
//! cluster builder. Safety (agreement on the definite prefix) is checked at
//! the end; the recovery rate corresponds to Figure 12 of the paper.
//!
//! Run with: `cargo run -p fireledger-examples --bin byzantine_recovery`

use fireledger_examples::print_report;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimTime, Simulation};
use std::time::Duration;

fn main() {
    let n = 4;
    let params = ProtocolParams::new(n)
        .with_batch_size(10)
        .with_tx_size(128)
        .with_base_timeout(Duration::from_millis(20));

    // Node p3 is Byzantine: it equivocates on every block it proposes.
    let cluster = ClusterBuilder::<FloCluster>::new(params)
        .with_seed(9)
        .with_role(NodeId(3), NodeRole::Equivocate);
    let scenario = Scenario::new("byzantine")
        .single_dc()
        .run_for(Duration::from_secs(3));

    let report = Simulator.run(&cluster, &scenario).unwrap();
    println!("Equivocating proposer: p3 (sends different chain versions to each half)");
    println!(
        "Recoveries per second observed: {:.2}",
        report.recoveries_per_sec
    );

    // Safety: re-run the same deterministic execution by hand and compare the
    // correct nodes' definite prefixes.
    let mut sim = Simulation::new(scenario.sim_config(), cluster.build().unwrap());
    sim.run_until(SimTime::ZERO + scenario.duration);
    let prefix = |i: u32| {
        let node = sim.node(NodeId(i)).flo();
        let chain = node.worker(0).chain();
        chain
            .entries()
            .iter()
            .take(chain.definite_len())
            .map(|e| e.signed_header.header.payload_hash)
            .collect::<Vec<_>>()
    };
    let reference = prefix(0);
    for i in 1..3u32 {
        let other = prefix(i);
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "correct node p{i} diverged!"
        );
    }
    println!(
        "Safety holds: all correct nodes agree on a definite prefix of {} blocks despite {} recoveries.",
        reference.len(),
        (report.recoveries_per_sec * report.duration_secs).round()
    );
    print_report("byzantine recovery summary", &report);
}
