//! A geo-distributed deployment: ten nodes, one per AWS region (Tokyo,
//! Canada, Frankfurt, Paris, São Paulo, Oregon, Singapore, Sydney, Ireland,
//! Ohio — the paper's §7.5 placement), connected by the measured inter-region
//! latency matrix. The *same* cluster definition runs on both the geo and the
//! single-DC scenario; only the `Scenario` value changes.
//!
//! Run with: `cargo run -p fireledger-examples --bin geo_cluster`

use fireledger_examples::print_report;
use fireledger_runtime::prelude::*;
use fireledger_sim::Region;
use std::time::Duration;

fn run(label: &str, scenario: Scenario) {
    let params = ProtocolParams::new(10)
        .with_workers(4)
        .with_batch_size(100)
        .with_tx_size(512)
        .with_base_timeout(scenario.recommended_timeout());
    let cluster = ClusterBuilder::<FloCluster>::new(params).with_seed(17);
    let report = Simulator.run(&cluster, &scenario).unwrap();
    print_report(label, &report);
}

fn main() {
    println!("Node placement (paper order):");
    for (i, region) in Region::PLACEMENT.iter().enumerate() {
        println!("  p{i} -> {region:?}");
    }
    run(
        "geo-distributed (10 regions)",
        Scenario::new("geo").geo().run_for(Duration::from_secs(6)),
    );
    run(
        "single data-center (for contrast)",
        Scenario::new("single-dc")
            .single_dc()
            .run_for(Duration::from_secs(6)),
    );

    println!("\nAs in the paper, the geo-distributed deployment pays an order of magnitude in");
    println!("block rate relative to the single data-center one, while latency moves from");
    println!("milliseconds to seconds.");
}
