//! A geo-distributed deployment: ten nodes, one per AWS region (Tokyo,
//! Canada, Frankfurt, Paris, São Paulo, Oregon, Singapore, Sydney, Ireland,
//! Ohio — the paper's §7.5 placement), connected by the measured inter-region
//! latency matrix. Reports throughput and latency, and contrasts them with a
//! single data-center run of the same cluster.
//!
//! Run with: `cargo run -p fireledger-examples --bin geo_cluster`

use fireledger::prelude::*;
use fireledger_examples::print_summary;
use fireledger_sim::{Region, SimConfig, Simulation};
use std::time::Duration;

fn run(label: &str, config: SimConfig, params: &ProtocolParams) {
    let nodes = build_cluster(params, 17);
    let mut sim = Simulation::new(config, nodes);
    sim.run_for(Duration::from_secs(6));
    print_summary(label, &sim.summary());
}

fn main() {
    println!("Node placement (paper order):");
    for (i, region) in Region::PLACEMENT.iter().enumerate() {
        println!("  p{i} -> {region:?}");
    }
    let geo_params = ProtocolParams::new(10)
        .with_workers(4)
        .with_batch_size(100)
        .with_tx_size(512)
        .with_base_timeout(Duration::from_millis(400));
    run("geo-distributed (10 regions)", SimConfig::geo_distributed(), &geo_params);

    let dc_params = ProtocolParams::new(10)
        .with_workers(4)
        .with_batch_size(100)
        .with_tx_size(512)
        .with_base_timeout(Duration::from_millis(20));
    run("single data-center (for contrast)", SimConfig::single_dc(), &dc_params);

    println!("\nAs in the paper, the geo-distributed deployment pays an order of magnitude in");
    println!("block rate relative to the single data-center one, while latency moves from");
    println!("milliseconds to seconds.");
}
