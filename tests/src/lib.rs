//! Shared helpers for the FireLedger integration test suite.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use fireledger_runtime::prelude::*;
use fireledger_sim::{SimConfig, Simulation};
use std::time::Duration;

/// Standard test protocol parameters: small blocks, fast timeouts.
pub fn test_params(n: usize, workers: usize) -> ProtocolParams {
    ProtocolParams::new(n)
        .with_workers(workers)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(20))
}

/// A builder for a FLO cluster where the last `byzantine` nodes equivocate.
pub fn mixed_cluster(
    params: &ProtocolParams,
    byzantine: usize,
    seed: u64,
) -> ClusterBuilder<FloCluster> {
    ClusterBuilder::<FloCluster>::new(params.clone())
        .with_seed(seed)
        .with_last_k(byzantine, NodeRole::Equivocate)
}

/// The per-worker definite chain (payload hashes) of a node in a ClusterNode
/// simulation.
pub fn definite_prefix(
    sim: &Simulation<ClusterNode>,
    node: u32,
    worker: usize,
) -> Vec<fireledger_types::Hash> {
    let chain = sim.node(NodeId(node)).flo().worker(worker).chain();
    chain
        .entries()
        .iter()
        .take(chain.definite_len())
        .map(|e| e.signed_header.header.payload_hash)
        .collect()
}

/// Asserts that every pair of listed nodes agrees on the common prefix of its
/// delivered blocks.
pub fn assert_delivery_agreement<P>(sim: &Simulation<P>, nodes: &[u32])
where
    P: fireledger_types::Protocol,
    P::Msg: fireledger_types::WireSize,
{
    let seq = |i: u32| {
        sim.deliveries(NodeId(i))
            .iter()
            .map(|d| (d.worker, d.round, d.block.header.payload_hash))
            .collect::<Vec<_>>()
    };
    let reference = seq(nodes[0]);
    for &i in &nodes[1..] {
        let other = seq(i);
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "node {i} disagrees with node {} on the delivered prefix",
            nodes[0]
        );
    }
}

/// Convenience: an ideal-network simulation of a FLO cluster built through
/// the unified builder.
pub fn flo_sim(n: usize, workers: usize, seed: u64) -> Simulation<ClusterNode> {
    let nodes = ClusterBuilder::<FloCluster>::new(test_params(n, workers))
        .with_seed(seed)
        .build()
        .expect("correct clusters always build");
    Simulation::new(SimConfig::ideal().with_seed(seed), nodes)
}
