//! Shared helpers for the FireLedger integration test suite.

use fireledger::prelude::*;
use fireledger::{AcceptAll, ClusterNode, EquivocatingNode};
use fireledger_crypto::{SharedCrypto, SimKeyStore};
use fireledger_sim::{SimConfig, Simulation};
use std::sync::Arc;
use std::time::Duration;

/// Standard test protocol parameters: small blocks, fast timeouts.
pub fn test_params(n: usize, workers: usize) -> ProtocolParams {
    ProtocolParams::new(n)
        .with_workers(workers)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(20))
}

/// Builds a FLO cluster where the last `byzantine` nodes equivocate.
pub fn mixed_cluster(
    params: &ProtocolParams,
    byzantine: usize,
    seed: u64,
) -> (Vec<ClusterNode>, SharedCrypto) {
    let crypto: SharedCrypto = SimKeyStore::generate(params.n(), seed).shared();
    let honest = params.n() - byzantine;
    let nodes = (0..params.n())
        .map(|i| {
            let flo = FloNode::new(NodeId(i as u32), params.clone(), crypto.clone(), Arc::new(AcceptAll));
            if i >= honest {
                ClusterNode::Equivocating(EquivocatingNode::new(flo, crypto.clone()))
            } else {
                ClusterNode::Honest(flo)
            }
        })
        .collect();
    (nodes, crypto)
}

/// The per-worker definite chain (payload hashes) of a node in a ClusterNode sim.
pub fn definite_prefix(sim: &Simulation<ClusterNode>, node: u32, worker: usize) -> Vec<fireledger_types::Hash> {
    let chain = sim.node(NodeId(node)).flo().worker(worker).chain();
    chain
        .entries()
        .iter()
        .take(chain.definite_len())
        .map(|e| e.signed_header.header.payload_hash)
        .collect()
}

/// Asserts that every pair of listed nodes agrees on the common prefix of its
/// delivered blocks.
pub fn assert_delivery_agreement<P>(sim: &Simulation<P>, nodes: &[u32])
where
    P: fireledger_types::Protocol,
    P::Msg: fireledger_types::WireSize,
{
    let seq = |i: u32| {
        sim.deliveries(NodeId(i))
            .iter()
            .map(|d| (d.worker, d.round, d.block.header.payload_hash))
            .collect::<Vec<_>>()
    };
    let reference = seq(nodes[0]);
    for &i in &nodes[1..] {
        let other = seq(i);
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "node {i} disagrees with node {} on the delivered prefix",
            nodes[0]
        );
    }
}

/// Convenience: an ideal-network simulation of a FLO cluster.
pub fn flo_sim(n: usize, workers: usize, seed: u64) -> Simulation<FloNode> {
    let params = test_params(n, workers);
    let nodes = fireledger::build_cluster(&params, seed);
    Simulation::new(SimConfig::ideal().with_seed(seed), nodes)
}
