//! Integration tests of the baseline protocols (PBFT, HotStuff, BFT-SMaRt)
//! and head-to-head sanity checks of the comparison harness — everything
//! assembled through the unified `ClusterBuilder`.

use fireledger_integration_tests::*;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimConfig, Simulation};
use std::time::Duration;

fn builder<P: ClusterProtocol>(n: usize) -> ClusterBuilder<P>
where
    P::Msg: fireledger_types::WireSize
        + fireledger_types::WireCodec
        + Clone
        + Send
        + Sync
        + std::fmt::Debug
        + 'static,
{
    ClusterBuilder::<P>::new(test_params(n, 1)).with_seed(2)
}

#[test]
fn hotstuff_agreement_across_cluster_sizes() {
    for n in [4usize, 7] {
        let mut sim = Simulation::new(
            SimConfig::ideal(),
            builder::<HotStuffNode>(n).build().unwrap(),
        );
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 5, "n={n}");
    }
}

#[test]
fn bftsmart_agreement_across_cluster_sizes() {
    for n in [4usize, 7] {
        let mut sim = Simulation::new(
            SimConfig::ideal(),
            builder::<BftSmartNode>(n).build().unwrap(),
        );
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 3, "n={n}");
    }
}

#[test]
fn pbft_agreement_across_cluster_sizes() {
    for n in [4usize, 7] {
        let mut sim = Simulation::new(SimConfig::ideal(), builder::<PbftNode>(n).build().unwrap());
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 3, "n={n}");
    }
}

#[test]
fn fireledger_sends_fewer_messages_per_block_than_bftsmart() {
    // The core claim of the paper: in the optimistic case FireLedger decides a
    // block with one block dissemination plus a single bit from every node,
    // while PBFT-style ordering pays the quadratic three-phase exchange.
    let n = 7;
    let scenario = Scenario::new("msgs")
        .ideal()
        .run_for(Duration::from_millis(600));
    let fl = Simulator.run(&builder::<FloCluster>(n), &scenario).unwrap();
    let bs = Simulator
        .run(&builder::<BftSmartNode>(n), &scenario)
        .unwrap();

    let per_block = |r: &RunReport| {
        let blocks = (r.bps * r.duration_secs).max(1.0);
        r.msgs_sent as f64 / (blocks * n as f64)
    };
    assert!(
        per_block(&fl) < per_block(&bs),
        "FireLedger ({:.1} msgs/block/node) must be cheaper than BFT-SMaRt ({:.1})",
        per_block(&fl),
        per_block(&bs)
    );
}

#[test]
fn fireledger_needs_fewer_signatures_per_block_than_hotstuff() {
    let n = 4;
    let cost = fireledger_crypto::CostModel::m5_xlarge();
    let scenario = Scenario::new("sigs")
        .ideal()
        .with_cost(cost)
        .run_for(Duration::from_millis(600));
    let plain = Scenario::new("sigs")
        .ideal()
        .run_for(Duration::from_millis(600));
    let fl = Simulator.run(&builder::<FloCluster>(n), &plain).unwrap();
    let hs = Simulator
        .run(&builder::<HotStuffNode>(n), &scenario)
        .unwrap();

    let per_block = |r: &RunReport| {
        let blocks = (r.bps * r.duration_secs).max(1.0);
        r.signatures as f64 / blocks
    };
    assert!(
        per_block(&fl) < per_block(&hs),
        "FireLedger ({:.1} sigs/block) must sign less than HotStuff ({:.1})",
        per_block(&fl),
        per_block(&hs)
    );
}
