//! Integration tests of the baseline protocols (HotStuff, BFT-SMaRt-style
//! ordering) and head-to-head sanity checks of the comparison harness.

use fireledger_baselines::{BftSmartNode, HotStuffNode};
use fireledger_crypto::SimKeyStore;
use fireledger_integration_tests::*;
use fireledger_sim::{SimConfig, Simulation};
use fireledger_types::NodeId;
use std::time::Duration;

fn hotstuff_cluster(n: usize) -> Vec<HotStuffNode> {
    let params = test_params(n, 1);
    let crypto = SimKeyStore::generate(n, 2).shared();
    (0..n)
        .map(|i| HotStuffNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
        .collect()
}

fn bftsmart_cluster(n: usize) -> Vec<BftSmartNode> {
    let params = test_params(n, 1);
    let crypto = SimKeyStore::generate(n, 2).shared();
    (0..n)
        .map(|i| BftSmartNode::new(NodeId(i as u32), params.clone(), crypto.clone()))
        .collect()
}

#[test]
fn hotstuff_agreement_across_cluster_sizes() {
    for n in [4usize, 7] {
        let mut sim = Simulation::new(SimConfig::ideal(), hotstuff_cluster(n));
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 5, "n={n}");
    }
}

#[test]
fn bftsmart_agreement_across_cluster_sizes() {
    for n in [4usize, 7] {
        let mut sim = Simulation::new(SimConfig::ideal(), bftsmart_cluster(n));
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 3, "n={n}");
    }
}

#[test]
fn fireledger_sends_fewer_messages_per_block_than_bftsmart() {
    // The core claim of the paper: in the optimistic case FireLedger decides a
    // block with one block dissemination plus a single bit from every node,
    // while PBFT-style ordering pays the quadratic three-phase exchange.
    let n = 7;
    let mut fl = flo_sim(n, 1, 1);
    fl.run_for(Duration::from_millis(600));
    let fl_summary = fl.summary();
    let fl_blocks: f64 = fl_summary.bps * fl_summary.duration_secs;
    let fl_msgs_per_block = fl_summary.msgs_sent as f64 / (fl_blocks * n as f64).max(1.0);

    let mut bs = Simulation::new(SimConfig::ideal(), bftsmart_cluster(n));
    bs.run_for(Duration::from_millis(600));
    let bs_summary = bs.summary();
    let bs_blocks: f64 = bs_summary.bps * bs_summary.duration_secs;
    let bs_msgs_per_block = bs_summary.msgs_sent as f64 / (bs_blocks * n as f64).max(1.0);

    assert!(
        fl_msgs_per_block < bs_msgs_per_block,
        "FireLedger ({fl_msgs_per_block:.1} msgs/block/node) must be cheaper than BFT-SMaRt ({bs_msgs_per_block:.1})"
    );
}

#[test]
fn fireledger_needs_fewer_signatures_per_block_than_hotstuff() {
    let n = 4;
    let cost = fireledger_crypto::CostModel::m5_xlarge();
    let mut fl = flo_sim(n, 1, 1);
    fl.run_for(Duration::from_millis(600));
    let s_fl = fl.summary();
    let fl_blocks = (s_fl.bps * s_fl.duration_secs).max(1.0);

    let mut hs = Simulation::new(SimConfig::ideal().with_cost(cost), hotstuff_cluster(n));
    hs.run_for(Duration::from_millis(600));
    let s_hs = hs.summary();
    let hs_blocks = (s_hs.bps * s_hs.duration_secs).max(1.0);

    let fl_sigs_per_block = s_fl.signatures as f64 / fl_blocks;
    let hs_sigs_per_block = s_hs.signatures as f64 / hs_blocks;
    assert!(
        fl_sigs_per_block < hs_sigs_per_block,
        "FireLedger ({fl_sigs_per_block:.1} sigs/block) must sign less than HotStuff ({hs_sigs_per_block:.1})"
    );
}
