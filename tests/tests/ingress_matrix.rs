//! The ingress matrix: an open-loop client fleet submits through the §11
//! RPC front end while the cluster is partitioned, healed, and
//! crash-recovered — and on every runtime the admission contract holds:
//! **nothing the gates acked `Accepted` is ever lost**, refusals are typed
//! and retryable, and the simulator's run is byte-deterministic.
//!
//! This is the client-visible counterpart of `fault_matrix.rs`: that suite
//! proves the *ledgers* converge under adversity; this one proves the
//! *clients* were either served or told, honestly, to go away.

use fireledger_integration_tests::test_params;
use fireledger_runtime::catalog;
use fireledger_runtime::prelude::*;
use fireledger_runtime::IngressLoad;
use fireledger_types::{WireCodec, WireSize};
use std::fmt;
use std::time::Duration;

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// Partition the cluster into halves, heal it, then pause-and-resume the
/// last node — the two fault shapes a production ingress must ride out
/// without losing accepted work (a kill-restart genuinely discards pool
/// state and is *supposed* to refuse clients instead; see
/// `docs/SCENARIOS.md`).
fn soak_scenario(n: usize) -> Scenario {
    let plan = catalog::partition_heal(n, ms(300), ms(600)).crash_recover(
        NodeId(n as u32 - 1),
        ms(800),
        ms(1100),
    );
    Scenario::new("ingress-soak")
        .ideal()
        .with_faults(plan)
        .run_for(ms(1600))
        .with_warmup(Duration::ZERO)
        .with_seed(23)
        .with_ingress(IngressLoad::new(8, ms(10), 64).with_drain(ms(400)))
}

/// Runs the soak on `rt` and asserts the admission contract.
fn assert_zero_accepted_then_lost<P, R>(rt: R, cluster: ClusterBuilder<P>) -> RunReport
where
    R: Runtime,
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let n = cluster.params().cluster.n;
    let scenario = soak_scenario(n);
    let (report, deliveries) = rt.run_full(&cluster, &scenario).expect("ingress soak");
    let ingress = &report.ingress;
    assert!(ingress.enabled, "scenario carried an ingress load");
    assert!(
        ingress.accepted() > 20,
        "fleet barely got through on {}: {ingress:?}",
        report.runtime
    );
    assert_eq!(
        ingress.lost(),
        0,
        "accepted-then-lost on {}: {ingress:?}",
        report.runtime
    );
    assert_eq!(
        ingress.accepted(),
        ingress.committed(),
        "accepted and committed must balance on {}: {ingress:?}",
        report.runtime
    );
    // The pause window must have produced *typed* refusals, not silence.
    let refused: u64 = ingress
        .lanes
        .iter()
        .map(|l| l.shed_busy + l.shed_rate_limited + l.rejected_syncing)
        .sum();
    assert!(
        refused > 0,
        "a paused node must refuse, visibly, on {}: {ingress:?}",
        report.runtime
    );
    assert!(
        ingress.lanes.iter().any(|l| l.p99_latency_secs > 0.0),
        "per-lane latency must be sampled on {}: {ingress:?}",
        report.runtime
    );
    // The fleet rides on top of the usual ledger guarantees, it does not
    // replace them: the unfaulted nodes still agree prefix-wise.
    let reference = &deliveries[0];
    assert!(!reference.is_empty(), "node 0 delivered nothing");
    for (i, other) in deliveries.iter().enumerate().take(n - 1).skip(1) {
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "node {i} diverged from node 0 under ingress load"
        );
    }
    report
}

#[test]
fn sim_ingress_survives_partition_heal_and_crash_recover() {
    let report = assert_zero_accepted_then_lost(
        Simulator,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1).with_fill_blocks(false)).with_seed(23),
    );
    // And deterministically so: the whole report, ingress section included,
    // is byte-identical on a re-run.
    let again = assert_zero_accepted_then_lost(
        Simulator,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1).with_fill_blocks(false)).with_seed(23),
    );
    assert_eq!(report.to_json(), again.to_json());
}

#[test]
fn threads_ingress_survives_partition_heal_and_crash_recover() {
    assert_zero_accepted_then_lost(
        Threads,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1).with_fill_blocks(false)).with_seed(23),
    );
}

#[test]
fn tcp_ingress_survives_partition_heal_and_crash_recover() {
    assert_zero_accepted_then_lost(
        Tcp,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1).with_fill_blocks(false)).with_seed(23),
    );
}

#[test]
fn sim_ingress_overload_sheds_but_never_loses() {
    // Aggressive fleet against tiny lane budgets: the gates must shed
    // (typed, with retry hints) and still lose nothing they accepted.
    let admission = fireledger::AdmissionConfig {
        capacity: 4,
        rate_per_sec: 100,
        burst: 8,
        ..Default::default()
    };
    let scenario = Scenario::new("ingress-overload")
        .ideal()
        .run_for(ms(900))
        .with_warmup(Duration::ZERO)
        .with_ingress(
            IngressLoad::new(32, ms(2), 64)
                .with_admission(admission)
                .with_max_retries(2),
        );
    let report = Simulator
        .run(
            &ClusterBuilder::<FloCluster>::new(test_params(4, 1).with_fill_blocks(false)),
            &scenario,
        )
        .expect("overload run");
    assert!(report.ingress.shed() > 0, "{:?}", report.ingress);
    assert_eq!(report.ingress.lost(), 0, "{:?}", report.ingress);
    assert!(report.ingress.retries > 0);
    assert!(report.ingress.abandoned > 0, "{:?}", report.ingress);
}
