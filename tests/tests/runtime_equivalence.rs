//! Cross-runtime ledger identity: the acceptance test of the TCP runtime.
//!
//! The same `ClusterBuilder` + `Scenario` pair is executed on the
//! deterministic simulator, on the threaded runtime (messages moved
//! in-process) and on the TCP runtime (every message serialized through the
//! binary wire format of `docs/WIRE_FORMAT.md`, framed, written to a real
//! localhost socket, and decoded on the far side). For all five protocols of
//! the paper's matrix, every node must deliver the *same ledger* on every
//! runtime — prefix equality of the delivered block sequences, since the
//! runtimes cover different amounts of protocol time in the same scenario.
//!
//! Timeouts are deliberately generous (250 ms base against microsecond
//! localhost latency) so that no spurious real-time timeout can change a
//! protocol's decision sequence; with that, any divergence is a codec or
//! framing bug, which is exactly what this test exists to catch.

use fireledger_runtime::prelude::*;
use fireledger_types::{WireCodec, WireSize};
use std::time::Duration;

fn params() -> ProtocolParams {
    ProtocolParams::new(4)
        .with_workers(2)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(250))
}

fn scenario() -> Scenario {
    Scenario::new("equivalence")
        .ideal()
        .run_for(Duration::from_millis(600))
        .with_warmup(Duration::ZERO)
}

fn deliveries_on<P, R>(runtime: &R) -> Vec<Vec<Delivery>>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
    R: Runtime,
{
    runtime
        .run_full(
            &ClusterBuilder::<P>::new(params()).with_seed(7),
            &scenario(),
        )
        .expect("equivalence run must succeed")
        .1
}

fn assert_identical_ledgers<P>(protocol: &str)
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    let sim = deliveries_on::<P, _>(&Simulator);
    let threads = deliveries_on::<P, _>(&Threads);
    let tcp = deliveries_on::<P, _>(&Tcp);
    let vs_threads = check_delivery_prefixes(&sim, &threads)
        .unwrap_or_else(|why| panic!("{protocol}: sim vs threads diverged: {why}"));
    let vs_tcp = check_delivery_prefixes(&sim, &tcp)
        .unwrap_or_else(|why| panic!("{protocol}: sim vs tcp diverged: {why}"));
    assert!(vs_threads > 0 && vs_tcp > 0);
}

#[test]
fn flo_delivers_the_same_ledger_on_all_three_runtimes() {
    assert_identical_ledgers::<FloCluster>("flo");
}

#[test]
fn wrb_obbc_delivers_the_same_ledger_on_all_three_runtimes() {
    assert_identical_ledgers::<Worker>("wrb-obbc");
}

#[test]
fn pbft_delivers_the_same_ledger_on_all_three_runtimes() {
    assert_identical_ledgers::<PbftNode>("pbft");
}

#[test]
fn hotstuff_delivers_the_same_ledger_on_all_three_runtimes() {
    assert_identical_ledgers::<HotStuffNode>("hotstuff");
}

#[test]
fn bft_smart_delivers_the_same_ledger_on_all_three_runtimes() {
    assert_identical_ledgers::<BftSmartNode>("bft-smart");
}

#[test]
fn flo_ledger_identity_survives_content_preserving_adversity() {
    // The fault-free identity proof, repeated under a fault plan that cannot
    // change protocol decisions (1–4 ms of injected delay + reorder against
    // a 250 ms timeout): the same plan value drives all three runtimes and
    // the ledgers still match block for block. The full adversity matrix —
    // including the plans where cross-runtime identity is deliberately NOT
    // asserted — lives in tests/tests/fault_matrix.rs.
    let plan = fireledger_runtime::catalog::delay_reorder(
        Duration::from_millis(1),
        Duration::from_millis(4),
        0.25,
    );
    let adverse = scenario().with_faults(plan);
    fn run<R: Runtime>(runtime: &R, adverse: &Scenario) -> Vec<Vec<Delivery>> {
        runtime
            .run_full(
                &ClusterBuilder::<FloCluster>::new(params()).with_seed(7),
                adverse,
            )
            .expect("adverse equivalence run must succeed")
            .1
    }
    let sim = run(&Simulator, &adverse);
    let threads = run(&Threads, &adverse);
    let tcp = run(&Tcp, &adverse);
    check_delivery_prefixes(&sim, &threads)
        .unwrap_or_else(|why| panic!("flo under delay-reorder: sim vs threads diverged: {why}"));
    check_delivery_prefixes(&sim, &tcp)
        .unwrap_or_else(|why| panic!("flo under delay-reorder: sim vs tcp diverged: {why}"));
}

#[test]
fn divergence_detection_actually_detects() {
    // Sanity-check the checker itself: equal logs pass, tampered logs fail.
    let sim = deliveries_on::<FloCluster, _>(&Simulator);
    assert!(check_delivery_prefixes(&sim, &sim).is_ok());
    let mut tampered = sim.clone();
    tampered[1][0].round = Round(999_999);
    let err = check_delivery_prefixes(&sim, &tampered).unwrap_err();
    assert!(err.contains("node 1"), "{err}");
    let empty: Vec<Vec<Delivery>> = vec![Vec::new(); sim.len()];
    assert!(check_delivery_prefixes(&sim, &empty).is_err());
}
