//! The state-sync matrix: late-joining nodes catch up to a byte-identical
//! ledger through the block-fetch sub-protocol on every runtime, healed
//! partitions re-sync through fetch rather than buffered redelivery, and
//! randomized fetch schedules (range splits, duplicates, reordering, a
//! lying peer) always reassemble exactly the canonical prefix.
//!
//! The small `*_smoke` variants run everywhere; the `*_full_5k` variants
//! reproduce the paper-scale acceptance case — a node started at block
//! 5000 — and are sized for release builds, so they are `#[ignore]`d here
//! and driven by the `sync-matrix` CI job with `--release -- --ignored`.

use fireledger::sync::TIMER_SYNC;
use fireledger::WorkerMsg;
use fireledger_crypto::{hash_header, SimKeyStore};
use fireledger_integration_tests::test_params;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimConfig, Simulation};
use fireledger_types::{
    Action, DetRng, Hash, Outbox, Protocol, SyncMsg, TimerId, WireCodec, WireSize,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// Runs `cluster` with node `n-1` late-joining once the reference node has
/// delivered `gap` blocks, then asserts the late node caught up past the
/// join point with a ledger byte-identical to the reference's.
fn assert_late_join_catches_up<P, R>(
    rt: R,
    cluster: ClusterBuilder<P>,
    gap: u64,
    duration: Duration,
) where
    R: Runtime,
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let n = cluster.params().cluster.n;
    let late = NodeId(n as u32 - 1);
    let scenario = Scenario::new("late-join")
        .ideal()
        .run_for(duration)
        .with_warmup(Duration::ZERO);
    let (_, deliveries) = rt
        .run_full(&cluster.with_late_join(late, gap), &scenario)
        .expect("late-join run");
    let reference = &deliveries[0];
    let joined = &deliveries[late.as_usize()];
    assert!(
        joined.len() as u64 > gap,
        "late node must catch up past its {gap}-block join point, got {}",
        joined.len()
    );
    let common = reference.len().min(joined.len());
    assert_eq!(
        &reference[..common],
        &joined[..common],
        "late node's fetched ledger diverges from the cluster's"
    );
}

// ---------------------------------------------------------------------------
// Smoke variants: small gaps, sized for debug builds; run in tier-1.
// ---------------------------------------------------------------------------

#[test]
fn sim_flo_late_join_smoke() {
    assert_late_join_catches_up(
        Simulator,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        200,
        Duration::from_secs(2),
    );
}

#[test]
fn sim_worker_late_join_smoke() {
    assert_late_join_catches_up(
        Simulator,
        ClusterBuilder::<Worker>::new(test_params(4, 1)),
        200,
        Duration::from_secs(2),
    );
}

#[test]
fn sim_flo_multiworker_late_join_smoke() {
    // With ω > 1 the fetch runs per worker ledger and the merged delivery
    // stream must still be prefix-identical.
    assert_late_join_catches_up(
        Simulator,
        ClusterBuilder::<FloCluster>::new(test_params(4, 2)),
        200,
        Duration::from_secs(2),
    );
}

#[test]
fn threads_flo_late_join_smoke() {
    assert_late_join_catches_up(
        Threads,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        100,
        Duration::from_secs(4),
    );
}

#[test]
fn threads_worker_late_join_smoke() {
    assert_late_join_catches_up(
        Threads,
        ClusterBuilder::<Worker>::new(test_params(4, 1)),
        100,
        Duration::from_secs(4),
    );
}

#[test]
fn tcp_flo_late_join_smoke() {
    assert_late_join_catches_up(
        Tcp,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        100,
        Duration::from_secs(4),
    );
}

#[test]
fn tcp_worker_late_join_smoke() {
    assert_late_join_catches_up(
        Tcp,
        ClusterBuilder::<Worker>::new(test_params(4, 1)),
        100,
        Duration::from_secs(4),
    );
}

// ---------------------------------------------------------------------------
// Full variants: the acceptance case — a node started at block 5000.
// Sized for release builds; the sync-matrix CI job runs them with
// `--release -- --ignored`.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "release-sized: run via the sync-matrix CI job"]
fn sim_flo_late_join_full_5k() {
    assert_late_join_catches_up(
        Simulator,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        5_000,
        Duration::from_secs(20),
    );
}

#[test]
#[ignore = "release-sized: run via the sync-matrix CI job"]
fn sim_worker_late_join_full_5k() {
    assert_late_join_catches_up(
        Simulator,
        ClusterBuilder::<Worker>::new(test_params(4, 1)),
        5_000,
        Duration::from_secs(20),
    );
}

#[test]
#[ignore = "release-sized: run via the sync-matrix CI job"]
fn threads_flo_late_join_full_5k() {
    assert_late_join_catches_up(
        Threads,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        5_000,
        Duration::from_secs(10),
    );
}

#[test]
#[ignore = "release-sized: run via the sync-matrix CI job"]
fn threads_worker_late_join_full_5k() {
    assert_late_join_catches_up(
        Threads,
        ClusterBuilder::<Worker>::new(test_params(4, 1)),
        5_000,
        Duration::from_secs(10),
    );
}

#[test]
#[ignore = "release-sized: run via the sync-matrix CI job"]
fn tcp_flo_late_join_full_5k() {
    assert_late_join_catches_up(
        Tcp,
        ClusterBuilder::<FloCluster>::new(test_params(4, 1)),
        5_000,
        Duration::from_secs(12),
    );
}

// ---------------------------------------------------------------------------
// Healed partition: the minority side re-syncs through block fetch.
// ---------------------------------------------------------------------------

/// With a *lossy* partition the runtime heals the route but never delivers
/// the traffic queued during the split — the buffered-delivery crutch is
/// off, so the only way the minority node can close the gap is the sync
/// fetch triggered by its lag detector.
#[test]
fn healed_lossy_minority_partition_resyncs_via_fetch() {
    let plan = FaultPlan::named("lossy-minority").partition_lossy(
        vec![vec![NodeId(0), NodeId(1), NodeId(2)], vec![NodeId(3)]],
        ms(300),
        Some(ms(1200)),
    );
    let scenario = Scenario::new("healed-lossy")
        .ideal()
        .with_faults(plan)
        .run_for(Duration::from_secs(4))
        .with_warmup(Duration::ZERO);
    let cluster = ClusterBuilder::<FloCluster>::new(test_params(4, 1));
    let (_, deliveries) = Simulator.run_full(&cluster, &scenario).expect("lossy run");
    let reference = &deliveries[0];
    let minority = &deliveries[3];
    // The majority never stalled...
    assert!(
        reference.len() > 500,
        "majority stalled: {}",
        reference.len()
    );
    // ...and the minority node, which lost ~900ms of traffic outright,
    // fetched its way back to the same ledger.
    let common = reference.len().min(minority.len());
    assert_eq!(
        &reference[..common],
        &minority[..common],
        "re-synced ledger diverges"
    );
    assert!(
        minority.len() as f64 > reference.len() as f64 * 0.8,
        "minority node never re-synced: {} of {} blocks",
        minority.len(),
        reference.len()
    );
}

// ---------------------------------------------------------------------------
// Randomized property: arbitrary fetch schedules reassemble the canonical
// prefix exactly.
// ---------------------------------------------------------------------------

fn worker_ring(n: usize, batch: usize, seed: u64) -> (Vec<Worker>, ProtocolParams) {
    let params = ProtocolParams::new(n)
        .with_batch_size(batch)
        .with_tx_size(64)
        .with_base_timeout(ms(20));
    let crypto = SimKeyStore::generate(n, seed).shared();
    let workers = (0..n)
        .map(|i| {
            Worker::new(
                NodeId(i as u32),
                WorkerId(0),
                params.clone(),
                crypto.clone(),
                Arc::new(AcceptAll),
            )
        })
        .collect();
    (workers, params)
}

/// The serving side of one pump step: feed `msg` to a (frozen) cluster
/// node and collect the sync replies it addresses to the late worker.
fn serve(
    sim: &mut Simulation<Worker>,
    peer: NodeId,
    late: NodeId,
    msg: SyncMsg,
) -> Vec<(NodeId, WorkerMsg)> {
    let mut out = Outbox::new();
    sim.node_mut(peer)
        .on_message(late, WorkerMsg::Sync(msg), &mut out);
    out.drain()
        .filter_map(|a| match a {
            Action::Send { to, msg } if to == late => Some((peer, msg)),
            _ => None,
        })
        .collect()
}

/// A lying peer: replies with in-protocol but *forged* data — an inflated
/// tip, headers whose payload hash was tampered with (breaking the
/// proposer's signature), and garbage bodies. The requester's
/// header-chain verification and per-body merkle checks must reject all
/// of it and quarantine the liar, never splicing a forged byte.
fn lie(sim: &Simulation<Worker>, liar: NodeId, msg: &SyncMsg) -> Option<(NodeId, WorkerMsg)> {
    let truth = sim.node(NodeId(0)).chain();
    let reply = match *msg {
        SyncMsg::TipProbe { req } => SyncMsg::TipReply {
            req,
            definite: Round(truth.definite_len() as u64 + 1_000),
        },
        SyncMsg::GetHeaders { req, from, to } => {
            let headers = (from.0..to.0.min(truth.definite_len() as u64))
                .filter_map(|r| truth.get(Round(r)))
                .map(|e| {
                    let mut signed = e.signed_header.clone();
                    signed.header.payload_hash = Hash::default(); // breaks the signature
                    signed
                })
                .collect();
            SyncMsg::HeadersReply { req, from, headers }
        }
        SyncMsg::GetBlocks { req, from, to } => SyncMsg::BlocksReply {
            req,
            from,
            bodies: (from.0..to.0).map(|_| Vec::new()).collect(),
        },
        _ => return None,
    };
    Some((liar, WorkerMsg::Sync(reply)))
}

#[test]
fn randomized_fetch_schedules_reassemble_canonical_prefix() {
    const CASES: u64 = 12;
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x5C00 + case);

        // Grow a canonical ledger on a fault-free 4-worker ring, then
        // freeze it as the serving side.
        let (workers, params) = worker_ring(4, 8, 7);
        let mut sim = Simulation::new(SimConfig::ideal().with_seed(case), workers);
        sim.run_for(ms(120 + rng.gen_below(120)));
        let target = sim.node(NodeId(0)).chain().definite_len();
        assert!(
            target > 30,
            "case {case}: canonical chain too short: {target}"
        );
        let canonical: Vec<Hash> = sim
            .node(NodeId(0))
            .chain()
            .entries()
            .iter()
            .take(target)
            .map(|e| hash_header(&e.signed_header.header))
            .collect();

        // A fresh late worker with a random range-split schedule, syncing
        // against the frozen ring through a hand-driven message pump that
        // shuffles, duplicates and (from one peer) forges replies.
        let late_id = NodeId(3);
        let crypto = SimKeyStore::generate(4, 7).shared();
        let mut late = Worker::new(late_id, WorkerId(0), params, crypto, Arc::new(AcceptAll));
        late.set_sync_batches(1 + rng.gen_below(7) as usize, 1 + rng.gen_below(5) as usize);
        late.begin_sync();
        let liar = NodeId(rng.gen_below(3) as u32);

        let mut out = Outbox::new();
        late.on_start(&mut out);
        let mut sync_timer: Option<TimerId> = None;
        for _pump in 0..10_000 {
            // Route the late worker's outbox: requests to peers (the liar
            // forges, the others serve), remember the armed sync timer.
            let mut inbox: Vec<(NodeId, WorkerMsg)> = Vec::new();
            for action in out.drain().collect::<Vec<_>>() {
                match action {
                    Action::Send {
                        to,
                        msg: WorkerMsg::Sync(m),
                    } => {
                        if to == liar {
                            inbox.extend(lie(&sim, liar, &m));
                        } else if to != late_id {
                            inbox.extend(serve(&mut sim, to, late_id, m));
                        }
                    }
                    Action::Broadcast {
                        msg: WorkerMsg::Sync(m),
                    } => {
                        for peer in 0..3u32 {
                            let peer = NodeId(peer);
                            if peer == liar {
                                inbox.extend(lie(&sim, liar, &m));
                            } else {
                                inbox.extend(serve(&mut sim, peer, late_id, m.clone()));
                            }
                        }
                    }
                    Action::SetTimer { id, .. } if id.decompose().0 == TIMER_SYNC => {
                        sync_timer = Some(id);
                    }
                    _ => {}
                }
            }
            if !late.is_syncing() {
                break;
            }
            if inbox.is_empty() {
                // Stalled (e.g. the liar ate the only in-flight request):
                // fire the sync timeout so the synchronizer retries against
                // an alternate peer.
                let timer = sync_timer
                    .take()
                    .expect("stalled sync must have a timer armed");
                late.on_timer(timer, &mut out);
                continue;
            }
            // Adversarial delivery: duplicate some replies, then shuffle.
            let dups: Vec<_> = inbox
                .iter()
                .filter(|_| rng.gen_below(4) == 0)
                .cloned()
                .collect();
            inbox.extend(dups);
            for i in (1..inbox.len()).rev() {
                inbox.swap(i, rng.gen_below(i as u64 + 1) as usize);
            }
            for (from, msg) in inbox {
                late.on_message(from, msg, &mut out);
            }
        }

        assert!(!late.is_syncing(), "case {case}: sync never completed");
        assert!(
            late.sync_rounds_fetched() >= target as u64,
            "case {case}: fetched {} of {target} rounds",
            late.sync_rounds_fetched()
        );
        // Byte-identical reassembly: every fetched header hashes like the
        // canonical one; the liar's forged headers and bodies never spliced.
        // (The last f+1 spliced rounds stay tentative by chain rules, so the
        // coverage check is on entries, not on the definite prefix.)
        let chain = late.chain();
        assert!(
            chain.len() >= target,
            "case {case}: {} < {target}",
            chain.len()
        );
        for (r, want) in canonical.iter().enumerate() {
            let got = hash_header(&chain.get(Round(r as u64)).unwrap().signed_header.header);
            assert_eq!(&got, want, "case {case}: round {r} diverged");
        }
    }
}
