//! Contract tests for the `WireCodec` size-hint / buffer-reuse API.
//!
//! Every protocol message of all five protocols must satisfy, for every
//! variant:
//!
//! * `encoded_len()` returns exactly the number of bytes `encode_to`
//!   appends (the hint the framing layer sizes buffers with);
//! * `encode_into` through a **reused, dirty** scratch buffer produces the
//!   same bytes as a fresh `encode()` — buffer reuse must never change the
//!   wire format;
//! * the bytes decode back to the original value.
//!
//! Plus the golden-hex anchor: the worked example of `docs/WIRE_FORMAT.md`
//! §8 must come out byte-for-byte unchanged through the *new* buffer-reuse
//! path, proving the optimisations did not move a single wire bit.

use fireledger::{ConsensusValue, FloMsg, PanicProof, WorkerMsg};
use fireledger_baselines::hotstuff::QuorumCert;
use fireledger_baselines::{HotStuffMsg, OrderedBatch};
use fireledger_bft::{ObbcMsg, PbftMsg, RbMsg};
use fireledger_store::{decode_footer, encode_footer, encode_record, scan_records, REC_BLOCK};
use fireledger_types::codec::FrameHeader;
use fireledger_types::rpc::{Lane, RejectReason, RpcMsg, SubmitStatus};
use fireledger_types::{
    BlockHeader, Bytes, CodecError, Hash, NodeId, Receipt, Round, Signature, SignedHeader,
    StoredBlock, SyncMsg, Transaction, TxOp, WalRecord, WireCodec, WorkerId, GENESIS_HASH,
};
use std::fmt::Debug;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn signed_header() -> SignedHeader {
    SignedHeader::new(
        BlockHeader::new(
            Round(3),
            WorkerId(1),
            NodeId(2),
            Hash([0x11; 32]),
            Hash([0x22; 32]),
            10,
            5120,
        ),
        Signature::from(vec![0x55u8; 64]),
    )
}

fn txs() -> Vec<Transaction> {
    vec![
        Transaction::zeroed(1, 0, 64),
        Transaction::new(2, 1, vec![7, 8, 9]),
        Transaction::new(3, 2, Vec::new()),
    ]
}

/// The codec contract, checked through one shared dirty scratch buffer so
/// reuse across *different* message types and sizes is exercised too.
fn assert_codec_contract<T: WireCodec + PartialEq + Debug>(value: &T, scratch: &mut Vec<u8>) {
    let fresh = value.encode();
    assert_eq!(
        fresh.len(),
        value.encoded_len(),
        "encoded_len mismatch for {value:?}"
    );
    value.encode_into(scratch);
    assert_eq!(
        *scratch, fresh,
        "encode_into diverged from encode for {value:?}"
    );
    let back = T::decode(&fresh).expect("roundtrip decode");
    assert_eq!(back, *value, "roundtrip changed the value");
    // The zero-copy path (views into a shared backing buffer) must produce
    // a value equal to both the copying decode and the original.
    let backing = fireledger_types::Bytes::from(fresh);
    let shared = T::decode_shared(&backing).expect("shared decode");
    assert_eq!(shared, *value, "decode_shared changed the value");
}

fn every_worker_msg() -> Vec<WorkerMsg> {
    vec![
        WorkerMsg::BlockData {
            payload_hash: Hash([0xAB; 32]),
            txs: txs(),
        },
        WorkerMsg::Header {
            header: signed_header(),
        },
        WorkerMsg::Vote {
            round: Round(4),
            proposer: NodeId(1),
            vote: true,
            piggyback: Some(signed_header()),
        },
        WorkerMsg::Vote {
            round: Round(4),
            proposer: NodeId(1),
            vote: false,
            piggyback: None,
        },
        WorkerMsg::PullHeader {
            round: Round(9),
            proposer: NodeId(2),
        },
        WorkerMsg::PullHeaderReply {
            header: signed_header(),
        },
        WorkerMsg::PullBlock {
            payload_hash: GENESIS_HASH,
        },
        WorkerMsg::PullBlockReply {
            payload_hash: GENESIS_HASH,
            txs: txs(),
        },
        WorkerMsg::Panic(RbMsg::Echo {
            origin: NodeId(0),
            tag: 5,
            value: PanicProof {
                detected_round: Round(4),
                conflicting: signed_header(),
                local_parent: Some(signed_header()),
            },
        }),
        WorkerMsg::Consensus(PbftMsg::PrePrepare {
            view: 1,
            seq: 2,
            value: ConsensusValue::FallbackVote {
                round: Round(7),
                proposer: NodeId(0),
                voter: NodeId(1),
                vote: true,
                evidence: Some(signed_header()),
            },
        }),
        WorkerMsg::Consensus(PbftMsg::ViewChange {
            new_view: 3,
            prepared: vec![(
                9,
                ConsensusValue::RecoveryVersion {
                    recovery_round: Round(11),
                    from: NodeId(3),
                    version: vec![signed_header(); 2],
                },
            )],
        }),
    ]
}

#[test]
fn flo_messages_satisfy_the_codec_contract() {
    let mut scratch = vec![0xFFu8; 7]; // deliberately dirty and missized
    for msg in every_worker_msg() {
        assert_codec_contract(&msg, &mut scratch);
        assert_codec_contract(
            &FloMsg {
                worker: WorkerId(5),
                inner: msg,
            },
            &mut scratch,
        );
    }
}

#[test]
fn bft_messages_satisfy_the_codec_contract() {
    let mut scratch = Vec::new();
    for msg in [
        RbMsg::Init {
            origin: NodeId(0),
            tag: 1,
            value: 42u64,
        },
        RbMsg::Echo {
            origin: NodeId(1),
            tag: 2,
            value: 43u64,
        },
        RbMsg::Ready {
            origin: NodeId(2),
            tag: 3,
            value: 44u64,
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    for msg in [
        PbftMsg::Request { value: 7u64 },
        PbftMsg::PrePrepare {
            view: 1,
            seq: 2,
            value: 7u64,
        },
        PbftMsg::Prepare {
            view: 1,
            seq: 2,
            digest: 3,
        },
        PbftMsg::Commit {
            view: 1,
            seq: 2,
            digest: 3,
        },
        PbftMsg::ViewChange {
            new_view: 2,
            prepared: vec![(1, 7u64), (2, 8u64)],
        },
        PbftMsg::NewView {
            view: 2,
            preprepares: vec![(3, 9u64)],
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    for msg in [
        ObbcMsg::Vote {
            instance: 9,
            value: true,
        },
        ObbcMsg::EvidenceRequest { instance: 9 },
        ObbcMsg::EvidenceReply {
            instance: 9,
            evidence: Some(signed_header()),
        },
        ObbcMsg::EvidenceReply {
            instance: 10,
            evidence: None,
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
}

#[test]
fn baseline_messages_satisfy_the_codec_contract() {
    let mut scratch = Vec::new();
    let qc = QuorumCert {
        view: 4,
        block_hash: Hash([0x77; 32]),
    };
    assert_codec_contract(&qc, &mut scratch);
    for msg in [
        HotStuffMsg::Proposal {
            view: 5,
            header: signed_header(),
            txs: txs(),
            justify: qc.clone(),
        },
        HotStuffMsg::Vote {
            view: 5,
            block_hash: Hash([0x66; 32]),
        },
        HotStuffMsg::NewView {
            view: 6,
            high_qc: qc.clone(),
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    let batch = OrderedBatch {
        assembler: NodeId(2),
        seq: 17,
        txs: txs(),
    };
    assert_codec_contract(&batch, &mut scratch);
    assert_codec_contract(&PbftMsg::Request { value: batch }, &mut scratch);
}

fn every_sync_msg() -> Vec<SyncMsg> {
    vec![
        SyncMsg::TipProbe { req: 7 },
        SyncMsg::TipReply {
            req: 7,
            definite: Round(4096),
        },
        SyncMsg::GetHeaders {
            req: 8,
            from: Round(16),
            to: Round(32),
        },
        SyncMsg::HeadersReply {
            req: 8,
            from: Round(16),
            headers: vec![signed_header()],
        },
        SyncMsg::GetBlocks {
            req: 9,
            from: Round(16),
            to: Round(20),
        },
        SyncMsg::BlocksReply {
            req: 9,
            from: Round(16),
            bodies: vec![vec![Transaction::new(1, 2, b"FIRE".as_slice())]],
        },
    ]
}

#[test]
fn sync_messages_satisfy_the_codec_contract() {
    let mut scratch = vec![0xFFu8; 11]; // deliberately dirty and missized
    for msg in every_sync_msg() {
        assert_codec_contract(&msg, &mut scratch);
        // And wrapped the way they actually travel: WorkerMsg::Sync inside
        // FloMsg through the §3 framing.
        assert_codec_contract(&WorkerMsg::Sync(msg.clone()), &mut scratch);
        assert_codec_contract(
            &FloMsg {
                worker: WorkerId(3),
                inner: WorkerMsg::Sync(msg),
            },
            &mut scratch,
        );
    }
}

/// Truncation and bad-tag robustness: every strict prefix of every encoded
/// `SyncMsg` fails to decode (field counts are declared up front, so a cut
/// anywhere is detectable), and an unknown discriminant reports `BadTag`
/// rather than misparsing the bytes that follow.
#[test]
fn sync_message_decode_rejects_truncation_and_bad_tags() {
    for msg in every_sync_msg() {
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                SyncMsg::decode(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of {msg:?} decoded"
            );
        }
    }
    for tag in [0u8, 7, 0x5C, 0xFF] {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&7u64.to_be_bytes());
        match SyncMsg::decode(&bytes) {
            Err(CodecError::BadTag { what, tag: got }) => {
                assert_eq!(what, "SyncMsg");
                assert_eq!(got, tag);
            }
            other => panic!("tag {tag} produced {other:?}"),
        }
    }
}

/// The golden encodings of WIRE_FORMAT.md §10.1 — one per `SyncMsg`
/// variant, plus the §6.1 `WorkerMsg::Sync` wrapping. If this test fails,
/// the sync wire format changed: that requires a `WIRE_VERSION` bump and a
/// spec update, never a silent change (a late joiner must be able to fetch
/// from peers running an older build).
#[test]
fn golden_sync_messages_of_wire_format_section_10_are_unchanged() {
    let expected = [
        "010000000000000007",
        "0200000000000000070000000000001000",
        "03000000000000000800000000000000100000000000000020",
        concat!(
            "040000000000000008000000000000001000000001",
            "00000000000000030000000100000002",
            "1111111111111111111111111111111111111111111111111111111111111111",
            "2222222222222222222222222222222222222222222222222222222222222222",
            "0000000a",
            "0000000000001400",
            "00", // exec_root absent (presence byte, wire version 2 — §12)
            "00000040",
            "5555555555555555555555555555555555555555555555555555555555555555",
            "5555555555555555555555555555555555555555555555555555555555555555",
        ),
        "05000000000000000900000000000000100000000000000014",
        concat!(
            "060000000000000009000000000000001000000001",
            "00000001",
            "0000000000000001",
            "0000000000000002",
            "00000004",
            "46495245",
        ),
    ];
    for (msg, want) in every_sync_msg().iter().zip(expected) {
        assert_eq!(hex(&msg.encode()), want, "golden moved for {msg:?}");
    }
    assert_eq!(
        hex(&WorkerMsg::Sync(SyncMsg::TipProbe { req: 7 }).encode()),
        "0a010000000000000007",
        "WorkerMsg::Sync discriminant moved"
    );
}

/// The worked example of WIRE_FORMAT.md §8 — through the buffer-reuse path.
/// These bytes are the normative anchor: if this test fails, the hot-path
/// optimisations changed the wire format, which is a bug (or requires a
/// `WIRE_VERSION` bump and a spec update).
#[test]
fn golden_frame_of_wire_format_section_8_is_unchanged() {
    let msg = FloMsg {
        worker: WorkerId(0),
        inner: WorkerMsg::BlockData {
            payload_hash: Hash([0x22; 32]),
            txs: vec![Transaction::new(1, 2, b"FIRE".as_slice())],
        },
    };
    // Encode through the reused-buffer path.
    let mut payload = vec![0xEEu8; 100];
    msg.encode_into(&mut payload);
    assert_eq!(payload.len(), msg.encoded_len());

    let mut frame = FrameHeader::new(payload.len()).encode().to_vec();
    frame.extend_from_slice(&payload);
    let got_hex: String = frame.iter().map(|b| format!("{b:02x}")).collect();
    let expected_hex = concat!(
        "464c4752",
        "02", // wire version 2: headers gained an optional exec_root (§12)
        "00000041",
        "00000000",
        "01",
        "2222222222222222222222222222222222222222222222222222222222222222",
        "00000001",
        "0000000000000001",
        "0000000000000002",
        "00000004",
        "46495245",
    );
    assert_eq!(got_hex, expected_hex);
    assert_eq!(FloMsg::decode(&payload).unwrap(), msg);
}

fn every_rpc_msg() -> Vec<RpcMsg> {
    vec![
        RpcMsg::Submit {
            client: 7,
            seq: 1,
            lane: Lane::Normal,
            payload: vec![0xAA, 0xBB],
        },
        RpcMsg::Submit {
            client: 7,
            seq: 2,
            lane: Lane::Probe,
            payload: Vec::new(),
        },
        RpcMsg::Submit {
            client: 7,
            seq: 3,
            lane: Lane::Bulk,
            payload: vec![0x46, 0x49, 0x52, 0x45],
        },
        RpcMsg::SubmitAck {
            client: 7,
            seq: 1,
            status: SubmitStatus::Accepted { ticket: 99 },
        },
        RpcMsg::SubmitAck {
            client: 7,
            seq: 2,
            status: SubmitStatus::Busy { retry_after_ms: 25 },
        },
        RpcMsg::SubmitAck {
            client: 7,
            seq: 3,
            status: SubmitStatus::Duplicate,
        },
        RpcMsg::SubmitAck {
            client: 7,
            seq: 4,
            status: SubmitStatus::RateLimited { retry_after_ms: 50 },
        },
        RpcMsg::SubmitAck {
            client: 7,
            seq: 5,
            status: SubmitStatus::Syncing,
        },
        RpcMsg::Query { req: 11 },
        RpcMsg::QueryReply {
            req: 11,
            definite: Round(4096),
        },
        RpcMsg::Subscribe { from: Round(10) },
        RpcMsg::Event {
            round: Round(10),
            tx_count: 3,
        },
        RpcMsg::Reject {
            reason: RejectReason::BadFrame,
        },
        RpcMsg::Reject {
            reason: RejectReason::Oversized,
        },
        RpcMsg::Reject {
            reason: RejectReason::BadMessage,
        },
        RpcMsg::Reject {
            reason: RejectReason::Busy,
        },
    ]
}

#[test]
fn rpc_msgs_satisfy_the_codec_contract() {
    let mut scratch = vec![0xEEu8; 48];
    for msg in every_rpc_msg() {
        assert_codec_contract(&msg, &mut scratch);
    }
}

/// The golden encodings of WIRE_FORMAT.md §11 — one per `RpcMsg` variant
/// (every `SubmitStatus` and `RejectReason` included), plus the §3 framing
/// of the worked submit example. The client RPC port is the one place
/// where *software we do not ship* speaks our wire format, so these bytes
/// are load-bearing for third-party clients: a failure here means the
/// ingress format moved, which requires a `WIRE_VERSION` bump and a spec
/// update, never a silent change.
#[test]
fn golden_rpc_messages_of_wire_format_section_11_are_unchanged() {
    let expected = [
        concat!(
            "01",
            "0000000000000007",
            "0000000000000001",
            "02",
            "00000002",
            "aabb"
        ),
        concat!(
            "01",
            "0000000000000007",
            "0000000000000002",
            "01",
            "00000000"
        ),
        concat!(
            "01",
            "0000000000000007",
            "0000000000000003",
            "03",
            "00000004",
            "46495245"
        ),
        concat!(
            "02",
            "0000000000000007",
            "0000000000000001",
            "01",
            "0000000000000063"
        ),
        concat!(
            "02",
            "0000000000000007",
            "0000000000000002",
            "02",
            "00000019"
        ),
        concat!("02", "0000000000000007", "0000000000000003", "03"),
        concat!(
            "02",
            "0000000000000007",
            "0000000000000004",
            "04",
            "00000032"
        ),
        concat!("02", "0000000000000007", "0000000000000005", "05"),
        concat!("03", "000000000000000b"),
        concat!("04", "000000000000000b", "0000000000001000"),
        concat!("05", "000000000000000a"),
        concat!("06", "000000000000000a", "00000003"),
        "0701",
        "0702",
        "0703",
        "0704",
    ];
    for (msg, want) in every_rpc_msg().iter().zip(expected) {
        assert_eq!(hex(&msg.encode()), want, "golden moved for {msg:?}");
    }
    // The framed submit of §11.1: the same 9-byte §3 header the inter-node
    // links use, wrapping the worked `Submit` example.
    let submit = &every_rpc_msg()[0];
    let payload = submit.encode();
    let mut frame = FrameHeader::new(payload.len()).encode().to_vec();
    frame.extend_from_slice(&payload);
    assert_eq!(
        hex(&frame),
        concat!(
            "464c4752",
            "02", // wire version 2 (§12); RPC payload bytes are unchanged
            "00000018",
            "01",
            "0000000000000007",
            "0000000000000001",
            "02",
            "00000002",
            "aabb",
        )
    );
}

/// The worked examples of WIRE_FORMAT.md §9 — the durable store's on-disk
/// framing. Pins three goldens byte-for-byte: a framed consensus-WAL vote
/// record, a framed block-log record, and a sealed-segment footer. If this
/// test fails, the on-disk format changed and every ledger written by an
/// earlier build becomes unreadable — that requires a §9 spec update and a
/// migration story, never a silent change.
#[test]
fn golden_store_records_of_wire_format_section_9_are_unchanged() {
    // §9.3 — consensus-WAL vote entry, framed as a store record. The vote
    // is persisted before broadcast; this exact byte string is what lands
    // on disk for "worker 0 voted yes on node 2's round-3 block".
    let vote = WalRecord::Vote {
        worker: WorkerId(0),
        round: Round(3),
        proposer: NodeId(2),
        vote: true,
    };
    let wal_frame = encode_record(vote.kind(), &vote.encode_payload());
    let expected_wal_hex = concat!(
        "464c5352",         // record magic "FLSR"
        "11",               // kind WAL_VOTE
        "00000011",         // payload len = 17
        "14a25522",         // CRC-32 over kind ‖ len ‖ payload
        "00000000",         // worker 0
        "0000000000000003", // round 3
        "00000002",         // proposer node 2
        "01",               // vote = true
    );
    assert_eq!(hex(&wal_frame), expected_wal_hex);

    // §9.2 — block-log entry: one definite block of worker 0, carrying the
    // §8 fixture header and a single "FIRE" transaction.
    let block = StoredBlock {
        worker: WorkerId(0),
        signed_header: signed_header(),
        txs: vec![Transaction::new(1, 2, b"FIRE".as_slice())],
    };
    let block_frame = encode_record(REC_BLOCK, &block.encode());
    let expected_block_hex = concat!(
        "464c5352",                                                         // record magic "FLSR"
        "01",                                                               // kind REC_BLOCK
        "000000c1",                                                         // payload len = 193
        "e21ba261",         // CRC-32 over kind ‖ len ‖ payload
        "00000000",         // worker 0
        "0000000000000003", // header: round 3
        "00000001",         // header: worker 1
        "00000002",         // header: proposer 2
        "1111111111111111111111111111111111111111111111111111111111111111", // parent
        "2222222222222222222222222222222222222222222222222222222222222222", // payload hash
        "0000000a",         // header: tx_count 10
        "0000000000001400", // header: payload_bytes 5120
        "00",               // exec_root absent (presence byte, wire v2 — §12)
        "00000040",         // signature length 64
        "5555555555555555555555555555555555555555555555555555555555555555",
        "5555555555555555555555555555555555555555555555555555555555555555", // signature
        "00000001",                                                         // tx count 1
        "0000000000000001",                                                 // tx client 1
        "0000000000000002",                                                 // tx seq 2
        "00000004",                                                         // tx payload len
        "46495245",                                                         // "FIRE"
    );
    assert_eq!(hex(&block_frame), expected_block_hex);

    // §9.4 — sealed-segment footer indexing two records at offsets 0 and 30
    // (30 is exactly the framed WAL vote record's length: 13-byte header +
    // 17-byte payload).
    assert_eq!(wal_frame.len(), 30);
    let footer = encode_footer(&[0, 30]);
    let expected_footer_hex = concat!(
        "0000000000000000", // offset[0] = 0
        "000000000000001e", // offset[1] = 30
        "00000002",         // count = 2
        "3e0bd342",         // CRC-32 over offsets ‖ count
        "464c5346",         // footer magic "FLSF"
    );
    assert_eq!(hex(&footer), expected_footer_hex);

    // Every golden must also roundtrip through the recovery path: the two
    // records concatenated scan back losslessly, and the footer decodes to
    // the same offsets with the record region ending where it began.
    let mut segment = wal_frame.clone();
    segment.extend_from_slice(&block_frame);
    let (records, valid) = scan_records(&segment);
    assert_eq!(valid, segment.len());
    assert_eq!(records.len(), 2);
    assert_eq!(
        WalRecord::decode_record(records[0].0, &records[0].1).unwrap(),
        vote
    );
    assert_eq!(records[1].0, REC_BLOCK);
    assert_eq!(StoredBlock::decode(&records[1].1).unwrap(), block);

    let mut sealed = segment.clone();
    sealed.extend_from_slice(&footer);
    let (offsets, region) = decode_footer(&sealed).expect("footer decodes");
    assert_eq!(offsets, vec![0, 30]);
    assert_eq!(region, segment.len());
}

/// The golden encodings of WIRE_FORMAT.md §12.1 (executable transaction
/// payloads) and §12.2 (receipts). Executable payloads are interpreted by
/// every replica's execution stage, so a silent layout change would make
/// replicas disagree about what a committed ledger *means* — the worst kind
/// of fork. A failure here requires a §12 spec update and a `WIRE_VERSION`
/// bump, never a silent change.
#[test]
fn golden_exec_payloads_of_wire_format_section_12_are_unchanged() {
    let ops: Vec<(TxOp, &str)> = vec![
        (
            TxOp::CreateAccount {
                account: 7,
                balance: 1000,
            },
            "ec00000000000000000700000000000003e8",
        ),
        (
            TxOp::Transfer {
                from: 7,
                to: 9,
                amount: 50,
                nonce: 0,
            },
            concat!(
                "ec01",
                "0000000000000007",
                "0000000000000009",
                "0000000000000032",
                "0000000000000000",
            ),
        ),
        (
            TxOp::KvPut {
                key: 3,
                value: Bytes::from(vec![1, 2, 3]),
            },
            "ec02000000000000000300000003010203",
        ),
        (TxOp::KvDelete { key: 3 }, "ec030000000000000003"),
        (
            TxOp::Cas {
                key: 4,
                expect: None,
                swap: Bytes::from(vec![9]),
            },
            "ec040000000000000004000000000109",
        ),
        (
            TxOp::Cas {
                key: 4,
                expect: Some(Bytes::from(vec![9])),
                swap: Bytes::from(vec![8, 8]),
            },
            "ec040000000000000004010000000109000000020808",
        ),
    ];
    for (op, want) in &ops {
        assert_eq!(
            hex(&op.encode_payload()),
            *want,
            "§12.1 golden moved for {op:?}"
        );
        // And the payload classifies back to exactly this op.
        assert_eq!(
            fireledger_types::TxOp::classify_payload(&op.encode_payload()),
            fireledger_types::DecodedOp::Op(op.clone()),
        );
    }

    let receipts: Vec<(Receipt, &str)> = vec![
        (Receipt::Applied, "00"),
        (
            Receipt::InsufficientFunds {
                balance: 1,
                needed: 2,
            },
            "0100000000000000010000000000000002",
        ),
        (
            Receipt::BadNonce {
                expected: 3,
                got: 4,
            },
            "0200000000000000030000000000000004",
        ),
        (Receipt::UnknownAccount { account: 5 }, "030000000000000005"),
        (Receipt::AccountExists { account: 6 }, "040000000000000006"),
        (Receipt::CasMismatch, "05"),
        (Receipt::Opaque, "06"),
        (Receipt::Malformed, "07"),
    ];
    for (receipt, want) in &receipts {
        assert_eq!(
            hex(&receipt.encode()),
            *want,
            "§12.2 golden moved for {receipt:?}"
        );
    }

    // Both layouts also satisfy the reuse/roundtrip contract.
    let mut scratch = vec![0xEEu8; 5];
    for (op, _) in &ops {
        assert_codec_contract(op, &mut scratch);
    }
    for (receipt, _) in &receipts {
        assert_codec_contract(receipt, &mut scratch);
    }
}

/// §4.5 / §12.3: the canonical header bytes — the signing pre-image — with
/// the execution root absent (93 bytes) and present (125 bytes), pinned
/// byte for byte. The presence byte is always encoded, so a version-1
/// 92-byte header can never be confused with either form.
#[test]
fn canonical_bytes_with_exec_root_are_pinned() {
    let bare = signed_header().header;
    let with_root = bare.clone().with_exec_root(Hash([0x33; 32]));

    let fixed92 = concat!(
        "0000000000000003",
        "00000001",
        "00000002",
        "1111111111111111111111111111111111111111111111111111111111111111",
        "2222222222222222222222222222222222222222222222222222222222222222",
        "0000000a",
        "0000000000001400",
    );
    assert_eq!(bare.canonical_bytes().as_ref().len(), 93);
    assert_eq!(hex(bare.canonical_bytes().as_ref()), format!("{fixed92}00"));
    assert_eq!(with_root.canonical_bytes().as_ref().len(), 125);
    assert_eq!(
        hex(with_root.canonical_bytes().as_ref()),
        format!("{fixed92}01{}", "33".repeat(32)),
    );
    // The wire encoding IS the canonical form, for both shapes.
    assert_eq!(bare.encode(), bare.canonical_bytes().as_ref());
    assert_eq!(with_root.encode(), with_root.canonical_bytes().as_ref());
}
