//! Contract tests for the `WireCodec` size-hint / buffer-reuse API.
//!
//! Every protocol message of all five protocols must satisfy, for every
//! variant:
//!
//! * `encoded_len()` returns exactly the number of bytes `encode_to`
//!   appends (the hint the framing layer sizes buffers with);
//! * `encode_into` through a **reused, dirty** scratch buffer produces the
//!   same bytes as a fresh `encode()` — buffer reuse must never change the
//!   wire format;
//! * the bytes decode back to the original value.
//!
//! Plus the golden-hex anchor: the worked example of `docs/WIRE_FORMAT.md`
//! §8 must come out byte-for-byte unchanged through the *new* buffer-reuse
//! path, proving the optimisations did not move a single wire bit.

use fireledger::{ConsensusValue, FloMsg, PanicProof, WorkerMsg};
use fireledger_baselines::hotstuff::QuorumCert;
use fireledger_baselines::{HotStuffMsg, OrderedBatch};
use fireledger_bft::{ObbcMsg, PbftMsg, RbMsg};
use fireledger_types::codec::FrameHeader;
use fireledger_types::{
    BlockHeader, Hash, NodeId, Round, Signature, SignedHeader, Transaction, WireCodec, WorkerId,
    GENESIS_HASH,
};
use std::fmt::Debug;

fn signed_header() -> SignedHeader {
    SignedHeader::new(
        BlockHeader::new(
            Round(3),
            WorkerId(1),
            NodeId(2),
            Hash([0x11; 32]),
            Hash([0x22; 32]),
            10,
            5120,
        ),
        Signature::from(vec![0x55u8; 64]),
    )
}

fn txs() -> Vec<Transaction> {
    vec![
        Transaction::zeroed(1, 0, 64),
        Transaction::new(2, 1, vec![7, 8, 9]),
        Transaction::new(3, 2, Vec::new()),
    ]
}

/// The codec contract, checked through one shared dirty scratch buffer so
/// reuse across *different* message types and sizes is exercised too.
fn assert_codec_contract<T: WireCodec + PartialEq + Debug>(value: &T, scratch: &mut Vec<u8>) {
    let fresh = value.encode();
    assert_eq!(
        fresh.len(),
        value.encoded_len(),
        "encoded_len mismatch for {value:?}"
    );
    value.encode_into(scratch);
    assert_eq!(
        *scratch, fresh,
        "encode_into diverged from encode for {value:?}"
    );
    let back = T::decode(&fresh).expect("roundtrip decode");
    assert_eq!(back, *value, "roundtrip changed the value");
    // The zero-copy path (views into a shared backing buffer) must produce
    // a value equal to both the copying decode and the original.
    let backing = fireledger_types::Bytes::from(fresh);
    let shared = T::decode_shared(&backing).expect("shared decode");
    assert_eq!(shared, *value, "decode_shared changed the value");
}

fn every_worker_msg() -> Vec<WorkerMsg> {
    vec![
        WorkerMsg::BlockData {
            payload_hash: Hash([0xAB; 32]),
            txs: txs(),
        },
        WorkerMsg::Header {
            header: signed_header(),
        },
        WorkerMsg::Vote {
            round: Round(4),
            proposer: NodeId(1),
            vote: true,
            piggyback: Some(signed_header()),
        },
        WorkerMsg::Vote {
            round: Round(4),
            proposer: NodeId(1),
            vote: false,
            piggyback: None,
        },
        WorkerMsg::PullHeader {
            round: Round(9),
            proposer: NodeId(2),
        },
        WorkerMsg::PullHeaderReply {
            header: signed_header(),
        },
        WorkerMsg::PullBlock {
            payload_hash: GENESIS_HASH,
        },
        WorkerMsg::PullBlockReply {
            payload_hash: GENESIS_HASH,
            txs: txs(),
        },
        WorkerMsg::Panic(RbMsg::Echo {
            origin: NodeId(0),
            tag: 5,
            value: PanicProof {
                detected_round: Round(4),
                conflicting: signed_header(),
                local_parent: Some(signed_header()),
            },
        }),
        WorkerMsg::Consensus(PbftMsg::PrePrepare {
            view: 1,
            seq: 2,
            value: ConsensusValue::FallbackVote {
                round: Round(7),
                proposer: NodeId(0),
                voter: NodeId(1),
                vote: true,
                evidence: Some(signed_header()),
            },
        }),
        WorkerMsg::Consensus(PbftMsg::ViewChange {
            new_view: 3,
            prepared: vec![(
                9,
                ConsensusValue::RecoveryVersion {
                    recovery_round: Round(11),
                    from: NodeId(3),
                    version: vec![signed_header(); 2],
                },
            )],
        }),
    ]
}

#[test]
fn flo_messages_satisfy_the_codec_contract() {
    let mut scratch = vec![0xFFu8; 7]; // deliberately dirty and missized
    for msg in every_worker_msg() {
        assert_codec_contract(&msg, &mut scratch);
        assert_codec_contract(
            &FloMsg {
                worker: WorkerId(5),
                inner: msg,
            },
            &mut scratch,
        );
    }
}

#[test]
fn bft_messages_satisfy_the_codec_contract() {
    let mut scratch = Vec::new();
    for msg in [
        RbMsg::Init {
            origin: NodeId(0),
            tag: 1,
            value: 42u64,
        },
        RbMsg::Echo {
            origin: NodeId(1),
            tag: 2,
            value: 43u64,
        },
        RbMsg::Ready {
            origin: NodeId(2),
            tag: 3,
            value: 44u64,
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    for msg in [
        PbftMsg::Request { value: 7u64 },
        PbftMsg::PrePrepare {
            view: 1,
            seq: 2,
            value: 7u64,
        },
        PbftMsg::Prepare {
            view: 1,
            seq: 2,
            digest: 3,
        },
        PbftMsg::Commit {
            view: 1,
            seq: 2,
            digest: 3,
        },
        PbftMsg::ViewChange {
            new_view: 2,
            prepared: vec![(1, 7u64), (2, 8u64)],
        },
        PbftMsg::NewView {
            view: 2,
            preprepares: vec![(3, 9u64)],
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    for msg in [
        ObbcMsg::Vote {
            instance: 9,
            value: true,
        },
        ObbcMsg::EvidenceRequest { instance: 9 },
        ObbcMsg::EvidenceReply {
            instance: 9,
            evidence: Some(signed_header()),
        },
        ObbcMsg::EvidenceReply {
            instance: 10,
            evidence: None,
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
}

#[test]
fn baseline_messages_satisfy_the_codec_contract() {
    let mut scratch = Vec::new();
    let qc = QuorumCert {
        view: 4,
        block_hash: Hash([0x77; 32]),
    };
    assert_codec_contract(&qc, &mut scratch);
    for msg in [
        HotStuffMsg::Proposal {
            view: 5,
            header: signed_header(),
            txs: txs(),
            justify: qc.clone(),
        },
        HotStuffMsg::Vote {
            view: 5,
            block_hash: Hash([0x66; 32]),
        },
        HotStuffMsg::NewView {
            view: 6,
            high_qc: qc.clone(),
        },
    ] {
        assert_codec_contract(&msg, &mut scratch);
    }
    let batch = OrderedBatch {
        assembler: NodeId(2),
        seq: 17,
        txs: txs(),
    };
    assert_codec_contract(&batch, &mut scratch);
    assert_codec_contract(&PbftMsg::Request { value: batch }, &mut scratch);
}

/// The worked example of WIRE_FORMAT.md §8 — through the buffer-reuse path.
/// These bytes are the normative anchor: if this test fails, the hot-path
/// optimisations changed the wire format, which is a bug (or requires a
/// `WIRE_VERSION` bump and a spec update).
#[test]
fn golden_frame_of_wire_format_section_8_is_unchanged() {
    let msg = FloMsg {
        worker: WorkerId(0),
        inner: WorkerMsg::BlockData {
            payload_hash: Hash([0x22; 32]),
            txs: vec![Transaction::new(1, 2, b"FIRE".as_slice())],
        },
    };
    // Encode through the reused-buffer path.
    let mut payload = vec![0xEEu8; 100];
    msg.encode_into(&mut payload);
    assert_eq!(payload.len(), msg.encoded_len());

    let mut frame = FrameHeader::new(payload.len()).encode().to_vec();
    frame.extend_from_slice(&payload);
    let got_hex: String = frame.iter().map(|b| format!("{b:02x}")).collect();
    let expected_hex = concat!(
        "464c4752",
        "01",
        "00000041",
        "00000000",
        "01",
        "2222222222222222222222222222222222222222222222222222222222222222",
        "00000001",
        "0000000000000001",
        "0000000000000002",
        "00000004",
        "46495245",
    );
    assert_eq!(got_hex, expected_hex);
    assert_eq!(FloMsg::decode(&payload).unwrap(), msg);
}
