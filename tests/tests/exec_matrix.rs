//! The execution engine's acceptance battery: differential, property, and
//! cross-runtime state-root identity.
//!
//! Three layers, one claim — execution is a *pure function of the committed
//! ledger*, independent of parallelism width, pipeline scheduling, restarts,
//! and the runtime that delivered the blocks:
//!
//! * **Differential** — the pipelined engine ([`ExecShared`] over the
//!   conflict-partitioned apply) against the naive serial reference
//!   ([`SerialExecutor`]): bit-identical state roots after *every* block and
//!   bit-identical receipts for every transaction, at widths 1, 2 and 4.
//!   The default run covers a few hundred randomized blocks; the `--ignored`
//!   companion grinds 10 000.
//! * **Property ×24** — randomized adversarial op streams (duplicate
//!   account creation, zero-amount transfers, nonce gaps, hot-key
//!   collisions, malformed and opaque payloads): replaying the same
//!   committed ledger twice yields the same root, including a replay through
//!   `fireledger-store` — append, reopen as a kill-9 survivor would, decode,
//!   re-execute — and an in-place [`ExecShared::reset`] replay. A torn tail
//!   recovers to the root of the longest valid prefix.
//! * **Identity matrix** — FLO and Worker clusters on the simulator, the
//!   threaded runtime and the TCP runtime agree on the per-round execution
//!   roots (the roots headers carry under the `k − (f+3)` lag rule), in
//!   fault-free runs and under the partition-heal and crash-recover catalog
//!   plans.

use fireledger_crypto::{CryptoPool, SimKeyStore};
use fireledger_exec::{execute_block, ExecConfig, ExecShared, SerialExecutor, StateMachine};
use fireledger_runtime::catalog;
use fireledger_runtime::prelude::*;
use fireledger_store::{inject, FsyncPolicy as StorePolicy, NodeStore};
use fireledger_types::{
    Block, BlockHeader, Bytes, DetRng, Hash, NodeId, Receipt, Round, Signature, SignedHeader,
    StoredBlock, Transaction, TxOp, WireCodec, WorkerId, GENESIS_HASH, OP_MAGIC,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const GENESIS_ACCOUNTS: u64 = 32;
const GENESIS_BALANCE: u64 = 10_000;

fn pool(width: usize) -> CryptoPool {
    CryptoPool::with_forced_threads(Arc::new(SimKeyStore::generate(4, 0)), width)
}

fn exec_at_width(width: usize) -> ExecShared {
    let cfg = ExecConfig {
        apply_width: width,
        ..ExecConfig::with_genesis(GENESIS_ACCOUNTS, GENESIS_BALANCE)
    };
    ExecShared::new(&cfg, pool(width))
}

fn block(round: u64, txs: Vec<Transaction>) -> Block {
    let header = BlockHeader::new(
        Round(round),
        WorkerId(0),
        NodeId(0),
        GENESIS_HASH,
        GENESIS_HASH,
        txs.len() as u32,
        0,
    );
    Block::new(header, txs)
}

fn op_tx(client: u64, seq: u64, op: &TxOp) -> Transaction {
    Transaction {
        client,
        seq,
        payload: op.encode_payload(),
    }
}

/// One randomized adversarial transaction. The generator deliberately
/// produces every failure mode the receipt vocabulary names: duplicate
/// account creation, transfers from/to missing accounts, zero-amount
/// transfers, nonce gaps (random nonces against densely incremented
/// state), CAS races on a tiny key space, oversized-free malformed
/// payloads, and opaque filler.
fn adversarial_tx(rng: &mut DetRng, seq: u64) -> Transaction {
    // A key space just past genesis, so "exists" vs "missing" both happen,
    // and a hot sub-space so ops collide on the same keys constantly.
    let account = |rng: &mut DetRng| {
        if rng.gen_below(3) == 0 {
            rng.gen_below(4) // hot: guaranteed collisions
        } else {
            rng.gen_below(GENESIS_ACCOUNTS + 8)
        }
    };
    let kv_key = |rng: &mut DetRng| rng.gen_below(12);
    match rng.gen_below(12) {
        0 | 1 => {
            // Half of these hit an existing id — the duplicated-account case.
            let target = account(rng);
            op_tx(
                target,
                seq,
                &TxOp::CreateAccount {
                    account: target,
                    balance: rng.gen_below(500),
                },
            )
        }
        2..=5 => {
            let from = account(rng);
            // Zero amounts and nonce gaps are the point, not an accident.
            let amount = if rng.gen_below(4) == 0 {
                0
            } else {
                rng.gen_below(300)
            };
            let nonce = rng.gen_below(6);
            op_tx(
                from,
                seq,
                &TxOp::Transfer {
                    from,
                    to: account(rng),
                    amount,
                    nonce,
                },
            )
        }
        6 | 7 => op_tx(
            5,
            seq,
            &TxOp::KvPut {
                key: kv_key(rng),
                value: Bytes::from(vec![rng.next_u64() as u8; (rng.gen_below(8) + 1) as usize]),
            },
        ),
        8 => op_tx(5, seq, &TxOp::KvDelete { key: kv_key(rng) }),
        9 => {
            let expect = if rng.gen_below(2) == 0 {
                None
            } else {
                Some(Bytes::from(vec![rng.next_u64() as u8]))
            };
            op_tx(
                5,
                seq,
                &TxOp::Cas {
                    key: kv_key(rng),
                    expect,
                    swap: Bytes::from(vec![rng.next_u64() as u8; 2]),
                },
            )
        }
        10 => Transaction {
            // Malformed: carries the op magic but decodes to garbage.
            client: 6,
            seq,
            payload: Bytes::from(vec![OP_MAGIC, 0xFF, 0xFF]),
        },
        _ => Transaction::zeroed(7, seq, 24),
    }
}

fn random_ledger(seed: u64, blocks: usize, max_txs: u64) -> Vec<Vec<Transaction>> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut seq = 0u64;
    (0..blocks)
        .map(|_| {
            let len = rng.gen_below(max_txs) + 1;
            (0..len)
                .map(|_| {
                    seq += 1;
                    adversarial_tx(&mut rng, seq)
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Differential: pipelined vs naive serial reference.
// ---------------------------------------------------------------------------

/// Runs `blocks` randomized blocks through the serial reference once, then
/// through the full pipelined engine at every width — demanding bit-equal
/// receipts per transaction and bit-equal roots after every single block.
fn differential(blocks: usize, seed: u64) {
    let ledger = random_ledger(seed, blocks, 64);
    // The specification: strictly serial execution, sequential merkle root.
    let mut serial = SerialExecutor::with_genesis(GENESIS_ACCOUNTS, GENESIS_BALANCE);
    let mut expected: Vec<(Vec<Receipt>, Hash)> = Vec::with_capacity(ledger.len());
    for txs in &ledger {
        let receipts = serial.execute_block(txs);
        expected.push((receipts, serial.root()));
    }
    for width in [1usize, 2, 4] {
        // Receipt differential: the conflict-partitioned apply at this width.
        let mut state = StateMachine::with_genesis(GENESIS_ACCOUNTS, GENESIS_BALANCE);
        // Root differential: the full shared pipeline (queue + lagged roots).
        let exec = exec_at_width(width);
        for (round, txs) in ledger.iter().enumerate() {
            let receipts = execute_block(&mut state, txs, width);
            assert_eq!(
                receipts, expected[round].0,
                "receipts diverged from serial reference: block {round}, width {width}"
            );
            exec.enqueue(round as u64, &block(round as u64, txs.clone()));
            // Every root, not just the last: a transient divergence that
            // happened to cancel out later must still fail.
            assert_eq!(
                exec.prefix_root(Some(round as u64)),
                Some(expected[round].1),
                "state root diverged from serial reference: block {round}, width {width}"
            );
        }
        let stats = exec.stats();
        assert_eq!(stats.executed_blocks, ledger.len() as u64);
        assert_eq!(
            stats.executed_txs,
            ledger.iter().map(|b| b.len() as u64).sum::<u64>()
        );
    }
}

#[test]
fn pipelined_execution_matches_serial_reference_at_widths_1_2_4() {
    differential(250, 0xD1FF);
}

/// The full-depth grind: 10 000 randomized blocks per width. Run with
/// `cargo test -p fireledger-integration-tests -- --ignored exec_matrix`.
#[test]
#[ignore = "10k-block differential grind; the smoke variant runs by default"]
fn pipelined_execution_matches_serial_reference_over_10k_blocks() {
    differential(10_000, 0xD1FF_1000);
}

#[test]
fn stage_thread_execution_matches_inline_execution() {
    // The threads/tcp runtimes drain through a dedicated stage thread; the
    // simulator drains inline on enqueue. Same ledger, same root — the
    // scheduling seam must be invisible in the state.
    let ledger = random_ledger(0x57A6E, 120, 48);
    let inline = exec_at_width(2);
    for (round, txs) in ledger.iter().enumerate() {
        inline.enqueue(round as u64, &block(round as u64, txs.clone()));
    }
    let staged = exec_at_width(2);
    {
        let _stage = fireledger_exec::spawn_stage(&staged);
        for (round, txs) in ledger.iter().enumerate() {
            staged.enqueue(round as u64, &block(round as u64, txs.clone()));
        }
        // Dropping the stage shuts it down after the queue drains.
    }
    staged.finish();
    assert_eq!(staged.latest_root(), inline.latest_root());
    assert_eq!(
        staged.stats().executed_blocks,
        inline.stats().executed_blocks
    );
    assert_eq!(staged.stats().receipts, inline.stats().receipts);
}

// ---------------------------------------------------------------------------
// Property ×24: replay determinism, through memory and through the store.
// ---------------------------------------------------------------------------

/// A unique, pre-cleaned store directory per call (tests share a process).
fn store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fl-exec-matrix-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn replay_root(ledger: &[Vec<Transaction>]) -> Hash {
    let exec = exec_at_width(2);
    for (round, txs) in ledger.iter().enumerate() {
        exec.enqueue(round as u64, &block(round as u64, txs.clone()));
    }
    exec.latest_root()
}

fn stored(round: u64, txs: &[Transaction]) -> Vec<u8> {
    let header = BlockHeader::new(
        Round(round),
        WorkerId(0),
        NodeId(0),
        GENESIS_HASH,
        GENESIS_HASH,
        txs.len() as u32,
        0,
    );
    StoredBlock {
        worker: WorkerId(0),
        signed_header: SignedHeader::new(header, Signature::empty()),
        txs: txs.to_vec(),
    }
    .encode()
}

#[test]
fn replaying_the_same_committed_ledger_always_yields_the_same_root() {
    for seed in 0..24u64 {
        let ledger = random_ledger(seed, 24, 40);
        let first = replay_root(&ledger);

        // Property 1: a second independent executor replays to the same root.
        assert_eq!(replay_root(&ledger), first, "replay diverged: seed {seed}");

        // Property 2: an in-place reset (the restart-from-disk path inside a
        // live node) replays to the same root and counts the reset.
        let exec = exec_at_width(2);
        for (round, txs) in ledger.iter().enumerate() {
            exec.enqueue(round as u64, &block(round as u64, txs.clone()));
        }
        exec.reset();
        for (round, txs) in ledger.iter().enumerate() {
            exec.enqueue(round as u64, &block(round as u64, txs.clone()));
        }
        assert_eq!(
            exec.latest_root(),
            first,
            "reset replay diverged: seed {seed}"
        );
        assert_eq!(exec.stats().resets, 1);

        // Property 3: the ledger survives a trip through the durable store —
        // append every block with per-append fsync (so an abrupt death loses
        // nothing), reopen the directory the way a kill-9 restart does, and
        // re-execute exactly what recovery scanned off the disk.
        let dir = store_dir("replay");
        {
            let (store, recovered) =
                NodeStore::open(&dir, StorePolicy::Always).expect("open fresh store");
            assert!(recovered.blocks.is_empty());
            for (round, txs) in ledger.iter().enumerate() {
                store
                    .append_block(stored(round as u64, txs))
                    .expect("append block");
            }
            store.flush();
        }
        let (_store, recovered) =
            NodeStore::open(&dir, StorePolicy::Always).expect("reopen after kill");
        assert_eq!(recovered.blocks.len(), ledger.len(), "seed {seed}");
        let exec = exec_at_width(2);
        for (round, (_kind, payload)) in recovered.blocks.iter().enumerate() {
            let block_from_disk = StoredBlock::decode(payload).expect("decode stored block");
            assert_eq!(block_from_disk.txs, ledger[round]);
            exec.enqueue(
                round as u64,
                &block(round as u64, block_from_disk.txs.clone()),
            );
        }
        assert_eq!(
            exec.latest_root(),
            first,
            "restart-from-disk replay diverged: seed {seed}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_tail_recovery_replays_to_the_root_of_the_valid_prefix() {
    // The crash-consistency corner of the replay property: chop bytes off
    // the block log mid-record, reopen, and the recovered prefix must
    // execute to exactly the serial root of that prefix — never a root of
    // some half-applied block.
    for seed in [3u64, 11, 19] {
        let ledger = random_ledger(seed, 16, 32);
        let dir = store_dir("torn");
        {
            let (store, _) = NodeStore::open(&dir, StorePolicy::Always).expect("open");
            for (round, txs) in ledger.iter().enumerate() {
                store
                    .append_block(stored(round as u64, txs))
                    .expect("append");
            }
            store.flush();
        }
        inject::torn_write(&dir, 37).expect("tear the tail");
        let (_store, recovered) = NodeStore::open(&dir, StorePolicy::Always).expect("reopen");
        let prefix = recovered.blocks.len();
        assert!(
            prefix < ledger.len(),
            "the torn write must cost at least the damaged record: seed {seed}"
        );
        let mut serial = SerialExecutor::with_genesis(GENESIS_ACCOUNTS, GENESIS_BALANCE);
        for txs in &ledger[..prefix] {
            serial.execute_block(txs);
        }
        let exec = exec_at_width(4);
        for (round, (_kind, payload)) in recovered.blocks.iter().enumerate() {
            let from_disk = StoredBlock::decode(payload).expect("decode");
            exec.enqueue(round as u64, &block(round as u64, from_disk.txs.clone()));
        }
        assert_eq!(
            exec.latest_root(),
            serial.root(),
            "torn-tail prefix root diverged: seed {seed}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Cross-runtime state-root identity matrix.
// ---------------------------------------------------------------------------

fn matrix_params(workers: usize) -> ProtocolParams {
    // Saturated mode with *executable* filler: block contents stay a pure
    // function of (proposer, filler sequence) — the property the ledger
    // identity matrix already relies on — while every block now moves the
    // execution state. Real-time ingress would admit different transactions
    // per runtime and make roots incomparable by construction.
    ProtocolParams::new(4)
        .with_workers(workers)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(250))
        .with_fill_ops(fireledger_types::FillOps {
            accounts: GENESIS_ACCOUNTS,
            conflict_pct: 50,
        })
}

fn matrix_scenario(name: &str, plan: Option<FaultPlan>) -> Scenario {
    // Fault plans need room for the fault window (injected at 250 ms,
    // healed at 500 ms) plus a post-heal tail; fault-free runs keep the
    // matrix cheap with a shorter window.
    let duration = if plan.is_some() { 900 } else { 600 };
    let s = Scenario::new(name)
        .ideal()
        .run_for(Duration::from_millis(duration))
        .with_warmup(Duration::ZERO)
        .with_seed(7);
    match plan {
        Some(plan) => s.with_faults(plan),
        None => s,
    }
}

/// Runs one protocol on one runtime and extracts, per worker stream, the
/// executed state root after every round up to the deepest round *every*
/// node of that stream has executed. Asserts intra-cluster identity (all
/// nodes agree on every per-round root) before returning node 0's trace.
fn exec_root_trace<P, R>(runtime: &R, workers: usize, plan: Option<FaultPlan>) -> Vec<Vec<Hash>>
where
    P: ClusterProtocol,
    P::Msg:
        fireledger_types::WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
    R: Runtime,
{
    let builder = ClusterBuilder::<P>::new(matrix_params(workers))
        .with_seed(7)
        .with_execution(ExecConfig::with_genesis(GENESIS_ACCOUNTS, GENESIS_BALANCE));
    let plan_name = plan.as_ref().map(|p| p.name.clone()).unwrap_or_default();
    let scenario = matrix_scenario("exec-identity", plan);
    let report = runtime
        .run(&builder, &scenario)
        .unwrap_or_else(|e| panic!("identity run failed on {}: {e}", runtime.name()));
    assert_eq!(
        report.execution.root_mismatches,
        0,
        "{} {plan_name}: delivered headers carried diverging roots",
        runtime.name()
    );
    let shards = builder.exec_shards().expect("execution was enabled");
    let nodes = shards.len();
    (0..shards[0].len())
        .map(|w| {
            let common = (0..nodes)
                .filter_map(|n| shards[n][w].stats().last_round)
                .min()
                .unwrap_or_else(|| {
                    panic!(
                        "{} {plan_name}: worker {w} executed nothing on any node",
                        runtime.name()
                    )
                });
            (0..=common)
                .map(|r| {
                    let roots: Vec<Option<Hash>> = (0..nodes)
                        .map(|n| shards[n][w].prefix_root(Some(r)))
                        .collect();
                    let first = roots[0].unwrap_or_else(|| {
                        panic!("{}: worker {w} round {r} has no root", runtime.name())
                    });
                    for (n, root) in roots.iter().enumerate() {
                        assert_eq!(
                            *root,
                            Some(first),
                            "{} {plan_name}: node {n} diverged on worker {w} round {r}",
                            runtime.name()
                        );
                    }
                    first
                })
                .collect()
        })
        .collect()
}

/// Cross-runtime comparison: runtimes cover different amounts of protocol
/// time in the same scenario, so traces are compared on their common prefix
/// — which must be non-empty and bit-identical.
fn assert_trace_prefixes(a: &[Vec<Hash>], b: &[Vec<Hash>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: worker stream counts differ");
    for (w, (ta, tb)) in a.iter().zip(b).enumerate() {
        let common = ta.len().min(tb.len());
        assert!(
            common > 0,
            "{context}: worker {w} has no common executed prefix"
        );
        assert_eq!(
            &ta[..common],
            &tb[..common],
            "{context}: execution roots diverged on worker {w}"
        );
    }
}

fn assert_root_identity<P>(protocol: &str, workers: usize, plan: Option<FaultPlan>)
where
    P: ClusterProtocol,
    P::Msg:
        fireledger_types::WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    let sim = exec_root_trace::<P, _>(&Simulator, workers, plan.clone());
    let threads = exec_root_trace::<P, _>(&Threads, workers, plan.clone());
    let tcp = exec_root_trace::<P, _>(&Tcp, workers, plan);
    assert_trace_prefixes(&sim, &threads, &format!("{protocol}: sim vs threads"));
    assert_trace_prefixes(&sim, &tcp, &format!("{protocol}: sim vs tcp"));
    // The roots must actually move: a trace frozen at the genesis root
    // would pass identity vacuously.
    let moved = sim
        .iter()
        .any(|trace| trace.windows(2).any(|w| w[0] != w[1]) || trace.len() == 1);
    assert!(
        sim.iter().any(|t| t.len() > 1) && moved,
        "{protocol}: no state transitions reached the executor"
    );
}

#[test]
fn flo_state_roots_agree_on_all_three_runtimes() {
    assert_root_identity::<FloCluster>("flo", 2, None);
}

#[test]
fn worker_state_roots_agree_on_all_three_runtimes() {
    assert_root_identity::<Worker>("worker", 1, None);
}

#[test]
fn flo_state_root_identity_survives_partition_heal() {
    let plan = catalog::partition_heal(4, Duration::from_millis(250), Duration::from_millis(500));
    assert_root_identity::<FloCluster>("flo/partition-heal", 2, Some(plan));
}

#[test]
fn worker_state_root_identity_survives_partition_heal() {
    let plan = catalog::partition_heal(4, Duration::from_millis(250), Duration::from_millis(500));
    assert_root_identity::<Worker>("worker/partition-heal", 1, Some(plan));
}

#[test]
fn flo_state_root_identity_survives_crash_recover() {
    let plan =
        catalog::crash_recover_last(4, Duration::from_millis(250), Duration::from_millis(500));
    assert_root_identity::<FloCluster>("flo/crash-recover", 2, Some(plan));
}

#[test]
fn worker_state_root_identity_survives_crash_recover() {
    let plan =
        catalog::crash_recover_last(4, Duration::from_millis(250), Duration::from_millis(500));
    assert_root_identity::<Worker>("worker/crash-recover", 1, Some(plan));
}
