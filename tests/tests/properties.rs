//! Randomized property tests over the core data structures and the
//! protocol's key invariants under randomized schedules. Each property runs a
//! fixed number of cases driven by the workspace's deterministic RNG, so a
//! failure reproduces exactly from the printed case seed.

use fireledger::chain::Chain;
use fireledger::proposer::ProposerRotation;
use fireledger::timer::EmaTimer;
use fireledger_crypto::{merkle_root, CryptoProvider, MerkleTree, SimKeyStore};
use fireledger_integration_tests::*;
use fireledger_runtime::prelude::*;
use fireledger_sim::{LatencyModel, SimConfig, Simulation};
use fireledger_types::{DetRng, GENESIS_HASH};
use std::time::Duration;

const CASES: u64 = 32;

fn random_txs(rng: &mut DetRng) -> Vec<Transaction> {
    let count = rng.gen_below(20) as usize;
    (0..count)
        .map(|i| {
            let client = rng.gen_below(4);
            let seq = rng.gen_below(1000).wrapping_add(i as u64);
            let len = 1 + rng.gen_below(63) as usize;
            Transaction::new(client, seq, vec![0xAB; len])
        })
        .collect()
}

#[test]
fn merkle_proofs_verify_for_every_leaf() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let txs = random_txs(&mut rng);
        let tree = MerkleTree::build(&txs);
        let root = tree.root();
        for (i, tx) in txs.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            assert!(
                MerkleTree::verify(&root, tx, &proof),
                "case {case}, leaf {i}"
            );
        }
        assert_eq!(root, merkle_root(&txs), "case {case}");
    }
}

#[test]
fn merkle_root_detects_any_single_mutation() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(1000 + case);
        let txs = random_txs(&mut rng);
        if txs.is_empty() {
            continue;
        }
        let idx = rng.gen_below(txs.len() as u64) as usize;
        let root = merkle_root(&txs);
        let mut mutated = txs.clone();
        mutated[idx] = Transaction::new(999, 999_999, vec![0xCD; 7]);
        assert_ne!(root, merkle_root(&mutated), "case {case}, index {idx}");
    }
}

#[test]
fn chain_growth_preserves_validation_and_finality() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(2000 + case);
        let len = 1 + rng.gen_below(39) as usize;
        let n = 4 + rng.gen_below(7) as usize;
        let crypto = SimKeyStore::generate(n, 1);
        let cluster = ClusterConfig::new(n);
        let mut chain = Chain::new(cluster);
        for i in 0..len {
            let proposer = NodeId((i % n) as u32);
            let header = BlockHeader::new(
                chain.next_round(),
                WorkerId(0),
                proposer,
                chain.tip_hash(),
                GENESIS_HASH,
                0,
                0,
            );
            let sig = crypto.sign(proposer, &header.canonical_bytes());
            let signed = fireledger_types::SignedHeader::new(header, sig);
            assert!(
                chain.validate_extension(&signed, &crypto).is_ok(),
                "case {case}"
            );
            chain.append(signed, None);
            chain.finalize_deep_blocks();
        }
        let f = cluster.f;
        assert_eq!(chain.len(), len, "case {case}");
        assert_eq!(
            chain.definite_len(),
            len.saturating_sub(f + 1),
            "case {case}"
        );
        // A full version exchange round-trips.
        let base = Round(chain.definite_len() as u64);
        let version = chain.version_from(base);
        assert!(
            chain.validate_version(base, &version, &crypto).is_ok(),
            "case {case}"
        );
    }
}

#[test]
fn ema_timer_stays_within_bounds() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(3000 + case);
        let ops = 1 + rng.gen_below(199) as usize;
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(1000);
        let mut timer = EmaTimer::new(base, max, 8);
        for _ in 0..ops {
            if rng.gen_below(2) == 0 {
                timer.record_delivery(Duration::from_millis(3));
            } else {
                timer.record_miss();
            }
            assert!(timer.current() >= base, "case {case}");
            assert!(timer.current() <= max, "case {case}");
        }
    }
}

#[test]
fn proposer_rotation_skip_rule_never_picks_a_recent_proposer() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(4000 + case);
        let mut rot = ProposerRotation::new(ClusterConfig::new(10));
        let decided = rng.gen_below(30) as usize;
        for _ in 0..decided {
            let node = NodeId(rng.gen_below(10) as u32);
            let round = Round(rng.gen_below(100));
            rot.record_decided(node, round);
        }
        let start = NodeId(rng.gen_below(10) as u32);
        let round = Round(5 + rng.gen_below(195));
        let choice = rot.select(start, round);
        if choice.skipped.len() < 10 {
            assert!(rot.eligible(choice.proposer, round), "case {case}");
        }
    }
}

#[test]
fn reshuffled_rotation_is_identical_across_nodes_and_a_permutation() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(5000 + case);
        let mut entropy = [0u8; 32];
        rng.fill_bytes(&mut entropy);
        let entropy = fireledger_types::Hash::from_bytes(entropy);
        let mut a = ProposerRotation::new(ClusterConfig::new(10));
        let mut b = ProposerRotation::new(ClusterConfig::new(10));
        a.reshuffle(&entropy);
        b.reshuffle(&entropy);
        assert_eq!(
            a.order(),
            b.order(),
            "case {case}: reshuffle must be deterministic"
        );
        let mut sorted = a.order().to_vec();
        sorted.sort();
        assert_eq!(
            sorted,
            (0..10u32).map(NodeId).collect::<Vec<_>>(),
            "case {case}: reshuffle must be a permutation"
        );
    }
}

#[test]
fn definite_prefix_agreement_under_random_latency() {
    // Randomized link delays (a different jitter schedule per seed) never
    // break agreement on delivered blocks — the heart of BBFC-Agreement.
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(6000 + case);
        let seed = rng.gen_below(50);
        let max_ms = 1 + rng.gen_below(11);
        let nodes = ClusterBuilder::<FloCluster>::new(test_params(4, 1))
            .with_seed(seed)
            .build()
            .unwrap();
        let config = SimConfig::ideal()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: Duration::from_micros(200),
                max: Duration::from_millis(max_ms),
            });
        let mut sim = Simulation::new(config, nodes);
        sim.run_for(Duration::from_millis(400));
        let seq = |i: u32| {
            sim.deliveries(NodeId(i))
                .iter()
                .map(|d| d.block.header.payload_hash)
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        for i in 1..4u32 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            assert_eq!(
                &other[..common],
                &reference[..common],
                "case {case} (seed {seed}, max {max_ms} ms)"
            );
        }
    }
}
