//! Property-based tests (proptest) over the core data structures and the
//! protocol's key invariants under randomized schedules.

use fireledger::chain::Chain;
use fireledger::prelude::*;
use fireledger::timer::EmaTimer;
use fireledger::proposer::ProposerRotation;
use fireledger_crypto::{merkle_root, CryptoProvider, MerkleTree, SimKeyStore};
use fireledger_integration_tests::*;
use fireledger_sim::{LatencyModel, SimConfig, Simulation};
use fireledger_types::{ClusterConfig, GENESIS_HASH};
use proptest::prelude::*;
use std::time::Duration;

fn arb_txs() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec((0u64..4, 0u64..1000, 1usize..64), 0..20).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (c, s, len))| Transaction::new(c, s.wrapping_add(i as u64), vec![0xAB; len]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merkle_proofs_verify_for_every_leaf(txs in arb_txs()) {
        let tree = MerkleTree::build(&txs);
        let root = tree.root();
        for (i, tx) in txs.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(MerkleTree::verify(&root, tx, &proof));
        }
        prop_assert_eq!(root, merkle_root(&txs));
    }

    #[test]
    fn merkle_root_detects_any_single_mutation(txs in arb_txs(), idx in 0usize..20) {
        prop_assume!(!txs.is_empty());
        let idx = idx % txs.len();
        let root = merkle_root(&txs);
        let mut mutated = txs.clone();
        mutated[idx] = Transaction::new(999, 999_999, vec![0xCD; 7]);
        prop_assert_ne!(root, merkle_root(&mutated));
    }

    #[test]
    fn chain_growth_preserves_validation_and_finality(len in 1usize..40, n in 4usize..11) {
        let crypto = SimKeyStore::generate(n, 1);
        let cluster = ClusterConfig::new(n);
        let mut chain = Chain::new(cluster);
        for i in 0..len {
            let proposer = NodeId((i % n) as u32);
            let header = BlockHeader::new(
                chain.next_round(),
                WorkerId(0),
                proposer,
                chain.tip_hash(),
                GENESIS_HASH,
                0,
                0,
            );
            let sig = crypto.sign(proposer, &header.canonical_bytes());
            let signed = SignedHeader::new(header, sig);
            prop_assert!(chain.validate_extension(&signed, &crypto).is_ok());
            chain.append(signed, None);
            chain.finalize_deep_blocks();
        }
        let f = cluster.f;
        prop_assert_eq!(chain.len(), len);
        prop_assert_eq!(chain.definite_len(), len.saturating_sub(f + 1));
        // A full version exchange round-trips.
        let base = Round(chain.definite_len() as u64);
        let version = chain.version_from(base);
        prop_assert!(chain.validate_version(base, &version, &crypto).is_ok());
    }

    #[test]
    fn ema_timer_stays_within_bounds(ops in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(1000);
        let mut timer = EmaTimer::new(base, max, 8);
        for hit in ops {
            if hit {
                timer.record_delivery(Duration::from_millis(3));
            } else {
                timer.record_miss();
            }
            prop_assert!(timer.current() >= base);
            prop_assert!(timer.current() <= max);
        }
    }

    #[test]
    fn proposer_rotation_skip_rule_never_picks_a_recent_proposer(
        decided in prop::collection::vec((0u32..10, 0u64..100), 0..30),
        start in 0u32..10,
        round in 5u64..200,
    ) {
        let mut rot = ProposerRotation::new(ClusterConfig::new(10));
        for (node, r) in decided {
            rot.record_decided(NodeId(node), Round(r));
        }
        let choice = rot.select(NodeId(start), Round(round));
        if choice.skipped.len() < 10 {
            prop_assert!(rot.eligible(choice.proposer, Round(round)));
        }
    }

    #[test]
    fn definite_prefix_agreement_under_random_latency(seed in 0u64..50, max_ms in 1u64..12) {
        // Randomized link delays (a different jitter schedule per seed) never
        // break agreement on delivered blocks — the heart of BBFC-Agreement.
        let params = test_params(4, 1);
        let nodes = fireledger::build_cluster(&params, seed);
        let config = SimConfig::ideal()
            .with_seed(seed)
            .with_latency(LatencyModel::Uniform {
                min: Duration::from_micros(200),
                max: Duration::from_millis(max_ms),
            });
        let mut sim = Simulation::new(config, nodes);
        sim.run_for(Duration::from_millis(400));
        let seq = |i: u32| {
            sim.deliveries(NodeId(i))
                .iter()
                .map(|d| d.block.header.payload_hash)
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        for i in 1..4u32 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            prop_assert_eq!(&other[..common], &reference[..common]);
        }
    }
}
