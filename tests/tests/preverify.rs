//! Acceptance tests of the parallel crypto pipeline (PR 5).
//!
//! Three claims are pinned here:
//!
//! 1. **Pipeline transparency** — a cluster built with
//!    `crypto_threads(4)` (wide pool + pre-verify stage on the real-time
//!    runtimes) delivers the *same ledger* as the inline simulator run on
//!    every runtime, for FLO and for a single worker. The pipeline moves
//!    work between threads; it must never move a decision.
//! 2. **Pre-verified-drop equals in-loop rejection** — a Byzantine node
//!    that mis-signs every header it sends is neutralized identically
//!    whether its junk is rejected on the consensus loop (no stage) or
//!    dropped on the pre-verify stage thread: the cluster keeps deciding,
//!    no corrupt-signed block is ever delivered, and all correct nodes
//!    agree — the fault-matrix spot-check for the off-loop reject path.
//! 3. **Composition with fault plans** — the stage sits between the link
//!    shim and the loop, so a lossy/delayed network with the pipeline on
//!    still yields cross-node agreement.

use fireledger::{AcceptAll, FloMsg, FloNode};
use fireledger_crypto::{CryptoPool, SimKeyStore};
use fireledger_net::ThreadedCluster;
use fireledger_runtime::prelude::*;
use fireledger_runtime::{BuildContext, FloPreVerifier};
use fireledger_types::{Delivery, Signature, WireCodec, WireSize};
use std::sync::Arc;
use std::time::Duration;

fn params() -> ProtocolParams {
    ProtocolParams::new(4)
        .with_workers(2)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(250))
}

fn scenario() -> Scenario {
    Scenario::new("pipeline")
        .ideal()
        .run_for(Duration::from_millis(600))
        .with_warmup(Duration::ZERO)
}

fn deliveries_on<P, R>(runtime: &R, crypto_threads: usize) -> Vec<Vec<Delivery>>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
    R: Runtime,
{
    runtime
        .run_full(
            &ClusterBuilder::<P>::new(params())
                .with_seed(7)
                .crypto_threads(crypto_threads),
            &scenario(),
        )
        .expect("pipeline run must succeed")
        .1
}

fn assert_pipeline_transparent<P>(protocol: &str)
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    // The simulator is always inline; the real-time runs get the wide pool
    // *and* the pre-verify stage. Every pair must agree on ledger content.
    let sim = deliveries_on::<P, _>(&Simulator, 4);
    let threads = deliveries_on::<P, _>(&Threads, 4);
    let tcp = deliveries_on::<P, _>(&Tcp, 4);
    let vs_threads = check_delivery_prefixes(&sim, &threads)
        .unwrap_or_else(|why| panic!("{protocol}: sim vs threads+pipeline diverged: {why}"));
    let vs_tcp = check_delivery_prefixes(&sim, &tcp)
        .unwrap_or_else(|why| panic!("{protocol}: sim vs tcp+pipeline diverged: {why}"));
    assert!(vs_threads > 0 && vs_tcp > 0, "{protocol}: nothing compared");
}

#[test]
fn flo_pipeline_is_ledger_transparent_on_all_runtimes() {
    assert_pipeline_transparent::<FloCluster>("flo");
}

#[test]
fn single_worker_pipeline_is_ledger_transparent_on_all_runtimes() {
    assert_pipeline_transparent::<Worker>("wrb-obbc");
}

// ---------------------------------------------------------------------
// Pre-verified-drop vs in-loop rejection
// ---------------------------------------------------------------------

/// A crypto provider that produces garbage signatures for one node (and
/// verifies honestly): the wrapped node genuinely cannot sign, so *every*
/// avenue its headers could take — fast path, piggyback, fallback
/// evidence, pulled replies — carries an invalid signature.
struct BadSigner {
    inner: fireledger_crypto::SharedCrypto,
    culprit: fireledger_types::NodeId,
}

impl fireledger_crypto::CryptoProvider for BadSigner {
    fn sign(&self, node: fireledger_types::NodeId, msg: &[u8]) -> Signature {
        let sig = self.inner.sign(node, msg);
        if node == self.culprit {
            let mut bytes = sig.as_bytes().to_vec();
            if bytes.is_empty() {
                bytes = vec![0u8; 32];
            }
            bytes[0] ^= 0xFF;
            return Signature::from(bytes);
        }
        sig
    }
    fn verify(&self, node: fireledger_types::NodeId, msg: &[u8], sig: &Signature) -> bool {
        self.inner.verify(node, msg, sig)
    }
    fn cluster_size(&self) -> usize {
        self.inner.cluster_size()
    }
    fn cost_model(&self) -> fireledger_crypto::CostModel {
        self.inner.cost_model()
    }
    fn scheme(&self) -> &'static str {
        "bad-signer"
    }
}

/// Runs a 4-node cluster whose node 3 mis-signs everything it signs, with
/// or without the pre-verify stage, and returns each node's deliveries.
fn run_with_corrupt_signer(with_stage: bool) -> Vec<Vec<Delivery>> {
    let n = 4;
    let params = ProtocolParams::new(n)
        .with_workers(1)
        .with_batch_size(4)
        .with_tx_size(32)
        .with_base_timeout(Duration::from_millis(60));
    let honest = SimKeyStore::generate(n, 11).shared();
    let corrupt: fireledger_crypto::SharedCrypto = Arc::new(BadSigner {
        inner: honest.clone(),
        culprit: fireledger_types::NodeId(3),
    });
    let ctx = BuildContext {
        params: params.clone(),
        crypto: honest.clone(),
        pool: CryptoPool::with_forced_threads(honest.clone(), 2),
        validity: Arc::new(AcceptAll),
    };
    let nodes: Vec<FloNode> = (0..n as u32)
        .map(|i| {
            // Node 3 signs through the corrupting provider; everyone
            // (including node 3) verifies honestly.
            let crypto = if i == 3 {
                corrupt.clone()
            } else {
                honest.clone()
            };
            let mut flo = FloNode::new(
                fireledger_types::NodeId(i),
                params.clone(),
                crypto,
                Arc::new(AcceptAll),
            );
            if with_stage {
                flo.set_crypto_pool(ctx.pool.clone());
                flo.set_preverified_ingress(true);
            }
            flo
        })
        .collect();
    let pre_verify: Option<Arc<dyn fireledger_net::PreVerify<FloMsg>>> = with_stage
        .then(|| Arc::new(FloPreVerifier::new(&ctx)) as Arc<dyn fireledger_net::PreVerify<FloMsg>>);
    let cluster = ThreadedCluster::spawn_full(nodes, None, pre_verify);
    std::thread::sleep(Duration::from_millis(1_200));
    cluster.shutdown()
}

#[test]
fn preverified_drop_matches_in_loop_rejection_for_a_corrupt_signer() {
    for with_stage in [false, true] {
        let deliveries = run_with_corrupt_signer(with_stage);
        let mode = if with_stage { "stage" } else { "in-loop" };
        // Liveness: the honest majority keeps deciding (the corrupt node's
        // turns time out and are skipped).
        for (node, delivered) in deliveries.iter().take(3).enumerate() {
            assert!(
                !delivered.is_empty(),
                "{mode}: honest node {node} delivered nothing"
            );
        }
        // Safety: no block proposed by the corrupt signer is ever
        // delivered — its headers never verify, wherever the check ran.
        for (node, ds) in deliveries.iter().enumerate() {
            for d in ds {
                assert_ne!(
                    d.proposer,
                    fireledger_types::NodeId(3),
                    "{mode}: node {node} delivered a corrupt-signed block"
                );
            }
        }
        // Agreement: all correct nodes share prefixes.
        let correct: Vec<Vec<Delivery>> = deliveries[..3].to_vec();
        let compared = check_delivery_prefixes(&correct, &correct.clone())
            .unwrap_or_else(|why| panic!("{mode}: self-check failed: {why}"));
        assert!(compared > 0);
        for a in 0..3 {
            for b in (a + 1)..3 {
                let common = deliveries[a].len().min(deliveries[b].len());
                assert_eq!(
                    deliveries[a][..common],
                    deliveries[b][..common],
                    "{mode}: nodes {a} and {b} disagree"
                );
            }
        }
    }
}

#[test]
fn pipeline_composes_with_fault_plans() {
    use fireledger_types::{FaultPlan, FaultWindow, LinkSelector};
    // A delayed network with the pipeline on: the stage sits after the
    // link shim, so adversity and off-loop verification compose; the
    // cluster must still reach cross-node agreement.
    let plan = FaultPlan::named("laggy-pipeline").delay(
        LinkSelector::All,
        FaultWindow::ALWAYS,
        Duration::from_millis(1),
        Duration::from_millis(5),
    );
    let cluster = ClusterBuilder::<FloCluster>::new(params())
        .with_seed(3)
        .crypto_threads(4);
    let scenario = Scenario::new("laggy-pipeline")
        .ideal()
        .with_faults(plan)
        .run_for(Duration::from_millis(800))
        .with_warmup(Duration::ZERO);
    let (report, deliveries) = Threads
        .run_full(&cluster, &scenario)
        .expect("faulty pipeline run");
    assert!(report.bps > 0.0, "no progress under delay + pipeline");
    for a in 0..4 {
        for b in (a + 1)..4 {
            let common = deliveries[a].len().min(deliveries[b].len());
            assert_eq!(
                deliveries[a][..common],
                deliveries[b][..common],
                "nodes {a} and {b} disagree under delay + pipeline"
            );
        }
    }
}
