//! Property tests for the FLO round-robin delivery merge (§6.2).
//!
//! Two properties pin the client-manager semantics the paper describes:
//!
//! 1. the merged delivery order is **identical across all correct nodes**,
//!    for arbitrary link-jitter schedules, and is exactly round-robin —
//!    worker 0's round-r block, then worker 1's, …;
//! 2. a **stalled worker blocks release** of every later worker's blocks:
//!    the other workers keep deciding blocks on their chains, but the merge
//!    stalls at the stalled worker's slot — the latency effect Figures 8–9
//!    measure.

use fireledger::FloMsg;
use fireledger_integration_tests::*;
use fireledger_runtime::prelude::*;
use fireledger_sim::adversary::Fate;
use fireledger_sim::{Adversary, LatencyModel, SimConfig, SimTime, Simulation};
use std::time::Duration;

#[test]
fn merged_order_is_identical_and_round_robin_across_random_schedules() {
    for seed in 0..8u64 {
        for workers in [2usize, 3] {
            let nodes = ClusterBuilder::<FloCluster>::new(test_params(4, workers))
                .with_seed(seed)
                .build()
                .unwrap();
            let config = SimConfig::ideal()
                .with_seed(seed)
                .with_latency(LatencyModel::Uniform {
                    min: Duration::from_micros(200),
                    max: Duration::from_millis(1 + seed % 7),
                });
            let mut sim = Simulation::new(config, nodes);
            sim.run_for(Duration::from_millis(500));

            // Every correct node released the same merged sequence...
            assert_delivery_agreement(&sim, &[0, 1, 2, 3]);
            let deliveries = sim.deliveries(NodeId(0));
            assert!(
                deliveries.len() >= workers,
                "seed {seed}, ω={workers}: no full merge round completed"
            );
            // ...and the sequence is exactly round-robin across workers.
            for (i, d) in deliveries.iter().enumerate() {
                assert_eq!(
                    d.worker,
                    WorkerId((i % workers) as u32),
                    "seed {seed}, ω={workers}: delivery {i} out of worker order"
                );
                assert_eq!(
                    d.round,
                    Round((i / workers) as u64),
                    "seed {seed}, ω={workers}: delivery {i} out of round order"
                );
            }
        }
    }
}

/// Drops every message belonging to one FLO worker instance, stalling that
/// worker cluster-wide while leaving the others untouched.
struct StallWorker(u32);

impl Adversary<FloMsg> for StallWorker {
    fn intercept(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        msg: FloMsg,
        _now: SimTime,
    ) -> Fate<FloMsg> {
        if msg.worker.0 == self.0 {
            Fate::Drop
        } else {
            Fate::Deliver(msg)
        }
    }
}

#[test]
fn stalled_worker_blocks_release_of_later_workers_blocks() {
    let workers = 3;
    let nodes = ClusterBuilder::<FloCluster>::new(test_params(4, workers))
        .with_seed(5)
        .build()
        .unwrap();
    // Worker 1 never gets a message through: it cannot decide anything.
    let mut sim = Simulation::with_adversary(SimConfig::ideal(), nodes, Box::new(StallWorker(1)));
    sim.run_for(Duration::from_secs(2));

    for i in 0..4u32 {
        let flo = sim.node(NodeId(i)).flo();
        // Workers 0 and 2 kept deciding blocks on their chains...
        assert!(
            flo.worker(0).chain().definite_len() > 5,
            "node {i}: worker 0 should keep deciding, got {}",
            flo.worker(0).chain().definite_len()
        );
        assert!(
            flo.worker(2).chain().definite_len() > 5,
            "node {i}: worker 2 should keep deciding, got {}",
            flo.worker(2).chain().definite_len()
        );
        // ...the stalled worker decided nothing...
        assert_eq!(
            flo.worker(1).chain().definite_len(),
            0,
            "node {i}: the stalled worker must not decide"
        );
        // ...and the round-robin merge released exactly worker 0's round-0
        // block before stalling at worker 1's slot (§6.2: "a single slow
        // worker delays the merged delivery of all others").
        let released = sim.deliveries(NodeId(i));
        assert_eq!(
            released.len(),
            1,
            "node {i}: merge must stall at the stalled worker's slot, got {} releases",
            released.len()
        );
        assert_eq!(released[0].worker, WorkerId(0));
        assert_eq!(released[0].round, Round(0));
    }
}

#[test]
fn merge_resumes_in_order_when_no_worker_stalls() {
    // Control for the test above: the same cluster without the adversary
    // releases many full merge rounds.
    let nodes = ClusterBuilder::<FloCluster>::new(test_params(4, 3))
        .with_seed(5)
        .build()
        .unwrap();
    let mut sim = Simulation::new(SimConfig::ideal(), nodes);
    sim.run_for(Duration::from_secs(2));
    assert!(
        sim.deliveries(NodeId(0)).len() > 30,
        "without a stalled worker the merge must flow freely, got {}",
        sim.deliveries(NodeId(0)).len()
    );
}
