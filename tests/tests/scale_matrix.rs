//! The reactor scale matrix: FLO on the TCP runtime at cluster sizes the
//! thread-per-socket mesh could never reach (PR 10).
//!
//! The event-driven reactor multiplexes all n·(n−1) sockets onto a fixed
//! pool ([`DEFAULT_REACTOR_THREADS`]), so a TCP cluster spends
//! n + `DEFAULT_REACTOR_THREADS` threads instead of n + 2·n·(n−1). The
//! n = 16 smoke cell runs by default; the n = 32 thread-accounting cell and
//! the n = 64 completion cell are release-sized and `#[ignore]`d here —
//! the `scale-matrix` CI job drives them with `--release -- --ignored`.

use fireledger_runtime::prelude::*;
use std::time::Duration;

/// One FLO/tcp run at cluster size `n` on the default reactor engine,
/// returning the unified report. Small blocks and a generous pinned
/// timeout keep the run on the optimistic path regardless of how long the
/// n² mesh takes to dial.
fn run_tcp_at(n: usize, millis: u64) -> RunReport {
    let params = ProtocolParams::new(n)
        .with_workers(1)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(500));
    let builder = ClusterBuilder::<FloCluster>::new(params).with_seed(17);
    let scenario = Scenario::new("scale")
        .ideal()
        .run_for(Duration::from_millis(millis))
        .with_warmup(Duration::ZERO)
        .with_seed(17);
    Tcp.run(&builder, &scenario).expect("tcp scale run")
}

#[test]
fn sixteen_node_tcp_cluster_commits_on_the_reactor() {
    let report = run_tcp_at(16, 600);
    assert!(report.tps > 0.0, "n=16 made no progress: {}", report.tps);
    // 16 node loops + the fixed reactor pool — nothing per-socket.
    assert_eq!(report.threads, 16 + DEFAULT_REACTOR_THREADS);
}

#[test]
#[ignore = "release-sized: run via the scale-matrix CI job"]
fn thirty_two_node_tcp_cluster_spends_linear_threads() {
    let report = run_tcp_at(32, 800);
    assert!(report.tps > 0.0, "n=32 made no progress: {}", report.tps);
    // The legacy engine would spend 32 + 2·32·31 = 2 016 threads here; the
    // reactor's count stays O(n).
    assert_eq!(report.threads, 32 + DEFAULT_REACTOR_THREADS);
}

#[test]
#[ignore = "release-sized: run via the scale-matrix CI job"]
fn sixty_four_node_tcp_cluster_runs_to_completion() {
    let report = run_tcp_at(64, 3000);
    assert!(report.tps > 0.0, "n=64 made no progress: {}", report.tps);
    assert_eq!(report.threads, 64 + DEFAULT_REACTOR_THREADS);
    // Every correct node delivered something — the mesh is fully live, not
    // just the measured quorum.
    let silent: Vec<usize> = report
        .per_node
        .iter()
        .enumerate()
        .filter(|(_, d)| d.blocks == 0)
        .map(|(i, _)| i)
        .collect();
    assert!(silent.is_empty(), "silent nodes at n=64: {silent:?}");
}
