//! The durability acceptance suite: kill-9 restart-from-disk recovery.
//!
//! A `KillFault` destroys a node's **process state** — unlike the
//! pause-based crash-recover fault, nothing in memory survives — and the
//! restart rebuilds the node solely from its `fireledger-store` directory.
//! The assertions here are the guarantees docs/SCENARIOS.md documents for
//! the kill-restart catalog entry:
//!
//! * **Post-restart ledger identity (all three runtimes)** — the restarted
//!   node's delivery log, rebuilt by replaying the block log, is
//!   prefix-identical to the untouched nodes' logs. Recovery never invents
//!   or reorders a block.
//! * **Damaged-media recovery** — a torn write or a flipped tail bit costs
//!   at most the damaged record: replay truncates to the longest valid
//!   prefix and the node rejoins from there.
//! * **Disk-full degradation** — a store that can no longer append keeps
//!   its persisted prefix readable, and the cluster stays live.
//!
//! Plus the randomized property pinning the replay rule itself: for *any*
//! garbage tail appended to a valid record sequence, recovery yields
//! exactly the valid prefix, and the store stays appendable afterwards.

use fireledger_runtime::catalog;
use fireledger_runtime::prelude::*;
use fireledger_store::{inject, FsyncPolicy as StorePolicy, NodeStore};
use fireledger_types::DetRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn params() -> ProtocolParams {
    ProtocolParams::new(4)
        .with_workers(1)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(250))
}

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A unique, pre-cleaned store directory per call — tests run concurrently
/// in one process and must never share a ledger.
fn store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fl-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run_durable<R: Runtime>(
    runtime: &R,
    plan: FaultPlan,
    duration: Duration,
    dir: &PathBuf,
) -> (RunReport, Vec<Vec<Delivery>>) {
    let scenario = Scenario::new(format!("recovery-{}", plan.name))
        .ideal()
        .with_seed(7)
        .with_warmup(Duration::ZERO)
        .run_for(duration)
        .with_faults(plan);
    runtime
        .run_full(
            &ClusterBuilder::<FloCluster>::new(params())
                .with_seed(7)
                .with_store(dir, FsyncPolicy::EveryN(4)),
            &scenario,
        )
        .unwrap_or_else(|e| panic!("durable run failed on {}: {e}", runtime.name()))
}

/// The post-restart acceptance check: the killed node delivered a non-empty
/// ledger that is prefix-identical to an untouched node's — the prefix it
/// replayed from disk plus whatever it committed after rejoining.
fn assert_recovered_prefix(deliveries: &[Vec<Delivery>], killed: usize, context: &str) {
    let reference = &deliveries[(killed + 1) % deliveries.len()];
    let recovered = &deliveries[killed];
    assert!(
        !recovered.is_empty(),
        "{context}: the restarted node re-emitted nothing from its store"
    );
    assert!(
        !reference.is_empty(),
        "{context}: the untouched reference node delivered nothing"
    );
    let common = reference.len().min(recovered.len());
    assert_eq!(
        &recovered[..common],
        &reference[..common],
        "{context}: the restarted node's replayed ledger diverged"
    );
}

#[test]
fn kill_restart_rebuilds_the_ledger_from_disk_on_all_three_runtimes() {
    let plan = catalog::kill_restart_last(4, ms(300), ms(600));

    let dir = store_dir("kill-sim");
    let (report, deliveries) = run_durable(&Simulator, plan.clone(), ms(1200), &dir);
    assert_eq!(report.fault_plan, "kill-restart");
    assert_eq!(report.durability, "fsync-every4");
    assert_recovered_prefix(&deliveries, 3, "sim");
    std::fs::remove_dir_all(&dir).ok();

    let dir = store_dir("kill-threads");
    let (report, deliveries) = run_durable(&Threads, plan.clone(), ms(1200), &dir);
    assert_eq!(report.durability, "fsync-every4");
    assert_recovered_prefix(&deliveries, 3, "threads");
    std::fs::remove_dir_all(&dir).ok();

    let dir = store_dir("kill-tcp");
    let (report, deliveries) = run_durable(&Tcp, plan, ms(1200), &dir);
    assert_eq!(report.durability, "fsync-every4");
    assert_recovered_prefix(&deliveries, 3, "tcp");
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-9 → fall hundreds of rounds behind → restart-from-disk →
/// range-fetch the gap. The cluster runs at a ~20ms round cadence while the
/// node is down for 1.2s, so its WAL tip is far behind the cluster tip on
/// restart; `recover_from_disk` enters state sync, fetches `[wal_tip,
/// cluster_tip)` and splices it onto the replayed prefix. The assertions
/// prove the splice: one prefix-identical ledger whose length is far beyond
/// anything the disk alone could have replayed.
#[test]
fn kill_fall_behind_restart_range_fetches_the_gap() {
    let fast = ProtocolParams::new(4)
        .with_workers(1)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(ms(20));
    let plan = FaultPlan::named("kill-lag").kill_restart(NodeId(3), ms(200), ms(1400));
    for name in ["sim", "threads"] {
        let dir = store_dir(&format!("kill-lag-{name}"));
        let scenario = Scenario::new("recovery-kill-lag")
            .ideal()
            .with_seed(7)
            .with_warmup(Duration::ZERO)
            .run_for(ms(2600))
            .with_faults(plan.clone());
        let builder = ClusterBuilder::<FloCluster>::new(fast.clone())
            .with_seed(7)
            .with_store(&dir, FsyncPolicy::EveryN(4));
        let (_, deliveries) = match name {
            "sim" => Simulator.run_full(&builder, &scenario),
            _ => Threads.run_full(&builder, &scenario),
        }
        .unwrap_or_else(|e| panic!("kill-lag run failed on {name}: {e}"));

        assert_recovered_prefix(&deliveries, 3, name);
        let reference = &deliveries[0];
        let recovered = &deliveries[3];
        // The node was down for ~46% of the run; anything it replayed from
        // disk ends at its kill-time WAL tip (~8% of the run). Reaching the
        // neighbourhood of the reference ledger is only possible if the
        // missed range was fetched and spliced.
        assert!(
            reference.len() > 300,
            "{name}: cluster too slow to open a meaningful gap: {}",
            reference.len()
        );
        assert!(
            recovered.len() as f64 > reference.len() as f64 * 0.6,
            "{name}: restarted node never fetched its gap: {} of {} blocks",
            recovered.len(),
            reference.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn kill_without_restart_leaves_the_cluster_live_on_the_fallback() {
    // The dead node's proposer turns resolve through the β-fallback; its
    // store survives untouched on disk for a later (out-of-run) restart.
    let plan = FaultPlan::named("kill-dead").kill(NodeId(3), ms(300));
    let dir = store_dir("kill-dead");
    let (report, deliveries) = run_durable(&Simulator, plan, ms(1200), &dir);
    assert!(
        report.fallbacks > 0,
        "the dead proposer's turns must go through the fallback"
    );
    for (i, d) in deliveries.iter().enumerate().take(3) {
        assert!(d.len() > 3, "node {i} stalled after the kill: {}", d.len());
    }
    // The dead node's directory still replays: its pre-kill prefix is intact.
    let node_dir = dir.join("node-3");
    let (_, recovered) = NodeStore::open(&node_dir, StorePolicy::EveryN(4)).unwrap();
    assert!(
        !recovered.blocks.is_empty(),
        "the killed node's persisted ledger vanished"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_during_downtime_recovers_to_the_last_valid_record() {
    let plan = FaultPlan::named("kill-torn").kill_restart_injecting(
        NodeId(3),
        ms(300),
        ms(600),
        DiskFault::TornWrite { cut: 10 },
    );
    let dir = store_dir("torn");
    let (report, deliveries) = run_durable(&Simulator, plan.clone(), ms(1200), &dir);
    assert_eq!(report.fault_plan, "kill-torn");
    assert_recovered_prefix(&deliveries, 3, "sim/torn-write");
    std::fs::remove_dir_all(&dir).ok();

    // Same damage on a wall-clock runtime: the fault is applied to the real
    // segment files between the kill and the restart.
    let dir = store_dir("torn-threads");
    let (_, deliveries) = run_durable(&Threads, plan, ms(1200), &dir);
    assert_recovered_prefix(&deliveries, 3, "threads/torn-write");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_tail_during_downtime_recovers_to_the_last_valid_record() {
    let plan = FaultPlan::named("kill-corrupt").kill_restart_injecting(
        NodeId(3),
        ms(300),
        ms(600),
        DiskFault::CorruptTail,
    );
    let dir = store_dir("corrupt");
    let (_, deliveries) = run_durable(&Simulator, plan.clone(), ms(1200), &dir);
    assert_recovered_prefix(&deliveries, 3, "sim/corrupt-tail");
    std::fs::remove_dir_all(&dir).ok();

    let dir = store_dir("corrupt-threads");
    let (_, deliveries) = run_durable(&Threads, plan, ms(1200), &dir);
    assert_recovered_prefix(&deliveries, 3, "threads/corrupt-tail");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_full_after_restart_degrades_without_losing_the_prefix() {
    // The restarted node comes back with a nearly-exhausted write budget:
    // its store fails over to read-only once the budget runs out, the
    // already-persisted prefix stays replayable, and the *cluster* keeps
    // committing regardless.
    let plan = FaultPlan::named("kill-full").kill_restart_injecting(
        NodeId(3),
        ms(300),
        ms(600),
        DiskFault::DiskFull { after_bytes: 2048 },
    );
    let dir = store_dir("full");
    let (_, deliveries) = run_durable(&Simulator, plan, ms(1200), &dir);
    assert_recovered_prefix(&deliveries, 3, "sim/disk-full");
    for (i, d) in deliveries.iter().enumerate().take(3) {
        assert!(d.len() > 3, "node {i} stalled on a peer's full disk");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deterministic_simulator_reports_are_reproducible_with_a_store() {
    // Persistence must not leak nondeterminism into the simulator: two runs
    // over fresh directories serialize to byte-identical reports.
    let plan = catalog::kill_restart_last(4, ms(300), ms(600));
    let dir_a = store_dir("det-a");
    let (a, da) = run_durable(&Simulator, plan.clone(), ms(1000), &dir_a);
    std::fs::remove_dir_all(&dir_a).ok();
    let dir_b = store_dir("det-b");
    let (b, db) = run_durable(&Simulator, plan, ms(1000), &dir_b);
    std::fs::remove_dir_all(&dir_b).ok();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "store made the simulator nondeterministic"
    );
    assert_eq!(da, db, "store made deliveries nondeterministic");
}

/// The replay rule as a randomized property: write a random valid record
/// sequence, append an arbitrary garbage tail, and recovery must yield
/// **exactly** the valid prefix — never fewer records, never a record
/// conjured from the garbage — and the reopened store must accept and
/// persist further appends.
#[test]
fn corrupt_tail_replay_recovers_exactly_the_valid_prefix() {
    const CASES: u64 = 24;
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0xD15C + case);
        let dir = store_dir(&format!("prop-{case}"));

        // A random valid history: 1..=12 block records of random sizes.
        let count = 1 + rng.gen_below(12) as usize;
        let payloads: Vec<Vec<u8>> = (0..count)
            .map(|i| {
                let len = 1 + rng.gen_below(200) as usize;
                vec![(i as u8).wrapping_mul(17).wrapping_add(case as u8); len]
            })
            .collect();
        let (store, _) = NodeStore::open(&dir, StorePolicy::Always).unwrap();
        for p in &payloads {
            store.append_block(p.clone()).unwrap();
        }
        drop(store);

        // An arbitrary garbage tail glued straight onto the active segment:
        // random bytes, random length (possibly resembling a record header).
        let garbage_len = 1 + rng.gen_below(64) as usize;
        let garbage: Vec<u8> = (0..garbage_len).map(|_| rng.gen_below(256) as u8).collect();
        let active = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("blocks-") && n.ends_with(".log"))
            })
            .expect("active block segment exists");
        let mut bytes = std::fs::read(&active).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&active, &bytes).unwrap();

        // Recovery: exactly the valid prefix, regardless of the garbage.
        let (store, recovered) = NodeStore::open(&dir, StorePolicy::Always).unwrap();
        assert_eq!(
            recovered.blocks.len(),
            payloads.len(),
            "case {case}: replay did not recover exactly the valid prefix"
        );
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&recovered.blocks[i].1, p, "case {case}: record {i} mutated");
        }

        // Re-append after recovery: the truncated log stays a valid log.
        store.append_block(vec![0xEE; 33]).unwrap();
        drop(store);
        let (_, again) = NodeStore::open(&dir, StorePolicy::Always).unwrap();
        assert_eq!(again.blocks.len(), payloads.len() + 1, "case {case}");
        assert_eq!(
            again.blocks.last().unwrap().1,
            vec![0xEE; 33],
            "case {case}"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Torn-write inversion of the property: chopping bytes off the tail always
/// recovers a (possibly shorter) exact prefix of what was written.
#[test]
fn torn_write_replay_recovers_an_exact_prefix() {
    const CASES: u64 = 16;
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(0x7042 + case);
        let dir = store_dir(&format!("torn-prop-{case}"));
        let count = 2 + rng.gen_below(8) as usize;
        let (store, _) = NodeStore::open(&dir, StorePolicy::Always).unwrap();
        for i in 0..count {
            store.append_block(vec![i as u8; 40]).unwrap();
        }
        drop(store);

        let cut = 1 + rng.gen_below(60);
        inject::torn_write(&dir, cut).unwrap();

        let (_, recovered) = NodeStore::open(&dir, StorePolicy::Always).unwrap();
        assert!(
            recovered.blocks.len() < count,
            "case {case}: a torn tail must cost at least the torn record"
        );
        for (i, rec) in recovered.blocks.iter().enumerate() {
            assert_eq!(rec.1, vec![i as u8; 40], "case {case}: prefix record {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
