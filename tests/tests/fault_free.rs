//! Integration tests of the fault-free optimistic path across crates: FLO
//! clusters on the discrete-event simulator, agreement, total order,
//! non-triviality and the single-bit communication pattern — all assembled
//! through the unified `ClusterBuilder`.

use fireledger_integration_tests::*;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimConfig, Simulation};
use std::time::Duration;

#[test]
fn four_node_cluster_reaches_high_round_numbers() {
    let mut sim = flo_sim(4, 1, 1);
    sim.run_for(Duration::from_secs(1));
    let node = sim.node(NodeId(0)).flo();
    assert!(
        node.worker(0).chain().len() > 30,
        "got {}",
        node.worker(0).chain().len()
    );
    assert_delivery_agreement(&sim, &[0, 1, 2, 3]);
}

#[test]
fn clusters_of_paper_sizes_agree() {
    for n in [4usize, 7, 10] {
        let mut sim = flo_sim(n, 1, n as u64);
        sim.run_for(Duration::from_millis(600));
        let nodes: Vec<u32> = (0..n as u32).collect();
        assert_delivery_agreement(&sim, &nodes);
        assert!(sim.deliveries(NodeId(0)).len() > 3, "n={n}");
    }
}

#[test]
fn multi_worker_cluster_agrees_on_merged_order() {
    let mut sim = flo_sim(4, 4, 7);
    sim.run_for(Duration::from_millis(800));
    assert_delivery_agreement(&sim, &[0, 1, 2, 3]);
    // All four workers made progress.
    for w in 0..4 {
        assert!(
            sim.node(NodeId(0)).flo().worker(w).chain().len() > 3,
            "worker {w}"
        );
    }
}

#[test]
fn no_fallback_or_recovery_in_the_optimistic_case() {
    let report = Simulator
        .run(
            &ClusterBuilder::<FloCluster>::new(test_params(7, 1)).with_seed(3),
            &Scenario::new("optimistic")
                .ideal()
                .run_for(Duration::from_millis(600)),
        )
        .unwrap();
    assert_eq!(report.fallbacks, 0);
    assert_eq!(report.recoveries_per_sec, 0.0);
    assert!(report.tps > 0.0);
}

#[test]
fn non_triviality_client_transactions_are_eventually_decided() {
    let params = test_params(4, 1).with_fill_blocks(false);
    let nodes = ClusterBuilder::<FloCluster>::new(params)
        .with_seed(5)
        .build()
        .unwrap();
    let mut sim = Simulation::new(SimConfig::ideal(), nodes);
    for i in 0..50u64 {
        sim.inject_transaction(
            NodeId((i % 4) as u32),
            Transaction::new(9, i, vec![1u8; 64]),
            Duration::from_millis(i),
        );
    }
    sim.run_for(Duration::from_secs(1));
    let delivered: usize = sim
        .deliveries(NodeId(2))
        .iter()
        .map(|d| d.block.txs.iter().filter(|t| t.client == 9).count())
        .sum();
    assert_eq!(
        delivered, 50,
        "every submitted transaction must be decided definitively"
    );
}

#[test]
fn blocks_are_filled_to_batch_size_under_load() {
    let mut sim = flo_sim(4, 1, 11);
    sim.run_for(Duration::from_millis(500));
    for d in sim.deliveries(NodeId(1)) {
        assert_eq!(
            d.block.len(),
            8,
            "under saturation every block carries β transactions"
        );
    }
}

#[test]
fn single_dc_network_model_also_converges() {
    let nodes = ClusterBuilder::<FloCluster>::new(test_params(4, 2))
        .with_seed(13)
        .build()
        .unwrap();
    let mut sim = Simulation::new(SimConfig::single_dc(), nodes);
    sim.run_for(Duration::from_secs(1));
    assert_delivery_agreement(&sim, &[0, 1, 2, 3]);
}

#[test]
fn geo_network_model_converges_with_larger_timeouts() {
    let scenario = Scenario::new("geo").geo().run_for(Duration::from_secs(8));
    let params = test_params(10, 1).with_base_timeout(scenario.recommended_timeout());
    let nodes = ClusterBuilder::<FloCluster>::new(params)
        .with_seed(21)
        .build()
        .unwrap();
    let mut sim = Simulation::new(scenario.sim_config(), nodes);
    sim.run_for(Duration::from_secs(8));
    let nodes: Vec<u32> = (0..10).collect();
    assert_delivery_agreement(&sim, &nodes);
    assert!(sim.deliveries(NodeId(0)).len() > 3);
}
