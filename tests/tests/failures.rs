//! Integration tests of the failure paths: crashes (benign), omissions and
//! Byzantine equivocation with recovery. The key property checked throughout
//! is BBFC-Agreement: correct nodes never diverge on blocks at depth > f + 1.

use fireledger::prelude::*;
use fireledger_integration_tests::*;
use fireledger_sim::adversary::CrashSchedule;
use fireledger_sim::{SimConfig, SimTime, Simulation};
use std::time::Duration;

#[test]
fn progress_and_agreement_with_f_crashed_nodes() {
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        let params = test_params(n, 1);
        let nodes = fireledger::build_cluster(&params, 3);
        let adv = CrashSchedule::crash_last_f(n, f, SimTime::ZERO);
        let correct: Vec<u32> = (0..(n - f) as u32).collect();
        let mut sim = Simulation::with_adversary(SimConfig::ideal(), nodes, Box::new(adv));
        sim.run_for(Duration::from_secs(3));
        assert!(
            sim.deliveries(NodeId(0)).len() > 3,
            "n={n}: progress must continue with {f} crashed nodes, got {}",
            sim.deliveries(NodeId(0)).len()
        );
        assert_delivery_agreement(&sim, &correct);
    }
}

#[test]
fn crash_mid_run_does_not_block_the_cluster() {
    let params = test_params(4, 1);
    let nodes = fireledger::build_cluster(&params, 8);
    let adv = CrashSchedule::new().crash(NodeId(2), SimTime::from_millis(200));
    let mut sim = Simulation::with_adversary(SimConfig::ideal(), nodes, Box::new(adv));
    sim.run_for(Duration::from_secs(3));
    let len_at_crash_estimate = 5; // it certainly decided a few blocks before 200 ms
    assert!(sim.deliveries(NodeId(0)).len() > len_at_crash_estimate);
    assert_delivery_agreement(&sim, &[0, 1, 3]);
}

#[test]
fn equivocating_proposer_triggers_recovery_but_never_breaks_agreement() {
    let params = test_params(4, 1);
    let (nodes, _) = mixed_cluster(&params, 1, 4);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(4), nodes);
    sim.run_for(Duration::from_secs(3));
    let correct = [0u32, 1, 2];
    // Recoveries happened...
    let s = sim.summary_for(&[NodeId(0), NodeId(1), NodeId(2)]);
    assert!(
        s.recoveries_per_sec > 0.0,
        "the equivocating proposer must trigger at least one recovery"
    );
    // ...progress continued...
    assert!(!definite_prefix(&sim, 0, 0).is_empty());
    // ...and the correct nodes' definite prefixes agree (BBFC-Agreement).
    let reference = definite_prefix(&sim, 0, 0);
    for &i in &correct[1..] {
        let other = definite_prefix(&sim, i, 0);
        let common = reference.len().min(other.len());
        assert_eq!(other[..common], reference[..common], "correct node {i} diverged");
    }
    // Delivered blocks agree as well.
    assert_delivery_agreement(&sim, &correct);
}

#[test]
fn equivocation_with_larger_cluster_and_multiple_workers() {
    let params = test_params(7, 2);
    let (nodes, _) = mixed_cluster(&params, 1, 6);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(6), nodes);
    sim.run_for(Duration::from_secs(3));
    let correct: Vec<u32> = (0..6).collect();
    for w in 0..2 {
        let reference = definite_prefix(&sim, 0, w);
        for &i in &correct[1..] {
            let other = definite_prefix(&sim, i, w);
            let common = reference.len().min(other.len());
            assert_eq!(other[..common], reference[..common], "worker {w}, node {i} diverged");
        }
    }
    assert_delivery_agreement(&sim, &correct);
}

#[test]
fn delivered_blocks_survive_recoveries_definite_prefix_is_monotone() {
    // Run the Byzantine scenario in two phases and check that everything
    // delivered by the first phase is still delivered (same order) later.
    let params = test_params(4, 1);
    let (nodes, _) = mixed_cluster(&params, 1, 12);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(12), nodes);
    sim.run_for(Duration::from_millis(800));
    let early: Vec<_> = sim
        .deliveries(NodeId(1))
        .iter()
        .map(|d| (d.worker, d.round, d.block.header.payload_hash))
        .collect();
    sim.run_for(Duration::from_millis(1500));
    let late: Vec<_> = sim
        .deliveries(NodeId(1))
        .iter()
        .map(|d| (d.worker, d.round, d.block.header.payload_hash))
        .collect();
    assert!(late.len() >= early.len());
    assert_eq!(&late[..early.len()], &early[..], "definite decisions must never be rescinded");
}
