//! Integration tests of the failure paths: crashes (benign), omissions and
//! Byzantine equivocation with recovery, driven through `ClusterBuilder`
//! roles and `Scenario` fault events. The key property checked throughout is
//! BBFC-Agreement: correct nodes never diverge on blocks at depth > f + 1.

use fireledger_integration_tests::*;
use fireledger_runtime::prelude::*;
use fireledger_sim::{SimConfig, SimTime, Simulation};
use std::time::Duration;

#[test]
fn progress_and_agreement_with_f_crashed_nodes() {
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        let cluster = ClusterBuilder::<FloCluster>::new(test_params(n, 1))
            .with_seed(3)
            .with_last_k(f, NodeRole::CrashAt(Duration::ZERO));
        let scenario = Scenario::new("crash")
            .ideal()
            .run_for(Duration::from_secs(3));
        let report = Simulator.run(&cluster, &scenario).unwrap();
        assert!(
            report.per_node[0].blocks > 3,
            "n={n}: progress must continue with {f} crashed nodes, got {}",
            report.per_node[0].blocks
        );
        // The crashed tail delivered nothing.
        for i in (n - f)..n {
            assert_eq!(report.per_node[i].blocks, 0, "crashed node {i} delivered");
        }
        assert!(report.tps > 0.0);
    }
}

#[test]
fn crash_mid_run_does_not_block_the_cluster() {
    // The crash is a scenario fault event this time — same machinery, second
    // entry point.
    let cluster = ClusterBuilder::<FloCluster>::new(test_params(4, 1)).with_seed(8);
    let scenario = Scenario::new("midcrash")
        .ideal()
        .crash(NodeId(2), Duration::from_millis(200))
        .run_for(Duration::from_secs(3));
    let nodes = cluster.build().unwrap();
    let mut sim = Simulation::with_adversary(
        scenario.sim_config(),
        nodes,
        Box::new(scenario.crash_schedule(&cluster.crash_times())),
    );
    sim.run_until(SimTime::ZERO + scenario.duration);
    let len_at_crash_estimate = 5; // it certainly decided a few blocks before 200 ms
    assert!(sim.deliveries(NodeId(0)).len() > len_at_crash_estimate);
    assert_delivery_agreement(&sim, &[0, 1, 3]);
}

#[test]
fn equivocating_proposer_triggers_recovery_but_never_breaks_agreement() {
    let cluster = mixed_cluster(&test_params(4, 1), 1, 4);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(4), cluster.build().unwrap());
    sim.run_for(Duration::from_secs(3));
    let correct = [0u32, 1, 2];
    // Recoveries happened...
    let s = sim.summary_for(&[NodeId(0), NodeId(1), NodeId(2)]);
    assert!(
        s.recoveries_per_sec > 0.0,
        "the equivocating proposer must trigger at least one recovery"
    );
    // ...progress continued...
    assert!(!definite_prefix(&sim, 0, 0).is_empty());
    // ...and the correct nodes' definite prefixes agree (BBFC-Agreement).
    let reference = definite_prefix(&sim, 0, 0);
    for &i in &correct[1..] {
        let other = definite_prefix(&sim, i, 0);
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "correct node {i} diverged"
        );
    }
    // Delivered blocks agree as well.
    assert_delivery_agreement(&sim, &correct);
}

#[test]
fn equivocation_with_larger_cluster_and_multiple_workers() {
    let cluster = mixed_cluster(&test_params(7, 2), 1, 6);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(6), cluster.build().unwrap());
    sim.run_for(Duration::from_secs(3));
    let correct: Vec<u32> = (0..6).collect();
    for w in 0..2 {
        let reference = definite_prefix(&sim, 0, w);
        for &i in &correct[1..] {
            let other = definite_prefix(&sim, i, w);
            let common = reference.len().min(other.len());
            assert_eq!(
                other[..common],
                reference[..common],
                "worker {w}, node {i} diverged"
            );
        }
    }
    assert_delivery_agreement(&sim, &correct);
}

#[test]
fn silent_proposer_forces_fallbacks_without_recoveries() {
    let cluster = ClusterBuilder::<FloCluster>::new(test_params(4, 1))
        .with_seed(10)
        .with_role(NodeId(3), NodeRole::SilentProposer);
    let scenario = Scenario::new("silent")
        .ideal()
        .run_for(Duration::from_secs(2));
    let report = Simulator.run(&cluster, &scenario).unwrap();
    assert!(
        report.tps > 0.0,
        "cluster must keep deciding around the silent node"
    );
    assert!(
        report.fallbacks > 0 || report.per_node[0].blocks > 0,
        "the silent proposer's turns must be resolved"
    );
}

#[test]
fn delivered_blocks_survive_recoveries_definite_prefix_is_monotone() {
    // Run the Byzantine scenario in two phases and check that everything
    // delivered by the first phase is still delivered (same order) later.
    let cluster = mixed_cluster(&test_params(4, 1), 1, 12);
    let mut sim = Simulation::new(SimConfig::ideal().with_seed(12), cluster.build().unwrap());
    sim.run_for(Duration::from_millis(800));
    let early: Vec<_> = sim
        .deliveries(NodeId(1))
        .iter()
        .map(|d| (d.worker, d.round, d.block.header.payload_hash))
        .collect();
    sim.run_for(Duration::from_millis(1500));
    let late: Vec<_> = sim
        .deliveries(NodeId(1))
        .iter()
        .map(|d| (d.worker, d.round, d.block.header.payload_hash))
        .collect();
    assert!(late.len() >= early.len());
    assert_eq!(
        &late[..early.len()],
        &early[..],
        "definite decisions must never be rescinded"
    );
}
