//! The acceptance test of the unified API: **one** `Scenario` value drives
//! all five protocols of the paper's matrix through `ClusterBuilder`, on both
//! the deterministic simulator and the threaded real-time runtime, and every
//! run returns a `RunReport` with the identical schema.

use fireledger_integration_tests::test_params;
use fireledger_runtime::prelude::*;
use std::time::Duration;

fn scenario() -> Scenario {
    Scenario::new("matrix")
        .ideal()
        .run_for(Duration::from_millis(300))
}

fn run_matrix<R: Runtime>(runtime: &R, scenario: &Scenario) -> Vec<RunReport> {
    let params = test_params(4, 2);
    vec![
        runtime
            .run(&ClusterBuilder::<FloCluster>::new(params.clone()), scenario)
            .unwrap(),
        runtime
            .run(&ClusterBuilder::<Worker>::new(params.clone()), scenario)
            .unwrap(),
        runtime
            .run(&ClusterBuilder::<PbftNode>::new(params.clone()), scenario)
            .unwrap(),
        runtime
            .run(
                &ClusterBuilder::<HotStuffNode>::new(params.clone()),
                scenario,
            )
            .unwrap(),
        runtime
            .run(&ClusterBuilder::<BftSmartNode>::new(params), scenario)
            .unwrap(),
    ]
}

#[test]
fn one_scenario_drives_all_five_protocols_on_both_runtimes() {
    let scenario = scenario();
    let sim_reports = run_matrix(&Simulator, &scenario);
    let thread_reports = run_matrix(&Threads, &scenario);

    let names: Vec<&str> = sim_reports.iter().map(|r| r.protocol.as_str()).collect();
    assert_eq!(names, ["flo", "wrb-obbc", "pbft", "hotstuff", "bft-smart"]);

    // Every cell of the matrix made progress...
    for r in sim_reports.iter().chain(thread_reports.iter()) {
        assert!(
            r.tps > 0.0,
            "{} on {} produced no throughput",
            r.protocol,
            r.runtime
        );
        assert!(
            r.per_node.iter().all(|d| d.blocks > 0),
            "{} on {}: some node delivered nothing",
            r.protocol,
            r.runtime
        );
    }

    // ...and every report round-trips with the same schema, regardless of
    // protocol or runtime.
    let reference = sim_reports[0].schema();
    for r in sim_reports.iter().chain(thread_reports.iter()) {
        assert_eq!(
            r.schema(),
            reference,
            "{} on {} diverged from the unified schema",
            r.protocol,
            r.runtime
        );
        // The JSON forms are parseable enough to be non-empty and balanced.
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

#[test]
fn one_fault_plan_drives_all_five_protocols_through_the_same_schema() {
    // The adversity axis composes with the protocol axis: a single
    // plan-carrying Scenario value runs every protocol of the matrix, and
    // the fault plan's name round-trips through the unified report schema.
    let plan = fireledger_runtime::catalog::delay_reorder(
        Duration::from_millis(1),
        Duration::from_millis(3),
        0.25,
    );
    let scenario = Scenario::new("matrix-adversity")
        .ideal()
        .run_for(Duration::from_millis(400))
        .with_faults(plan);
    let reports = run_matrix(&Simulator, &scenario);
    let reference = reports[0].schema();
    for r in &reports {
        assert_eq!(r.fault_plan, "delay-reorder", "{}", r.protocol);
        assert_eq!(r.schema(), reference, "{}", r.protocol);
        assert!(r.tps > 0.0, "{} stalled under delay-reorder", r.protocol);
    }
}

#[test]
fn scenario_values_are_reusable_and_cloneable() {
    // A scenario is a plain value: using it for one run must not consume or
    // mutate it for the next.
    let scenario = scenario();
    let a = Simulator
        .run(
            &ClusterBuilder::<FloCluster>::new(test_params(4, 1)).with_seed(3),
            &scenario,
        )
        .unwrap();
    let b = Simulator
        .run(
            &ClusterBuilder::<FloCluster>::new(test_params(4, 1)).with_seed(3),
            &scenario,
        )
        .unwrap();
    assert_eq!(a.to_json(), b.to_json());
}
