//! The adversity acceptance suite: one declarative `FaultPlan` value drives
//! the simulator, the threaded runtime and the TCP runtime, and FireLedger
//! keeps its guarantees under every catalog plan.
//!
//! What is provable differs by plan, and the assertions here are exactly the
//! guarantees `docs/SCENARIOS.md` documents:
//!
//! * **Agreement (every plan, every runtime)** — within a run, all correct
//!   (non-faulted) nodes deliver prefix-identical ledgers. This is the BFT
//!   safety property and must survive arbitrary network adversity.
//! * **Cross-runtime ledger identity (content-preserving plans)** — plans
//!   that cannot change protocol *decisions* (bounded delay/reorder well
//!   under the timeout, duplication, mild loss recovered by FLO's pull +
//!   evidence-carrying fallback) must produce the *same* ledger on sim,
//!   threads and tcp. Plans that stall quorums (partition, crash-recover)
//!   legitimately resolve rounds differently per timing, so cross-runtime
//!   identity is not asserted for them — within-run agreement is.
//! * **β-fallback liveness** — under quorum-stalling plans the cluster keeps
//!   delivering: commits stall during the adversity window and resume after
//!   it, visible in the `RunReport` delivery-timeline metrics.

use fireledger_runtime::catalog;
use fireledger_runtime::prelude::*;
use fireledger_types::{Error, WireCodec, WireSize};
use std::time::Duration;

fn params() -> ProtocolParams {
    ProtocolParams::new(4)
        .with_workers(1)
        .with_batch_size(8)
        .with_tx_size(64)
        .with_base_timeout(Duration::from_millis(250))
}

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// The four catalog plans of the acceptance matrix, with the run length
/// each needs (wall-clock on the real-time runtimes).
fn acceptance_plans() -> Vec<(FaultPlan, Duration)> {
    vec![
        (catalog::lossy_link(0.10, ms(100), ms(400)), ms(900)),
        (catalog::delay_reorder(ms(1), ms(4), 0.25), ms(700)),
        (catalog::partition_heal(4, ms(250), ms(600)), ms(1100)),
        (catalog::crash_recover_last(4, ms(200), ms(500)), ms(1000)),
    ]
}

fn scenario_for(plan: &FaultPlan, duration: Duration) -> Scenario {
    Scenario::new(format!("fault-{}", plan.name))
        .ideal()
        .with_seed(7)
        .with_warmup(Duration::ZERO)
        .run_for(duration)
        .with_faults(plan.clone())
}

fn run_on<R: Runtime>(
    runtime: &R,
    plan: &FaultPlan,
    duration: Duration,
) -> (RunReport, Vec<Vec<Delivery>>) {
    runtime
        .run_full(
            &ClusterBuilder::<FloCluster>::new(params()).with_seed(7),
            &scenario_for(plan, duration),
        )
        .unwrap_or_else(|e| panic!("plan {} failed on {}: {e}", plan.name, runtime.name()))
}

/// Asserts that the given nodes' delivery logs are pairwise prefix-identical
/// and non-empty — BBFC-Agreement over the correct nodes of one run.
fn assert_agreement(deliveries: &[Vec<Delivery>], nodes: &[usize], context: &str) {
    let reference = &deliveries[nodes[0]];
    assert!(
        !reference.is_empty(),
        "{context}: node {} delivered nothing",
        nodes[0]
    );
    for &i in &nodes[1..] {
        let other = &deliveries[i];
        assert!(!other.is_empty(), "{context}: node {i} delivered nothing");
        let common = reference.len().min(other.len());
        assert_eq!(
            other[..common],
            reference[..common],
            "{context}: node {i} diverged from node {}",
            nodes[0]
        );
    }
}

/// The nodes a plan leaves untouched (no node fault) — the set agreement
/// and progress are asserted over.
fn unaffected(plan: &FaultPlan, n: usize) -> Vec<usize> {
    let faulted = plan.faulted_nodes();
    (0..n)
        .filter(|i| !faulted.contains(&NodeId(*i as u32)))
        .collect()
}

#[test]
fn every_plan_preserves_agreement_on_the_simulator() {
    for (plan, duration) in acceptance_plans() {
        let (report, deliveries) = run_on(&Simulator, &plan, duration);
        assert_eq!(report.fault_plan, plan.name);
        assert_agreement(
            &deliveries,
            &unaffected(&plan, 4),
            &format!("sim/{}", plan.name),
        );
        assert!(report.tps > 0.0, "{}: no throughput on sim", plan.name);
    }
}

#[test]
fn every_plan_preserves_agreement_on_threads() {
    for (plan, duration) in acceptance_plans() {
        let (report, deliveries) = run_on(&Threads, &plan, duration);
        assert_eq!(report.fault_plan, plan.name);
        assert_agreement(
            &deliveries,
            &unaffected(&plan, 4),
            &format!("threads/{}", plan.name),
        );
        assert!(report.tps > 0.0, "{}: no throughput on threads", plan.name);
    }
}

#[test]
fn every_plan_preserves_agreement_on_tcp() {
    // The TCP cells run the same plans as the other runtimes but shortened —
    // this is the CI "tcp smoke" half of the fault matrix (socket setup and
    // per-frame codec work make tcp the slowest runtime).
    for (plan, duration) in acceptance_plans() {
        let smoke = duration.min(plan.last_event_at() + ms(300));
        let (report, deliveries) = run_on(&Tcp, &plan, smoke);
        assert_eq!(report.fault_plan, plan.name);
        assert_agreement(
            &deliveries,
            &unaffected(&plan, 4),
            &format!("tcp/{}", plan.name),
        );
        assert!(report.tps > 0.0, "{}: no throughput on tcp", plan.name);
    }
}

#[test]
fn content_preserving_plans_deliver_identical_ledgers_on_all_three_runtimes() {
    // Bounded delay/reorder (well under the 250 ms timeout) and duplication
    // cannot change what the protocol decides — so the *contents* of the
    // ledger must match across sim, threads and tcp, exactly like the
    // fault-free equivalence suite. Loss is deliberately absent here: a
    // dropped header can turn a round's fallback into "skip and rotate the
    // proposer", and *which* runs skip depends on timing, so lossy runs on
    // different runtimes legitimately commit different (each internally
    // agreed) blocks — see docs/SCENARIOS.md, "What each plan guarantees".
    let content_preserving = vec![
        (catalog::delay_reorder(ms(1), ms(4), 0.25), ms(700)),
        (catalog::duplicate_flood(0.5, ms(5)), ms(700)),
    ];
    for (plan, duration) in content_preserving {
        let (_, sim) = run_on(&Simulator, &plan, duration);
        let (_, threads) = run_on(&Threads, &plan, duration);
        let (_, tcp) = run_on(&Tcp, &plan, duration);
        let vs_threads = check_delivery_prefixes(&sim, &threads)
            .unwrap_or_else(|why| panic!("{}: sim vs threads diverged: {why}", plan.name));
        let vs_tcp = check_delivery_prefixes(&sim, &tcp)
            .unwrap_or_else(|why| panic!("{}: sim vs tcp diverged: {why}", plan.name));
        assert!(
            vs_threads > 0 && vs_tcp > 0,
            "{}: empty comparison",
            plan.name
        );
    }
}

#[test]
fn partition_stalls_commits_and_heals_visibly_in_the_report() {
    // The headline FireLedger behaviour: an even split starves every quorum,
    // the optimistic path stalls, and the heal restores progress — all
    // visible in the new per-node delivery-timeline metrics.
    let split = ms(250);
    let heal = ms(600);
    let plan = catalog::partition_heal(4, split, heal);
    let (report, _) = run_on(&Simulator, &plan, ms(1100));
    let gap = (heal - split).as_secs_f64();
    for d in &report.per_node {
        assert!(
            d.max_gap_secs >= gap * 0.9,
            "node {}: max_gap {:.3}s does not span the {:.3}s split",
            d.node,
            d.max_gap_secs,
            gap
        );
        assert!(
            d.last_delivery_secs > heal.as_secs_f64(),
            "node {}: no delivery after the heal (last at {:.3}s)",
            d.node,
            d.last_delivery_secs
        );
        assert!(
            d.first_delivery_secs < split.as_secs_f64(),
            "node {}: no delivery before the split",
            d.node
        );
    }

    // The same stall/recovery shape on a wall-clock runtime (with generous
    // tolerances: scheduling noise moves the edges, not the shape).
    let (report, _) = run_on(&Threads, &plan, ms(1100));
    let d = &report.per_node[0];
    assert!(
        d.max_gap_secs >= gap * 0.5,
        "threads: max_gap {:.3}s shows no stall across the split",
        d.max_gap_secs
    );
    assert!(
        d.last_delivery_secs > heal.as_secs_f64() * 0.9,
        "threads: no recovery after the heal (last at {:.3}s)",
        d.last_delivery_secs
    );
}

#[test]
fn crash_recover_keeps_the_cluster_live_and_invokes_the_fallback() {
    let plan = catalog::crash_recover_last(4, ms(200), ms(500));
    let (report, deliveries) = run_on(&Simulator, &plan, ms(1500));
    // The three untouched nodes never lose liveness: the down node's
    // proposer turns resolve through the β-fallback (timeout → all-false
    // votes → fallback consensus → skip + rotate).
    assert!(
        report.fallbacks > 0,
        "the down proposer's turns must go through the fallback"
    );
    for (i, delivered) in deliveries.iter().enumerate().take(3) {
        assert!(
            delivered.len() > 5,
            "node {i} stalled: {} blocks",
            delivered.len()
        );
    }
    // The recovered node's ledger is a (possibly short) prefix of the
    // others' — it missed rounds while down but never diverges.
    let reference = &deliveries[0];
    let recovered = &deliveries[3];
    let common = reference.len().min(recovered.len());
    assert_eq!(&recovered[..common], &reference[..common]);
}

#[test]
fn same_seed_and_plan_reproduce_byte_identical_reports() {
    // The determinism contract of the whole subsystem: scenario seed + plan
    // seed fix every random choice, so two simulator runs serialize to the
    // same bytes — timeline metrics, per-node counters, everything.
    for (plan, duration) in acceptance_plans() {
        let (a, da) = run_on(&Simulator, &plan, duration);
        let (b, db) = run_on(&Simulator, &plan, duration);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: non-deterministic report",
            plan.name
        );
        assert_eq!(da, db, "{}: non-deterministic deliveries", plan.name);
    }
    // A different plan seed produces a different faulty execution (the
    // per-link RNG streams move).
    let base = catalog::lossy_link(0.10, ms(100), ms(400));
    let (a, _) = run_on(&Simulator, &base.clone().with_seed(1), ms(900));
    let (b, _) = run_on(&Simulator, &base.with_seed(2), ms(900));
    assert_ne!(
        a.to_json(),
        b.to_json(),
        "plan seed must steer the execution"
    );
}

#[test]
fn fault_budget_is_enforced_across_builder_and_plan() {
    // Two crash-recover faults on n = 4 (f = 1) must be rejected by every
    // runtime before anything runs.
    let over = FaultPlan::named("too-much")
        .crash_recover(NodeId(2), ms(100), ms(200))
        .crash_recover(NodeId(3), ms(100), ms(200));
    let scenario = Scenario::new("over")
        .ideal()
        .run_for(ms(300))
        .with_faults(over);
    let cluster = ClusterBuilder::<FloCluster>::new(params());
    assert!(matches!(
        Simulator.run(&cluster, &scenario),
        Err(Error::FaultBudgetExceeded { faulty: 2, f: 1 })
    ));
    assert!(matches!(
        Threads.run(&cluster, &scenario),
        Err(Error::FaultBudgetExceeded { .. })
    ));
    // One plan fault plus one builder crash role on distinct nodes also
    // busts the budget (the union counts).
    let one = FaultPlan::named("one").crash_recover(NodeId(3), ms(100), ms(200));
    let scenario = Scenario::new("mixed")
        .ideal()
        .run_for(ms(300))
        .with_faults(one);
    let cluster = ClusterBuilder::<FloCluster>::new(params())
        .with_role(NodeId(0), NodeRole::CrashAt(Duration::ZERO));
    assert!(matches!(
        Simulator.run(&cluster, &scenario),
        Err(Error::FaultBudgetExceeded { faulty: 2, f: 1 })
    ));
}

/// The generic runner is kept honest: any `ClusterProtocol` runs under a
/// plan, not just FLO.
fn baseline_under_plan<P>(name: &str)
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + std::fmt::Debug + 'static,
{
    let plan = catalog::delay_reorder(ms(1), ms(3), 0.25);
    let scenario = scenario_for(&plan, ms(600));
    let report = Simulator
        .run(&ClusterBuilder::<P>::new(params()).with_seed(7), &scenario)
        .unwrap_or_else(|e| panic!("{name} under delay-reorder failed: {e}"));
    assert!(report.tps > 0.0, "{name}: no progress under delay-reorder");
    assert_eq!(report.fault_plan, "delay-reorder");
}

#[test]
fn baselines_survive_network_adversity_too() {
    baseline_under_plan::<PbftNode>("pbft");
    baseline_under_plan::<HotStuffNode>("hotstuff");
    baseline_under_plan::<BftSmartNode>("bft-smart");
    baseline_under_plan::<Worker>("wrb-obbc");
}
