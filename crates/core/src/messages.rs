//! Wire messages of the FireLedger protocol.
//!
//! One FireLedger worker instance exchanges [`WorkerMsg`]s; a FLO node runs ω
//! workers and tags each message with the worker it belongs to
//! ([`FloMsg`]). The message set mirrors the paper's communication pattern:
//!
//! * the **data path** ships block bodies ([`WorkerMsg::BlockData`]) as soon
//!   as they are assembled (§6.1.1, block/header separation);
//! * the **consensus path** ships signed headers — either pushed explicitly
//!   ([`WorkerMsg::Header`], the `full_mode` WRB-broadcast of Algorithm 2
//!   lines 6–11) or piggybacked on the next proposer's OBBC vote
//!   ([`WorkerMsg::Vote`], Figure 1);
//! * the optimistic path is the single-bit [`WorkerMsg::Vote`];
//! * pull messages recover a missed header or body from peers that voted to
//!   deliver it (Algorithm 1 lines 22–27);
//! * [`WorkerMsg::Panic`] wraps the reliable broadcast of Byzantine proofs
//!   (Algorithm 2 lines b6–b7);
//! * [`WorkerMsg::Consensus`] wraps the PBFT consensus layer used for the
//!   OBBC fallback and the recovery versions (Figure 3's BFT-SMaRt box).

use fireledger_bft::{PbftMsg, RbMsg};
use fireledger_types::codec::{CodecError, Reader, WireCodec};
use fireledger_types::{
    Hash, NodeId, Round, SignedHeader, SyncMsg, Transaction, WireSize, WorkerId,
};

/// A proof that some proposer behaved inconsistently: a signed header that
/// does not extend the prover's chain, together with the prover's signed
/// header for the parent round (Algorithm 2 line b6).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PanicProof {
    /// The round at which the inconsistency was detected.
    pub detected_round: Round,
    /// The header that failed chain validation.
    pub conflicting: SignedHeader,
    /// The prover's own header for the preceding round (None at round 0).
    pub local_parent: Option<SignedHeader>,
}

impl WireSize for PanicProof {
    fn wire_size(&self) -> usize {
        8 + self.conflicting.wire_size() + self.local_parent.wire_size()
    }
}

/// Layout per WIRE_FORMAT.md §6.3:
/// `detected_round u64 | conflicting SignedHeader | local_parent Option<SignedHeader>`.
impl WireCodec for PanicProof {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.detected_round.encode_to(out);
        self.conflicting.encode_to(out);
        self.local_parent.encode_to(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PanicProof {
            detected_round: Round::decode_from(r)?,
            conflicting: SignedHeader::decode_from(r)?,
            local_parent: Option::<SignedHeader>::decode_from(r)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + self.conflicting.encoded_len() + self.local_parent.encoded_len()
    }
}

/// Values submitted to the worker's BFT consensus layer (the BFT-SMaRt
/// stand-in): OBBC fallback votes and recovery versions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConsensusValue {
    /// A vote submitted to the fallback consensus after the optimistic path
    /// failed (Algorithm 4 line OB19, realized through the ordering layer).
    FallbackVote {
        /// Round the vote refers to.
        round: Round,
        /// Proposer of the attempt the vote refers to.
        proposer: NodeId,
        /// The voting node.
        voter: NodeId,
        /// The vote (deliver / do not deliver).
        vote: bool,
        /// `evidence(1)`: the proposer's signed header, when the voter has it.
        evidence: Option<SignedHeader>,
    },
    /// A node's chain version submitted during recovery (Algorithm 3 line 8).
    RecoveryVersion {
        /// The round the recovery was invoked for.
        recovery_round: Round,
        /// The node submitting this version.
        from: NodeId,
        /// The suffix of signed headers starting at `recovery_round − (f+1)`;
        /// empty for nodes that are too far behind.
        version: Vec<SignedHeader>,
    },
}

impl WireSize for ConsensusValue {
    fn wire_size(&self) -> usize {
        match self {
            ConsensusValue::FallbackVote { evidence, .. } => 8 + 4 + 4 + 1 + evidence.wire_size(),
            ConsensusValue::RecoveryVersion { version, .. } => 8 + 4 + version.wire_size(),
        }
    }
}

/// Layout per WIRE_FORMAT.md §6.4: a discriminant byte (`0x01` FallbackVote,
/// `0x02` RecoveryVersion) followed by the variant's fields in declaration
/// order.
impl WireCodec for ConsensusValue {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            ConsensusValue::FallbackVote {
                round,
                proposer,
                voter,
                vote,
                evidence,
            } => {
                out.push(1);
                round.encode_to(out);
                proposer.encode_to(out);
                voter.encode_to(out);
                vote.encode_to(out);
                evidence.encode_to(out);
            }
            ConsensusValue::RecoveryVersion {
                recovery_round,
                from,
                version,
            } => {
                out.push(2);
                recovery_round.encode_to(out);
                from.encode_to(out);
                version.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(ConsensusValue::FallbackVote {
                round: Round::decode_from(r)?,
                proposer: NodeId::decode_from(r)?,
                voter: NodeId::decode_from(r)?,
                vote: bool::decode_from(r)?,
                evidence: Option::<SignedHeader>::decode_from(r)?,
            }),
            2 => Ok(ConsensusValue::RecoveryVersion {
                recovery_round: Round::decode_from(r)?,
                from: NodeId::decode_from(r)?,
                version: Vec::<SignedHeader>::decode_from(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "ConsensusValue",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ConsensusValue::FallbackVote { evidence, .. } => 8 + 4 + 4 + 1 + evidence.encoded_len(),
            ConsensusValue::RecoveryVersion { version, .. } => 8 + 4 + version.encoded_len(),
        }
    }
}

/// Wire messages exchanged between the worker-`w` instances of the cluster.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// Data path: a block body, disseminated as soon as it is assembled and
    /// referenced from headers by its payload (merkle) hash.
    BlockData {
        /// Merkle root of the transactions.
        payload_hash: Hash,
        /// The transactions themselves.
        txs: Vec<Transaction>,
    },
    /// Consensus path: explicit dissemination of a signed header (`full_mode`
    /// push, used at start-up and after a failed attempt).
    Header {
        /// The proposer-signed header.
        header: SignedHeader,
    },
    /// The single-bit optimistic vote of WRB/OBBC, optionally carrying the
    /// next proposer's piggybacked header (Figure 1).
    Vote {
        /// Round being voted on.
        round: Round,
        /// Proposer of the attempt being voted on.
        proposer: NodeId,
        /// The vote: deliver (`true`) or skip (`false`).
        vote: bool,
        /// The next round's header, piggybacked by its proposer.
        piggyback: Option<SignedHeader>,
    },
    /// Pull request for a header this node missed although it was decided
    /// (WRB pull phase).
    PullHeader {
        /// Round of the missing header.
        round: Round,
        /// Proposer whose header is requested.
        proposer: NodeId,
    },
    /// Reply to [`WorkerMsg::PullHeader`].
    PullHeaderReply {
        /// The requested header.
        header: SignedHeader,
    },
    /// Pull request for a block body this node missed.
    PullBlock {
        /// Payload hash identifying the body.
        payload_hash: Hash,
    },
    /// Reply to [`WorkerMsg::PullBlock`].
    PullBlockReply {
        /// Payload hash identifying the body.
        payload_hash: Hash,
        /// The transactions of the body.
        txs: Vec<Transaction>,
    },
    /// Reliable broadcast of Byzantine-behaviour proofs.
    Panic(RbMsg<PanicProof>),
    /// The BFT consensus layer (OBBC fallback + recovery ordering).
    Consensus(PbftMsg<ConsensusValue>),
    /// The state-sync sub-protocol: late-join / catch-up range fetch of the
    /// definite ledger prefix (WIRE_FORMAT.md §10).
    Sync(SyncMsg),
}

impl WireSize for WorkerMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            WorkerMsg::BlockData { txs, .. } => 32 + txs.wire_size(),
            WorkerMsg::Header { header } => header.wire_size(),
            WorkerMsg::Vote { piggyback, .. } => 8 + 4 + 1 + piggyback.wire_size(),
            WorkerMsg::PullHeader { .. } => 8 + 4,
            WorkerMsg::PullHeaderReply { header } => header.wire_size(),
            WorkerMsg::PullBlock { .. } => 32,
            WorkerMsg::PullBlockReply { txs, .. } => 32 + txs.wire_size(),
            WorkerMsg::Panic(m) => m.wire_size(),
            WorkerMsg::Consensus(m) => m.wire_size(),
            WorkerMsg::Sync(m) => m.wire_size(),
        }
    }
}

/// A worker message tagged with its FLO worker instance.
#[derive(Clone, Debug, PartialEq)]
pub struct FloMsg {
    /// The worker instance this message belongs to.
    pub worker: WorkerId,
    /// The worker-level message.
    pub inner: WorkerMsg,
}

impl WireSize for FloMsg {
    fn wire_size(&self) -> usize {
        4 + self.inner.wire_size()
    }
}

/// Layout per WIRE_FORMAT.md §6.1: a discriminant byte (`0x01` BlockData
/// through `0x0A` Sync) followed by the variant's fields in declaration
/// order. Embedded sub-protocol messages ([`RbMsg`], [`PbftMsg`],
/// [`SyncMsg`]) use their own layouts from §5 and §10.
impl WireCodec for WorkerMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            WorkerMsg::BlockData { payload_hash, txs } => {
                out.push(1);
                payload_hash.encode_to(out);
                txs.encode_to(out);
            }
            WorkerMsg::Header { header } => {
                out.push(2);
                header.encode_to(out);
            }
            WorkerMsg::Vote {
                round,
                proposer,
                vote,
                piggyback,
            } => {
                out.push(3);
                round.encode_to(out);
                proposer.encode_to(out);
                vote.encode_to(out);
                piggyback.encode_to(out);
            }
            WorkerMsg::PullHeader { round, proposer } => {
                out.push(4);
                round.encode_to(out);
                proposer.encode_to(out);
            }
            WorkerMsg::PullHeaderReply { header } => {
                out.push(5);
                header.encode_to(out);
            }
            WorkerMsg::PullBlock { payload_hash } => {
                out.push(6);
                payload_hash.encode_to(out);
            }
            WorkerMsg::PullBlockReply { payload_hash, txs } => {
                out.push(7);
                payload_hash.encode_to(out);
                txs.encode_to(out);
            }
            WorkerMsg::Panic(m) => {
                out.push(8);
                m.encode_to(out);
            }
            WorkerMsg::Consensus(m) => {
                out.push(9);
                m.encode_to(out);
            }
            WorkerMsg::Sync(m) => {
                out.push(10);
                m.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(WorkerMsg::BlockData {
                payload_hash: Hash::decode_from(r)?,
                txs: Vec::<Transaction>::decode_from(r)?,
            }),
            2 => Ok(WorkerMsg::Header {
                header: SignedHeader::decode_from(r)?,
            }),
            3 => Ok(WorkerMsg::Vote {
                round: Round::decode_from(r)?,
                proposer: NodeId::decode_from(r)?,
                vote: bool::decode_from(r)?,
                piggyback: Option::<SignedHeader>::decode_from(r)?,
            }),
            4 => Ok(WorkerMsg::PullHeader {
                round: Round::decode_from(r)?,
                proposer: NodeId::decode_from(r)?,
            }),
            5 => Ok(WorkerMsg::PullHeaderReply {
                header: SignedHeader::decode_from(r)?,
            }),
            6 => Ok(WorkerMsg::PullBlock {
                payload_hash: Hash::decode_from(r)?,
            }),
            7 => Ok(WorkerMsg::PullBlockReply {
                payload_hash: Hash::decode_from(r)?,
                txs: Vec::<Transaction>::decode_from(r)?,
            }),
            8 => Ok(WorkerMsg::Panic(RbMsg::<PanicProof>::decode_from(r)?)),
            9 => Ok(WorkerMsg::Consensus(
                PbftMsg::<ConsensusValue>::decode_from(r)?,
            )),
            10 => Ok(WorkerMsg::Sync(SyncMsg::decode_from(r)?)),
            tag => Err(CodecError::BadTag {
                what: "WorkerMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            WorkerMsg::BlockData { txs, .. } => 32 + txs.encoded_len(),
            WorkerMsg::Header { header } => header.encoded_len(),
            WorkerMsg::Vote { piggyback, .. } => 8 + 4 + 1 + piggyback.encoded_len(),
            WorkerMsg::PullHeader { .. } => 8 + 4,
            WorkerMsg::PullHeaderReply { header } => header.encoded_len(),
            WorkerMsg::PullBlock { .. } => 32,
            WorkerMsg::PullBlockReply { txs, .. } => 32 + txs.encoded_len(),
            WorkerMsg::Panic(m) => m.encoded_len(),
            WorkerMsg::Consensus(m) => m.encoded_len(),
            WorkerMsg::Sync(m) => m.encoded_len(),
        }
    }
}

/// Layout per WIRE_FORMAT.md §6.2: `worker u32 | inner WorkerMsg`.
impl WireCodec for FloMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.worker.encode_to(out);
        self.inner.encode_to(out);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FloMsg {
            worker: WorkerId::decode_from(r)?,
            inner: WorkerMsg::decode_from(r)?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + self.inner.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{BlockHeader, Round, Signature, WorkerId, GENESIS_HASH};

    fn signed_header() -> SignedHeader {
        SignedHeader::new(
            BlockHeader::new(
                Round(3),
                WorkerId(0),
                NodeId(1),
                GENESIS_HASH,
                GENESIS_HASH,
                10,
                5120,
            ),
            Signature::from(vec![0u8; 64]),
        )
    }

    #[test]
    fn vote_without_piggyback_is_tiny() {
        let vote = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: None,
        };
        assert!(
            vote.wire_size() < 20,
            "optimistic votes must stay near a single bit of protocol data"
        );
    }

    #[test]
    fn piggybacked_vote_costs_one_header() {
        let plain = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: None,
        };
        let piggy = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: Some(signed_header()),
        };
        assert_eq!(
            piggy.wire_size() - plain.wire_size(),
            signed_header().wire_size()
        );
    }

    #[test]
    fn block_data_dominates_wire_cost() {
        let txs: Vec<Transaction> = (0..100).map(|i| Transaction::zeroed(0, i, 512)).collect();
        let data = WorkerMsg::BlockData {
            payload_hash: GENESIS_HASH,
            txs,
        };
        assert!(data.wire_size() > 100 * 512);
        let header = WorkerMsg::Header {
            header: signed_header(),
        };
        assert!(data.wire_size() > 100 * header.wire_size());
    }

    #[test]
    fn consensus_value_sizes() {
        let vote = ConsensusValue::FallbackVote {
            round: Round(1),
            proposer: NodeId(0),
            voter: NodeId(2),
            vote: true,
            evidence: Some(signed_header()),
        };
        let version = ConsensusValue::RecoveryVersion {
            recovery_round: Round(9),
            from: NodeId(1),
            version: vec![signed_header(); 3],
        };
        assert!(version.wire_size() > vote.wire_size());
        assert!(vote.wire_size() > 100);
    }

    #[test]
    fn panic_proof_size_includes_both_headers() {
        let proof = PanicProof {
            detected_round: Round(4),
            conflicting: signed_header(),
            local_parent: Some(signed_header()),
        };
        assert!(proof.wire_size() > 2 * signed_header().wire_size());
        let msg = WorkerMsg::Panic(RbMsg::Init {
            origin: NodeId(0),
            tag: 0,
            value: proof,
        });
        assert!(msg.wire_size() > 300);
    }

    #[test]
    fn flo_wrapping_adds_worker_tag() {
        let inner = WorkerMsg::PullBlock {
            payload_hash: GENESIS_HASH,
        };
        let inner_size = inner.wire_size();
        let flo = FloMsg {
            worker: WorkerId(3),
            inner,
        };
        assert_eq!(flo.wire_size(), inner_size + 4);
    }

    /// One value of every [`WorkerMsg`] variant, exercising every nested
    /// message layout (panic RB, fallback consensus, recovery versions).
    fn every_worker_msg() -> Vec<WorkerMsg> {
        vec![
            WorkerMsg::BlockData {
                payload_hash: GENESIS_HASH,
                txs: vec![
                    Transaction::zeroed(1, 0, 64),
                    Transaction::new(2, 1, vec![7]),
                ],
            },
            WorkerMsg::Header {
                header: signed_header(),
            },
            WorkerMsg::Vote {
                round: Round(4),
                proposer: NodeId(1),
                vote: true,
                piggyback: Some(signed_header()),
            },
            WorkerMsg::Vote {
                round: Round(4),
                proposer: NodeId(1),
                vote: false,
                piggyback: None,
            },
            WorkerMsg::PullHeader {
                round: Round(9),
                proposer: NodeId(2),
            },
            WorkerMsg::PullHeaderReply {
                header: signed_header(),
            },
            WorkerMsg::PullBlock {
                payload_hash: GENESIS_HASH,
            },
            WorkerMsg::PullBlockReply {
                payload_hash: GENESIS_HASH,
                txs: vec![Transaction::zeroed(3, 3, 16)],
            },
            WorkerMsg::Panic(RbMsg::Echo {
                origin: NodeId(0),
                tag: 5,
                value: PanicProof {
                    detected_round: Round(4),
                    conflicting: signed_header(),
                    local_parent: Some(signed_header()),
                },
            }),
            WorkerMsg::Consensus(PbftMsg::PrePrepare {
                view: 1,
                seq: 2,
                value: ConsensusValue::FallbackVote {
                    round: Round(7),
                    proposer: NodeId(0),
                    voter: NodeId(1),
                    vote: true,
                    evidence: Some(signed_header()),
                },
            }),
            WorkerMsg::Consensus(PbftMsg::Request {
                value: ConsensusValue::RecoveryVersion {
                    recovery_round: Round(11),
                    from: NodeId(3),
                    version: vec![signed_header(); 2],
                },
            }),
            WorkerMsg::Sync(fireledger_types::SyncMsg::GetHeaders {
                req: 5,
                from: Round(100),
                to: Round(228),
            }),
            WorkerMsg::Sync(fireledger_types::SyncMsg::HeadersReply {
                req: 5,
                from: Round(100),
                headers: vec![signed_header(); 2],
            }),
        ]
    }

    #[test]
    fn codec_roundtrips_every_worker_msg_variant() {
        for msg in every_worker_msg() {
            let bytes = msg.encode();
            assert_eq!(WorkerMsg::decode(&bytes).unwrap(), msg, "{msg:?}");
            // And wrapped in the FLO worker tag.
            let flo = FloMsg {
                worker: WorkerId(5),
                inner: msg,
            };
            assert_eq!(FloMsg::decode(&flo.encode()).unwrap(), flo);
        }
    }

    #[test]
    fn codec_roundtrips_panic_proof_without_parent() {
        let proof = PanicProof {
            detected_round: Round(0),
            conflicting: signed_header(),
            local_parent: None,
        };
        assert_eq!(PanicProof::decode(&proof.encode()).unwrap(), proof);
    }

    #[test]
    fn codec_rejects_unknown_worker_msg_discriminants() {
        assert!(matches!(
            WorkerMsg::decode(&[0xEE]),
            Err(fireledger_types::CodecError::BadTag {
                what: "WorkerMsg",
                ..
            })
        ));
    }

    /// The worked example of WIRE_FORMAT.md §8, byte for byte: a framed
    /// `FloMsg` carrying a one-transaction FLO block body. If this test
    /// fails, either the implementation or the spec changed — update the
    /// other side and bump `WIRE_VERSION` if the change is incompatible.
    #[test]
    fn golden_frame_matches_wire_format_spec_section_8() {
        use fireledger_types::codec::FrameHeader;
        let msg = FloMsg {
            worker: WorkerId(0),
            inner: WorkerMsg::BlockData {
                payload_hash: fireledger_types::Hash([0x22; 32]),
                txs: vec![Transaction::new(1, 2, b"FIRE".as_slice())],
            },
        };
        let payload = msg.encode();
        let mut frame = FrameHeader::new(payload.len()).encode().to_vec();
        frame.extend_from_slice(&payload);

        let expected_hex = concat!(
            // Frame header: magic "FLGR", version 2, payload length 65.
            // (Version 2 added the optional execution root to canonical
            // header bytes — WIRE_FORMAT.md §12; body messages like this
            // one are unchanged apart from the version byte.)
            "464c4752",
            "02",
            "00000041",
            // FloMsg: worker 0.
            "00000000",
            // WorkerMsg discriminant 0x01 (BlockData).
            "01",
            // payload_hash: 32 bytes of 0x22.
            "2222222222222222222222222222222222222222222222222222222222222222",
            // txs: 1 element.
            "00000001",
            // Transaction: client 1, seq 2, payload "FIRE".
            "0000000000000001",
            "0000000000000002",
            "00000004",
            "46495245",
        );
        let got_hex: String = frame.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(got_hex, expected_hex);
        // And the spec'd bytes decode back to the message.
        assert_eq!(FloMsg::decode(&payload).unwrap(), msg);
    }

    #[test]
    fn truncating_any_prefix_never_panics() {
        // Defensive decoding: every truncation of a real message must fail
        // cleanly (no panic, no bogus success of the *same* byte meaning).
        for msg in every_worker_msg() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let _ = WorkerMsg::decode(&bytes[..cut]);
            }
        }
    }
}
