//! Wire messages of the FireLedger protocol.
//!
//! One FireLedger worker instance exchanges [`WorkerMsg`]s; a FLO node runs ω
//! workers and tags each message with the worker it belongs to
//! ([`FloMsg`]). The message set mirrors the paper's communication pattern:
//!
//! * the **data path** ships block bodies ([`WorkerMsg::BlockData`]) as soon
//!   as they are assembled (§6.1.1, block/header separation);
//! * the **consensus path** ships signed headers — either pushed explicitly
//!   ([`WorkerMsg::Header`], the `full_mode` WRB-broadcast of Algorithm 2
//!   lines 6–11) or piggybacked on the next proposer's OBBC vote
//!   ([`WorkerMsg::Vote`], Figure 1);
//! * the optimistic path is the single-bit [`WorkerMsg::Vote`];
//! * pull messages recover a missed header or body from peers that voted to
//!   deliver it (Algorithm 1 lines 22–27);
//! * [`WorkerMsg::Panic`] wraps the reliable broadcast of Byzantine proofs
//!   (Algorithm 2 lines b6–b7);
//! * [`WorkerMsg::Consensus`] wraps the PBFT consensus layer used for the
//!   OBBC fallback and the recovery versions (Figure 3's BFT-SMaRt box).

use fireledger_bft::{PbftMsg, RbMsg};
use fireledger_types::{Hash, NodeId, Round, SignedHeader, Transaction, WireSize, WorkerId};

/// A proof that some proposer behaved inconsistently: a signed header that
/// does not extend the prover's chain, together with the prover's signed
/// header for the parent round (Algorithm 2 line b6).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PanicProof {
    /// The round at which the inconsistency was detected.
    pub detected_round: Round,
    /// The header that failed chain validation.
    pub conflicting: SignedHeader,
    /// The prover's own header for the preceding round (None at round 0).
    pub local_parent: Option<SignedHeader>,
}

impl WireSize for PanicProof {
    fn wire_size(&self) -> usize {
        8 + self.conflicting.wire_size() + self.local_parent.wire_size()
    }
}

/// Values submitted to the worker's BFT consensus layer (the BFT-SMaRt
/// stand-in): OBBC fallback votes and recovery versions.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConsensusValue {
    /// A vote submitted to the fallback consensus after the optimistic path
    /// failed (Algorithm 4 line OB19, realized through the ordering layer).
    FallbackVote {
        /// Round the vote refers to.
        round: Round,
        /// Proposer of the attempt the vote refers to.
        proposer: NodeId,
        /// The voting node.
        voter: NodeId,
        /// The vote (deliver / do not deliver).
        vote: bool,
        /// `evidence(1)`: the proposer's signed header, when the voter has it.
        evidence: Option<SignedHeader>,
    },
    /// A node's chain version submitted during recovery (Algorithm 3 line 8).
    RecoveryVersion {
        /// The round the recovery was invoked for.
        recovery_round: Round,
        /// The node submitting this version.
        from: NodeId,
        /// The suffix of signed headers starting at `recovery_round − (f+1)`;
        /// empty for nodes that are too far behind.
        version: Vec<SignedHeader>,
    },
}

impl WireSize for ConsensusValue {
    fn wire_size(&self) -> usize {
        match self {
            ConsensusValue::FallbackVote { evidence, .. } => 8 + 4 + 4 + 1 + evidence.wire_size(),
            ConsensusValue::RecoveryVersion { version, .. } => 8 + 4 + version.wire_size(),
        }
    }
}

/// Wire messages exchanged between the worker-`w` instances of the cluster.
#[derive(Clone, Debug)]
pub enum WorkerMsg {
    /// Data path: a block body, disseminated as soon as it is assembled and
    /// referenced from headers by its payload (merkle) hash.
    BlockData {
        /// Merkle root of the transactions.
        payload_hash: Hash,
        /// The transactions themselves.
        txs: Vec<Transaction>,
    },
    /// Consensus path: explicit dissemination of a signed header (`full_mode`
    /// push, used at start-up and after a failed attempt).
    Header {
        /// The proposer-signed header.
        header: SignedHeader,
    },
    /// The single-bit optimistic vote of WRB/OBBC, optionally carrying the
    /// next proposer's piggybacked header (Figure 1).
    Vote {
        /// Round being voted on.
        round: Round,
        /// Proposer of the attempt being voted on.
        proposer: NodeId,
        /// The vote: deliver (`true`) or skip (`false`).
        vote: bool,
        /// The next round's header, piggybacked by its proposer.
        piggyback: Option<SignedHeader>,
    },
    /// Pull request for a header this node missed although it was decided
    /// (WRB pull phase).
    PullHeader {
        /// Round of the missing header.
        round: Round,
        /// Proposer whose header is requested.
        proposer: NodeId,
    },
    /// Reply to [`WorkerMsg::PullHeader`].
    PullHeaderReply {
        /// The requested header.
        header: SignedHeader,
    },
    /// Pull request for a block body this node missed.
    PullBlock {
        /// Payload hash identifying the body.
        payload_hash: Hash,
    },
    /// Reply to [`WorkerMsg::PullBlock`].
    PullBlockReply {
        /// Payload hash identifying the body.
        payload_hash: Hash,
        /// The transactions of the body.
        txs: Vec<Transaction>,
    },
    /// Reliable broadcast of Byzantine-behaviour proofs.
    Panic(RbMsg<PanicProof>),
    /// The BFT consensus layer (OBBC fallback + recovery ordering).
    Consensus(PbftMsg<ConsensusValue>),
}

impl WireSize for WorkerMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            WorkerMsg::BlockData { txs, .. } => 32 + txs.wire_size(),
            WorkerMsg::Header { header } => header.wire_size(),
            WorkerMsg::Vote { piggyback, .. } => 8 + 4 + 1 + piggyback.wire_size(),
            WorkerMsg::PullHeader { .. } => 8 + 4,
            WorkerMsg::PullHeaderReply { header } => header.wire_size(),
            WorkerMsg::PullBlock { .. } => 32,
            WorkerMsg::PullBlockReply { txs, .. } => 32 + txs.wire_size(),
            WorkerMsg::Panic(m) => m.wire_size(),
            WorkerMsg::Consensus(m) => m.wire_size(),
        }
    }
}

/// A worker message tagged with its FLO worker instance.
#[derive(Clone, Debug)]
pub struct FloMsg {
    /// The worker instance this message belongs to.
    pub worker: WorkerId,
    /// The worker-level message.
    pub inner: WorkerMsg,
}

impl WireSize for FloMsg {
    fn wire_size(&self) -> usize {
        4 + self.inner.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{BlockHeader, Round, Signature, WorkerId, GENESIS_HASH};

    fn signed_header() -> SignedHeader {
        SignedHeader::new(
            BlockHeader::new(
                Round(3),
                WorkerId(0),
                NodeId(1),
                GENESIS_HASH,
                GENESIS_HASH,
                10,
                5120,
            ),
            Signature(vec![0u8; 64]),
        )
    }

    #[test]
    fn vote_without_piggyback_is_tiny() {
        let vote = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: None,
        };
        assert!(
            vote.wire_size() < 20,
            "optimistic votes must stay near a single bit of protocol data"
        );
    }

    #[test]
    fn piggybacked_vote_costs_one_header() {
        let plain = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: None,
        };
        let piggy = WorkerMsg::Vote {
            round: Round(1),
            proposer: NodeId(0),
            vote: true,
            piggyback: Some(signed_header()),
        };
        assert_eq!(
            piggy.wire_size() - plain.wire_size(),
            signed_header().wire_size()
        );
    }

    #[test]
    fn block_data_dominates_wire_cost() {
        let txs: Vec<Transaction> = (0..100).map(|i| Transaction::zeroed(0, i, 512)).collect();
        let data = WorkerMsg::BlockData {
            payload_hash: GENESIS_HASH,
            txs,
        };
        assert!(data.wire_size() > 100 * 512);
        let header = WorkerMsg::Header {
            header: signed_header(),
        };
        assert!(data.wire_size() > 100 * header.wire_size());
    }

    #[test]
    fn consensus_value_sizes() {
        let vote = ConsensusValue::FallbackVote {
            round: Round(1),
            proposer: NodeId(0),
            voter: NodeId(2),
            vote: true,
            evidence: Some(signed_header()),
        };
        let version = ConsensusValue::RecoveryVersion {
            recovery_round: Round(9),
            from: NodeId(1),
            version: vec![signed_header(); 3],
        };
        assert!(version.wire_size() > vote.wire_size());
        assert!(vote.wire_size() > 100);
    }

    #[test]
    fn panic_proof_size_includes_both_headers() {
        let proof = PanicProof {
            detected_round: Round(4),
            conflicting: signed_header(),
            local_parent: Some(signed_header()),
        };
        assert!(proof.wire_size() > 2 * signed_header().wire_size());
        let msg = WorkerMsg::Panic(RbMsg::Init {
            origin: NodeId(0),
            tag: 0,
            value: proof,
        });
        assert!(msg.wire_size() > 300);
    }

    #[test]
    fn flo_wrapping_adds_worker_tag() {
        let inner = WorkerMsg::PullBlock {
            payload_hash: GENESIS_HASH,
        };
        let inner_size = inner.wire_size();
        let flo = FloMsg {
            worker: WorkerId(3),
            inner,
        };
        assert_eq!(flo.wire_size(), inner_size + 4);
    }
}
