//! Adaptive WRB delivery timeout (§6.1.1, "Dynamically Tuning the Timeout").
//!
//! WRB waits for the proposer's message for at most `timer` time units
//! (Algorithm 1, line 7). The timer must track the network's current delay:
//! too short and correct proposers get skipped (hurting throughput), too long
//! and a crashed proposer stalls the round. The paper adjusts the timer with
//! an exponential moving average (EMA) of recent message delays
//!
//! ```text
//! timer_r = 2/(N+1) · d_{r-1} + timer_{r-2} · (1 − 2/(N+1))
//! ```
//!
//! and additionally *increases* the timer on every unsuccessful delivery
//! (Algorithm 1, line 14) to guarantee liveness under ◇Synch.

use std::time::Duration;

/// The adaptive timeout of one FireLedger worker.
#[derive(Clone, Debug)]
pub struct EmaTimer {
    base: Duration,
    max: Duration,
    current: Duration,
    alpha: f64,
    /// Multiplicative safety margin applied on top of the smoothed delay so a
    /// correct proposer that is marginally slower than the average is not
    /// skipped.
    margin: f64,
    misses: u32,
}

impl EmaTimer {
    /// Creates a timer with the given base (initial) value, upper bound and
    /// EMA window `N`.
    pub fn new(base: Duration, max: Duration, window: usize) -> Self {
        let window = window.max(1) as f64;
        EmaTimer {
            base,
            max,
            current: base,
            alpha: 2.0 / (window + 1.0),
            margin: 4.0,
            misses: 0,
        }
    }

    /// The current timeout to arm for the next WRB delivery.
    pub fn current(&self) -> Duration {
        self.current
    }

    /// Number of consecutive missed deliveries.
    pub fn consecutive_misses(&self) -> u32 {
        self.misses
    }

    /// Records a successful delivery whose message delay was `delay`; the
    /// timeout is adjusted towards `margin × EMA(delay)` (Algorithm 1,
    /// line 19 "adjust timer").
    pub fn record_delivery(&mut self, delay: Duration) {
        self.misses = 0;
        let observed = delay.as_secs_f64() * self.margin;
        let current = self.current.as_secs_f64();
        let next = self.alpha * observed + (1.0 - self.alpha) * current;
        self.current = clamp_duration(Duration::from_secs_f64(next), self.base, self.max);
    }

    /// Records a missed delivery (the timer expired before the proposer's
    /// message arrived); the timeout doubles, up to the maximum (Algorithm 1,
    /// line 14 "increase timer").
    pub fn record_miss(&mut self) {
        self.misses += 1;
        let doubled = self.current.saturating_mul(2);
        self.current = clamp_duration(doubled, self.base, self.max);
    }

    /// Resets the timer to its base value (used when the suspected-node list
    /// is invalidated and after recovery completes).
    pub fn reset(&mut self) {
        self.current = self.base;
        self.misses = 0;
    }
}

fn clamp_duration(d: Duration, min: Duration, max: Duration) -> Duration {
    if d < min {
        min
    } else if d > max {
        max
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> EmaTimer {
        EmaTimer::new(Duration::from_millis(50), Duration::from_secs(5), 16)
    }

    #[test]
    fn starts_at_base() {
        assert_eq!(timer().current(), Duration::from_millis(50));
    }

    #[test]
    fn misses_double_up_to_max() {
        let mut t = timer();
        t.record_miss();
        assert_eq!(t.current(), Duration::from_millis(100));
        t.record_miss();
        assert_eq!(t.current(), Duration::from_millis(200));
        assert_eq!(t.consecutive_misses(), 2);
        for _ in 0..20 {
            t.record_miss();
        }
        assert_eq!(t.current(), Duration::from_secs(5));
    }

    #[test]
    fn deliveries_pull_the_timeout_towards_the_observed_delay() {
        let mut t = timer();
        // Blow the timeout up first.
        for _ in 0..6 {
            t.record_miss();
        }
        let inflated = t.current();
        assert!(inflated >= Duration::from_secs(1));
        // A long run of fast deliveries shrinks it again.
        for _ in 0..200 {
            t.record_delivery(Duration::from_millis(2));
        }
        assert!(t.current() < Duration::from_millis(60));
        // ... but never below the base.
        assert!(t.current() >= Duration::from_millis(50));
        assert_eq!(t.consecutive_misses(), 0);
    }

    #[test]
    fn slow_network_raises_the_timeout() {
        let mut t = timer();
        for _ in 0..200 {
            t.record_delivery(Duration::from_millis(100));
        }
        // 4x margin over a 100 ms delay.
        assert!(t.current() > Duration::from_millis(300));
        assert!(t.current() <= Duration::from_millis(450));
    }

    #[test]
    fn reset_returns_to_base() {
        let mut t = timer();
        t.record_miss();
        t.record_delivery(Duration::from_millis(500));
        t.reset();
        assert_eq!(t.current(), Duration::from_millis(50));
        assert_eq!(t.consecutive_misses(), 0);
    }

    #[test]
    fn window_of_one_tracks_last_sample() {
        let mut t = EmaTimer::new(Duration::from_millis(1), Duration::from_secs(1), 1);
        t.record_delivery(Duration::from_millis(10));
        // alpha = 1 → current = margin * 10 ms.
        assert_eq!(t.current(), Duration::from_millis(40));
    }
}
