//! Scripted Byzantine behaviours used by the evaluation (§7.4.2).
//!
//! The paper's Byzantine node "divides the cluster into two random parts and
//! for every given round distributes different versions of the block to each
//! part". [`EquivocatingNode`] reproduces that attack: it wraps an ordinary
//! FLO node and, whenever the wrapped node broadcasts one of its own signed
//! headers (either an explicit `Header` push or a header piggybacked on a
//! vote), it sends the genuine header to one half of the cluster and a
//! re-signed, mutated header (different parent hash, i.e. a different chain
//! version) to the other half.
//!
//! Because the mutation is signed with the node's own key, both halves accept
//! the header as authentic; the divergence is only caught by the hash-chain
//! check of the *next* correct proposer's block, which triggers the panic /
//! recovery path — exactly the scenario Figure 12 measures. A
//! [`SilentProposerNode`] variant models a node that simply never proposes,
//! exercising the fallback path without recoveries.

use crate::flo::FloNode;
use crate::messages::{FloMsg, WorkerMsg};
use fireledger_crypto::SharedCrypto;
use fireledger_types::{
    Action, Hash, NodeId, Outbox, Protocol, SignedHeader, TimerId, Transaction,
};

/// A Byzantine node that equivocates on every block it proposes.
pub struct EquivocatingNode {
    inner: FloNode,
    crypto: SharedCrypto,
    n: usize,
}

impl EquivocatingNode {
    /// Wraps `inner`; `crypto` must hold the wrapped node's signing key so the
    /// mutated headers can be re-signed.
    pub fn new(inner: FloNode, crypto: SharedCrypto) -> Self {
        let n = inner.params().n();
        EquivocatingNode { inner, crypto, n }
    }

    /// Access to the wrapped (honest-logic) node.
    pub fn inner(&self) -> &FloNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (runtime configuration).
    pub fn inner_mut(&mut self) -> &mut FloNode {
        &mut self.inner
    }

    fn mutate(&self, signed: &SignedHeader) -> SignedHeader {
        let mut header = signed.header.clone();
        // A different chain version: flip the parent pointer.
        let mut parent = *header.parent.as_bytes();
        parent[0] ^= 0xFF;
        parent[31] ^= 0xFF;
        header.parent = Hash::from_bytes(parent);
        let signature = self.crypto.sign(header.proposer, &header.canonical_bytes());
        SignedHeader::new(header, signature)
    }

    fn equivocate_broadcast(&self, msg: FloMsg, out: &mut Outbox<FloMsg>) {
        let me = self.inner.node();
        // First half of the cluster receives the original, second half the
        // mutated version.
        let boundary = self.n / 2;
        for i in 0..self.n {
            let to = NodeId(i as u32);
            if to == me {
                continue;
            }
            let send_original = i < boundary;
            let inner = match (&msg.inner, send_original) {
                (_, true) => msg.inner.clone(),
                (WorkerMsg::Header { header }, false) => WorkerMsg::Header {
                    header: self.mutate(header),
                },
                (
                    WorkerMsg::Vote {
                        round,
                        proposer,
                        vote,
                        piggyback: Some(h),
                    },
                    false,
                ) => WorkerMsg::Vote {
                    round: *round,
                    proposer: *proposer,
                    vote: *vote,
                    piggyback: Some(self.mutate(h)),
                },
                (_, false) => msg.inner.clone(),
            };
            out.send(
                to,
                FloMsg {
                    worker: msg.worker,
                    inner,
                },
            );
        }
    }

    fn is_own_header_broadcast(&self, msg: &FloMsg) -> bool {
        let me = self.inner.node();
        match &msg.inner {
            WorkerMsg::Header { header } => header.proposer() == me,
            WorkerMsg::Vote {
                piggyback: Some(h), ..
            } => h.proposer() == me,
            _ => false,
        }
    }

    fn filter(&mut self, sub: Outbox<FloMsg>, out: &mut Outbox<FloMsg>) {
        for action in sub.into_actions() {
            match action {
                Action::Broadcast { msg } if self.is_own_header_broadcast(&msg) => {
                    self.equivocate_broadcast(msg, out);
                }
                Action::Send { to, msg } => out.send(to, msg),
                Action::Broadcast { msg } => out.broadcast(msg),
                Action::SetTimer { id, delay } => out.set_timer(id, delay),
                Action::CancelTimer { id } => out.cancel_timer(id),
                Action::Cpu(c) => out.cpu(c),
                Action::Observe(o) => out.observe(o),
                Action::Deliver(d) => out.deliver(d),
            }
        }
    }
}

impl Protocol for EquivocatingNode {
    type Msg = FloMsg;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn on_start(&mut self, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_start(&mut sub);
        self.filter(sub, out);
    }

    fn on_message(&mut self, from: NodeId, msg: FloMsg, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_message(from, msg, &mut sub);
        self.filter(sub, out);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_timer(timer, &mut sub);
        self.filter(sub, out);
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_transaction(tx, &mut sub);
        self.filter(sub, out);
    }
}

/// A Byzantine node that participates in voting but never disseminates its own
/// blocks or headers, forcing a timeout and fallback each time its turn comes.
pub struct SilentProposerNode {
    inner: FloNode,
}

impl SilentProposerNode {
    /// Wraps `inner`.
    pub fn new(inner: FloNode) -> Self {
        SilentProposerNode { inner }
    }

    /// Access to the wrapped node.
    pub fn inner(&self) -> &FloNode {
        &self.inner
    }

    /// Mutable access to the wrapped node (runtime configuration).
    pub fn inner_mut(&mut self) -> &mut FloNode {
        &mut self.inner
    }

    fn suppress(&self, sub: Outbox<FloMsg>, out: &mut Outbox<FloMsg>) {
        let me = self.inner.node();
        let suppressed = |msg: &FloMsg| match &msg.inner {
            WorkerMsg::Header { header } => header.proposer() == me,
            WorkerMsg::BlockData { .. } => true,
            WorkerMsg::Vote {
                piggyback: Some(h), ..
            } => h.proposer() == me,
            _ => false,
        };
        for action in sub.into_actions() {
            match action {
                Action::Broadcast { msg } if suppressed(&msg) => {
                    // Strip the piggyback but keep the vote itself, so the
                    // node still looks responsive.
                    if let WorkerMsg::Vote {
                        round,
                        proposer,
                        vote,
                        ..
                    } = msg.inner
                    {
                        out.broadcast(FloMsg {
                            worker: msg.worker,
                            inner: WorkerMsg::Vote {
                                round,
                                proposer,
                                vote,
                                piggyback: None,
                            },
                        });
                    }
                }
                Action::Send { to, msg } => out.send(to, msg),
                Action::Broadcast { msg } => out.broadcast(msg),
                Action::SetTimer { id, delay } => out.set_timer(id, delay),
                Action::CancelTimer { id } => out.cancel_timer(id),
                Action::Cpu(c) => out.cpu(c),
                Action::Observe(o) => out.observe(o),
                Action::Deliver(d) => out.deliver(d),
            }
        }
    }
}

impl Protocol for SilentProposerNode {
    type Msg = FloMsg;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn on_start(&mut self, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_start(&mut sub);
        self.suppress(sub, out);
    }

    fn on_message(&mut self, from: NodeId, msg: FloMsg, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_message(from, msg, &mut sub);
        self.suppress(sub, out);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_timer(timer, &mut sub);
        self.suppress(sub, out);
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<FloMsg>) {
        let mut sub = Outbox::new();
        self.inner.on_transaction(tx, &mut sub);
        self.suppress(sub, out);
    }
}

/// Either an honest FLO node or one of the scripted Byzantine variants —
/// convenient for building mixed clusters in experiments, since the simulator
/// needs a single node type.
pub enum ClusterNode {
    /// A correct FLO node.
    Honest(FloNode),
    /// An equivocating Byzantine node.
    Equivocating(EquivocatingNode),
    /// A silent-proposer Byzantine node.
    Silent(SilentProposerNode),
}

impl Protocol for ClusterNode {
    type Msg = FloMsg;

    fn node_id(&self) -> NodeId {
        match self {
            ClusterNode::Honest(n) => n.node_id(),
            ClusterNode::Equivocating(n) => n.node_id(),
            ClusterNode::Silent(n) => n.node_id(),
        }
    }

    fn is_syncing(&self) -> bool {
        match self {
            ClusterNode::Honest(n) => FloNode::is_syncing(n),
            ClusterNode::Equivocating(n) => FloNode::is_syncing(&n.inner),
            ClusterNode::Silent(n) => FloNode::is_syncing(&n.inner),
        }
    }

    fn on_start(&mut self, out: &mut Outbox<FloMsg>) {
        match self {
            ClusterNode::Honest(n) => n.on_start(out),
            ClusterNode::Equivocating(n) => n.on_start(out),
            ClusterNode::Silent(n) => n.on_start(out),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: FloMsg, out: &mut Outbox<FloMsg>) {
        match self {
            ClusterNode::Honest(n) => n.on_message(from, msg, out),
            ClusterNode::Equivocating(n) => n.on_message(from, msg, out),
            ClusterNode::Silent(n) => n.on_message(from, msg, out),
        }
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<FloMsg>) {
        match self {
            ClusterNode::Honest(n) => n.on_timer(timer, out),
            ClusterNode::Equivocating(n) => n.on_timer(timer, out),
            ClusterNode::Silent(n) => n.on_timer(timer, out),
        }
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<FloMsg>) {
        match self {
            ClusterNode::Honest(n) => n.on_transaction(tx, out),
            ClusterNode::Equivocating(n) => n.on_transaction(tx, out),
            ClusterNode::Silent(n) => n.on_transaction(tx, out),
        }
    }
}

/// Access to the honest view of any cluster node (its FLO state), regardless
/// of the Byzantine wrapper.
impl ClusterNode {
    /// The wrapped FLO node.
    pub fn flo(&self) -> &FloNode {
        match self {
            ClusterNode::Honest(n) => n,
            ClusterNode::Equivocating(n) => n.inner(),
            ClusterNode::Silent(n) => n.inner(),
        }
    }

    /// Mutable access to the wrapped FLO node (runtime configuration —
    /// crypto pool installation, pre-verified-ingress marking — applies to
    /// the honest logic of every Byzantine wrapper too: the wrappers change
    /// what a node *says*, not how it validates).
    pub fn flo_mut(&mut self) -> &mut FloNode {
        match self {
            ClusterNode::Honest(n) => n,
            ClusterNode::Equivocating(n) => n.inner_mut(),
            ClusterNode::Silent(n) => n.inner_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::AcceptAll;
    use fireledger_crypto::SimKeyStore;
    use fireledger_types::{ProtocolParams, Round, WorkerId};
    use std::sync::Arc;
    use std::time::Duration;

    fn flo(me: u32, n: usize) -> (FloNode, SharedCrypto) {
        let params = ProtocolParams::new(n)
            .with_batch_size(4)
            .with_tx_size(32)
            .with_base_timeout(Duration::from_millis(20));
        let crypto: SharedCrypto = SimKeyStore::generate(n, 3).shared();
        (
            FloNode::new(NodeId(me), params, crypto.clone(), Arc::new(AcceptAll)),
            crypto,
        )
    }

    #[test]
    fn equivocator_sends_different_headers_to_the_two_halves() {
        let (node, crypto) = flo(0, 4);
        let mut byz = EquivocatingNode::new(node, crypto.clone());
        let mut out = Outbox::new();
        // Node 0 is the proposer of round 0, so starting it produces a header
        // broadcast that the wrapper splits into per-destination sends.
        byz.on_start(&mut out);
        let mut headers: Vec<(NodeId, SignedHeader)> = Vec::new();
        for action in out.into_actions() {
            if let Action::Send { to, msg } = action {
                if let WorkerMsg::Header { header } = msg.inner {
                    headers.push((to, header));
                }
            }
        }
        assert_eq!(headers.len(), 3, "one header per peer");
        let first_half: Vec<_> = headers.iter().filter(|(to, _)| to.0 < 2).collect();
        let second_half: Vec<_> = headers.iter().filter(|(to, _)| to.0 >= 2).collect();
        assert!(!first_half.is_empty() && !second_half.is_empty());
        assert_ne!(
            first_half[0].1.header.parent, second_half[0].1.header.parent,
            "the two halves must see different chain versions"
        );
        // Both versions carry valid signatures from the Byzantine node.
        for (_, h) in &headers {
            assert!(crypto.verify(NodeId(0), &h.header.canonical_bytes(), &h.signature));
        }
    }

    #[test]
    fn silent_proposer_suppresses_blocks_but_keeps_votes() {
        let (node, _) = flo(0, 4);
        let mut byz = SilentProposerNode::new(node);
        let mut out = Outbox::new();
        byz.on_start(&mut out);
        for action in out.into_actions() {
            match action {
                Action::Broadcast { msg } | Action::Send { msg, .. } => match msg.inner {
                    WorkerMsg::Header { .. } => panic!("silent node must not push headers"),
                    WorkerMsg::BlockData { .. } => panic!("silent node must not push bodies"),
                    _ => {}
                },
                _ => {}
            }
        }
    }

    #[test]
    fn cluster_node_dispatch_reaches_inner_flo() {
        let (node, crypto) = flo(1, 4);
        let honest = ClusterNode::Honest(node);
        assert_eq!(honest.node_id(), NodeId(1));
        assert_eq!(honest.flo().worker_count(), 1);
        let (node2, _) = flo(2, 4);
        let byz = ClusterNode::Equivocating(EquivocatingNode::new(node2, crypto));
        assert_eq!(byz.node_id(), NodeId(2));
        assert_eq!(byz.flo().worker(0).round(), Round(0));
        assert_eq!(byz.flo().worker(0).worker_id(), WorkerId(0));
    }
}
