//! The local blockchain store of one FireLedger worker.
//!
//! FireLedger's chain is *dense in rounds*: the block decided in round `r`
//! sits at index `r`. The last `f + 1` blocks are **tentative** — the recovery
//! procedure may still replace them — and everything older is **definite**
//! (BBFC(f+1)-Finality). The store keeps the signed headers (the consensus
//! path), optionally the block bodies (the data path), and the definite/
//! tentative boundary, and implements the validation rules the protocol and
//! the recovery procedure rely on:
//!
//! * a header extends the chain iff its `parent` equals the hash of the
//!   current tip header and its round is the next round;
//! * a recovery *version* (a suffix of signed headers, Algorithm 3) is valid
//!   with respect to the agreed prefix iff it chains hash-by-hash from the
//!   prefix, every header is properly signed by its claimed proposer, and any
//!   `f + 1` consecutive blocks come from `f + 1` distinct proposers
//!   (Definition 5.3.1 / Lemma 5.3.2).

use fireledger_crypto::{hash_header, verify_header_cached, CryptoProvider};
use fireledger_types::{
    Block, ClusterConfig, Error, Hash, NodeId, Result, Round, SignedHeader, GENESIS_HASH,
};

/// One decided (tentative or definite) block of the chain.
#[derive(Clone, Debug)]
pub struct ChainEntry {
    /// The signed header that went through consensus.
    pub signed_header: SignedHeader,
    /// The block body, once known (bodies travel on the data path and may
    /// arrive after the header is decided).
    pub body: Option<Block>,
    /// Whether the entry is definite (depth > f + 1).
    pub definite: bool,
}

impl ChainEntry {
    /// Creates a tentative entry.
    pub fn new(signed_header: SignedHeader, body: Option<Block>) -> Self {
        ChainEntry {
            signed_header,
            body,
            definite: false,
        }
    }

    /// The round of this entry.
    pub fn round(&self) -> Round {
        self.signed_header.round()
    }

    /// The proposer of this entry.
    pub fn proposer(&self) -> NodeId {
        self.signed_header.proposer()
    }
}

/// A suffix of signed headers exchanged during recovery (a "version" in
/// Algorithm 3). An empty vector encodes the "empty version" a lagging node
/// submits.
pub type Version = Vec<SignedHeader>;

/// The per-worker blockchain store.
#[derive(Clone, Debug)]
pub struct Chain {
    cluster: ClusterConfig,
    entries: Vec<ChainEntry>,
    definite_len: usize,
}

impl Chain {
    /// Creates an empty chain for a cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Chain {
            cluster,
            entries: Vec::new(),
            definite_len: 0,
        }
    }

    /// Total number of decided (tentative + definite) blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no block has been decided yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of definite blocks (the agreed, immutable prefix).
    pub fn definite_len(&self) -> usize {
        self.definite_len
    }

    /// The round the next block should carry.
    pub fn next_round(&self) -> Round {
        Round(self.entries.len() as u64)
    }

    /// The round of the newest decided block, if any.
    pub fn tip_round(&self) -> Option<Round> {
        self.entries.last().map(|e| e.round())
    }

    /// Hash of the tip header (the parent the next block must reference), or
    /// the genesis hash for an empty chain.
    pub fn tip_hash(&self) -> Hash {
        self.entries
            .last()
            .map(|e| hash_header(&e.signed_header.header))
            .unwrap_or(GENESIS_HASH)
    }

    /// The entry decided at `round`, if any.
    pub fn get(&self, round: Round) -> Option<&ChainEntry> {
        self.entries.get(round.0 as usize)
    }

    /// Mutable access to the entry at `round`.
    pub fn get_mut(&mut self, round: Round) -> Option<&mut ChainEntry> {
        self.entries.get_mut(round.0 as usize)
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[ChainEntry] {
        &self.entries
    }

    /// The hash the block at `round` must carry as its parent: the hash of
    /// the header at `round - 1`, or the genesis hash for round 0.
    pub fn parent_hash_for(&self, round: Round) -> Option<Hash> {
        if round == Round(0) {
            return Some(GENESIS_HASH);
        }
        self.get(round.prev())
            .map(|e| hash_header(&e.signed_header.header))
    }

    /// Checks that `signed` extends the current chain: correct next round,
    /// correct parent hash, and a valid proposer signature.
    pub fn validate_extension(
        &self,
        signed: &SignedHeader,
        crypto: &dyn CryptoProvider,
    ) -> Result<()> {
        let header = &signed.header;
        if header.round != self.next_round() {
            return Err(Error::InvalidBlock {
                round: header.round,
                reason: format!("expected round {}, got {}", self.next_round(), header.round),
            });
        }
        if header.parent != self.tip_hash() {
            return Err(Error::InvalidBlock {
                round: header.round,
                reason: format!(
                    "parent hash mismatch (expected {:?}, got {:?})",
                    self.tip_hash(),
                    header.parent
                ),
            });
        }
        // Memoized per header value: a signature verified at reception (or
        // batch-verified off-loop) is a cache read here.
        if !verify_header_cached(crypto, signed) {
            return Err(Error::InvalidSignature {
                signer: header.proposer,
                context: format!("header at {}", header.round),
            });
        }
        Ok(())
    }

    /// Appends an already-validated tentative block.
    pub fn append(&mut self, signed: SignedHeader, body: Option<Block>) {
        debug_assert_eq!(signed.round(), self.next_round());
        self.entries.push(ChainEntry::new(signed, body));
    }

    /// Appends one block replayed from the durable store during
    /// restart-from-disk recovery, marking it definite immediately.
    ///
    /// Only definite (BBFC-final) blocks are ever persisted — FLO writes a
    /// block to the block log at the moment it releases it to the
    /// application — so a replayed block re-enters the chain with the
    /// immutability it already had. The tentative suffix that existed at
    /// kill time was, by definition, never released and is legitimately
    /// lost: the restarted node resumes from its definite prefix.
    pub fn restore_definite(&mut self, signed: SignedHeader, body: Option<Block>) {
        debug_assert_eq!(signed.round(), self.next_round());
        let mut entry = ChainEntry::new(signed, body);
        entry.definite = true;
        self.entries.push(entry);
        self.definite_len = self.entries.len();
    }

    /// Attaches a late-arriving body to its decided header (data-path /
    /// consensus-path separation). Returns `false` when the body does not
    /// match the header's payload hash.
    pub fn attach_body(&mut self, round: Round, body: Block) -> bool {
        let Some(entry) = self.entries.get_mut(round.0 as usize) else {
            return false;
        };
        if entry.signed_header.header.payload_hash != body.header.payload_hash {
            return false;
        }
        if entry.body.is_none() {
            entry.body = Some(body);
        }
        true
    }

    /// Marks every block at depth greater than `f + 1` (with respect to the
    /// current tip) as definite, returning the rounds that were newly
    /// finalized in order.
    pub fn finalize_deep_blocks(&mut self) -> Vec<Round> {
        let tentative_window = self.cluster.f + 1;
        if self.entries.len() <= tentative_window {
            return Vec::new();
        }
        let target = self.entries.len() - tentative_window;
        let mut newly = Vec::new();
        while self.definite_len < target {
            self.entries[self.definite_len].definite = true;
            newly.push(Round(self.definite_len as u64));
            self.definite_len += 1;
        }
        newly
    }

    /// The suffix of signed headers from `from` (inclusive) to the tip — the
    /// version this node submits during recovery.
    pub fn version_from(&self, from: Round) -> Version {
        self.entries
            .iter()
            .skip(from.0 as usize)
            .map(|e| e.signed_header.clone())
            .collect()
    }

    /// Validates a recovery version received from a peer with respect to this
    /// chain's agreed (definite) prefix.
    ///
    /// `base_round` is the round the version starts at (r − (f+1) in
    /// Algorithm 3); the version's first header must chain from the local
    /// header at `base_round − 1` (or genesis). Empty versions are valid.
    pub fn validate_version(
        &self,
        base_round: Round,
        version: &Version,
        crypto: &dyn CryptoProvider,
    ) -> Result<()> {
        if version.is_empty() {
            return Ok(());
        }
        let first = &version[0];
        if first.round() != base_round {
            return Err(Error::InvalidVersion {
                from: first.proposer(),
                reason: format!(
                    "version starts at {}, expected {}",
                    first.round(),
                    base_round
                ),
            });
        }
        let mut expected_parent = if base_round == Round(0) {
            GENESIS_HASH
        } else {
            match self.parent_hash_for(base_round) {
                Some(h) => h,
                None => {
                    return Err(Error::InvalidVersion {
                        from: first.proposer(),
                        reason: "local chain does not contain the agreed prefix".into(),
                    })
                }
            }
        };
        let window = self.cluster.f + 1;
        for (i, signed) in version.iter().enumerate() {
            let header = &signed.header;
            if header.round != base_round.plus(i as u64) {
                return Err(Error::InvalidVersion {
                    from: header.proposer,
                    reason: format!("non-consecutive round {} at offset {i}", header.round),
                });
            }
            if header.parent != expected_parent {
                return Err(Error::InvalidVersion {
                    from: header.proposer,
                    reason: format!("broken hash chain at {}", header.round),
                });
            }
            if !verify_header_cached(crypto, signed) {
                return Err(Error::InvalidVersion {
                    from: header.proposer,
                    reason: format!("bad signature at {}", header.round),
                });
            }
            // Every f+1 consecutive blocks must come from f+1 distinct
            // proposers (Lemma 5.3.2).
            let start = i.saturating_sub(window - 1);
            for earlier in &version[start..i] {
                if earlier.proposer() == header.proposer {
                    return Err(Error::InvalidVersion {
                        from: header.proposer,
                        reason: format!(
                            "proposer {} repeats within {} consecutive blocks",
                            header.proposer, window
                        ),
                    });
                }
            }
            expected_parent = hash_header(header);
        }
        Ok(())
    }

    /// Adopts a recovery version: every entry from `base_round` onwards is
    /// replaced by the version's headers (bodies are kept when the header is
    /// unchanged, dropped otherwise so they can be re-fetched). Definite
    /// blocks are never replaced; attempts to do so are a protocol error.
    pub fn adopt_version(&mut self, base_round: Round, version: Version) -> Result<()> {
        let base = base_round.0 as usize;
        if base < self.definite_len {
            return Err(Error::InvalidState(format!(
                "recovery would rewrite definite prefix (base {base}, definite {})",
                self.definite_len
            )));
        }
        // Keep bodies of unchanged headers.
        let mut new_entries = Vec::with_capacity(version.len());
        for (i, signed) in version.into_iter().enumerate() {
            let body = self
                .entries
                .get(base + i)
                .filter(|e| e.signed_header == signed)
                .and_then(|e| e.body.clone());
            new_entries.push(ChainEntry::new(signed, body));
        }
        self.entries.truncate(base);
        self.entries.extend(new_entries);
        Ok(())
    }

    /// Rounds whose definite block bodies are still missing (they must be
    /// pulled before the block can be delivered to the application).
    pub fn missing_bodies(&self) -> Vec<Round> {
        self.entries
            .iter()
            .filter(|e| e.body.is_none())
            .map(|e| e.round())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::{merkle_root, SimKeyStore};
    use fireledger_types::{BlockHeader, Transaction, WorkerId};

    fn crypto(n: usize) -> SimKeyStore {
        SimKeyStore::generate(n, 42)
    }

    fn make_block(
        chain: &Chain,
        proposer: NodeId,
        txs: Vec<Transaction>,
        crypto: &dyn CryptoProvider,
    ) -> (SignedHeader, Block) {
        let round = chain.next_round();
        let payload_hash = merkle_root(&txs);
        let payload_bytes = txs.iter().map(|t| t.payload.len() as u64).sum();
        let header = BlockHeader::new(
            round,
            WorkerId(0),
            proposer,
            chain.tip_hash(),
            payload_hash,
            txs.len() as u32,
            payload_bytes,
        );
        let sig = crypto.sign(proposer, &header.canonical_bytes());
        let signed = SignedHeader::new(header.clone(), sig);
        (signed, Block::new(header, txs))
    }

    fn grow(chain: &mut Chain, crypto: &dyn CryptoProvider, rounds: usize, n: usize) {
        for i in 0..rounds {
            let proposer = NodeId((chain.next_round().0 as usize % n) as u32);
            let (signed, block) = make_block(
                chain,
                proposer,
                vec![Transaction::zeroed(0, i as u64, 64)],
                crypto,
            );
            chain.validate_extension(&signed, crypto).unwrap();
            chain.append(signed, Some(block));
            chain.finalize_deep_blocks();
        }
    }

    #[test]
    fn empty_chain_starts_at_genesis() {
        let chain = Chain::new(ClusterConfig::new(4));
        assert!(chain.is_empty());
        assert_eq!(chain.next_round(), Round(0));
        assert_eq!(chain.tip_hash(), GENESIS_HASH);
        assert_eq!(chain.parent_hash_for(Round(0)), Some(GENESIS_HASH));
        assert!(chain.tip_round().is_none());
    }

    #[test]
    fn appending_valid_blocks_grows_and_finalizes() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        grow(&mut chain, &crypto, 10, 4);
        assert_eq!(chain.len(), 10);
        // f = 1: the last 2 blocks stay tentative.
        assert_eq!(chain.definite_len(), 8);
        assert!(chain.get(Round(7)).unwrap().definite);
        assert!(!chain.get(Round(8)).unwrap().definite);
        assert!(!chain.get(Round(9)).unwrap().definite);
    }

    #[test]
    fn finalize_returns_newly_definite_rounds_once() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        for i in 0..4 {
            let proposer = NodeId(i as u32 % 4);
            let (signed, _) = make_block(&chain, proposer, vec![], &crypto);
            chain.append(signed, None);
        }
        let newly = chain.finalize_deep_blocks();
        assert_eq!(newly, vec![Round(0), Round(1)]);
        assert!(chain.finalize_deep_blocks().is_empty());
    }

    #[test]
    fn extension_validation_rejects_bad_parent_round_and_signature() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        grow(&mut chain, &crypto, 3, 4);

        // Good extension validates.
        let (good, _) = make_block(&chain, NodeId(3), vec![], &crypto);
        assert!(chain.validate_extension(&good, &crypto).is_ok());

        // Wrong round.
        let mut wrong_round = good.clone();
        wrong_round.header.round = Round(7);
        assert!(matches!(
            chain.validate_extension(&wrong_round, &crypto),
            Err(Error::InvalidBlock { .. })
        ));

        // Wrong parent.
        let mut wrong_parent = good.clone();
        wrong_parent.header.parent = Hash([9u8; 32]);
        assert!(matches!(
            chain.validate_extension(&wrong_parent, &crypto),
            Err(Error::InvalidBlock { .. })
        ));

        // Signature by somebody else.
        let mut wrong_sig = good.clone();
        wrong_sig.signature = crypto.sign(NodeId(1), &wrong_sig.header.canonical_bytes());
        assert!(matches!(
            chain.validate_extension(&wrong_sig, &crypto),
            Err(Error::InvalidSignature { .. })
        ));
    }

    #[test]
    fn attach_body_checks_payload_hash() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        let txs = vec![Transaction::zeroed(0, 0, 128)];
        let (signed, block) = make_block(&chain, NodeId(0), txs, &crypto);
        chain.append(signed, None);
        assert!(chain.get(Round(0)).unwrap().body.is_none());
        assert_eq!(chain.missing_bodies(), vec![Round(0)]);

        // Mismatching body is rejected.
        let (_, other) = make_block(
            &chain,
            NodeId(1),
            vec![Transaction::zeroed(9, 9, 4)],
            &crypto,
        );
        assert!(!chain.attach_body(Round(0), other));

        assert!(chain.attach_body(Round(0), block));
        assert!(chain.get(Round(0)).unwrap().body.is_some());
        assert!(chain.missing_bodies().is_empty());
        assert!(!chain.attach_body(
            Round(5),
            Block::new(
                BlockHeader::new(
                    Round(5),
                    WorkerId(0),
                    NodeId(0),
                    GENESIS_HASH,
                    GENESIS_HASH,
                    0,
                    0
                ),
                vec![],
            )
        ));
    }

    #[test]
    fn version_roundtrip_validates_and_adopts() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        grow(&mut chain, &crypto, 8, 4);

        // A peer's chain that is one block longer.
        let mut longer = chain.clone();
        let (signed, _) = make_block(&longer, NodeId(0), vec![], &crypto);
        longer.append(signed, None);

        let base = Round(6);
        let version = longer.version_from(base);
        assert_eq!(version.len(), 3);
        chain.validate_version(base, &version, &crypto).unwrap();
        chain.adopt_version(base, version).unwrap();
        assert_eq!(chain.len(), 9);
        assert_eq!(chain.tip_hash(), longer.tip_hash());
        // Bodies of unchanged entries were preserved.
        assert!(chain.get(Round(6)).unwrap().body.is_some());
        // The newly adopted block has no body yet.
        assert!(chain.get(Round(8)).unwrap().body.is_none());
    }

    #[test]
    fn version_validation_rejects_forgeries() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        grow(&mut chain, &crypto, 8, 4);
        let base = Round(6);
        let good = chain.version_from(base);

        // Broken hash chain.
        let mut broken = good.clone();
        broken[1].header.parent = Hash([1u8; 32]);
        assert!(chain.validate_version(base, &broken, &crypto).is_err());

        // Wrong starting round.
        assert!(chain.validate_version(Round(5), &good, &crypto).is_err());

        // Bad signature.
        let mut bad_sig = good.clone();
        bad_sig[0].signature = fireledger_types::Signature::from(vec![1, 2, 3]);
        assert!(chain.validate_version(base, &bad_sig, &crypto).is_err());

        // Empty versions are always fine.
        assert!(chain.validate_version(base, &Vec::new(), &crypto).is_ok());
    }

    #[test]
    fn version_validation_enforces_distinct_proposers() {
        let crypto = crypto(4);
        let chain = Chain::new(ClusterConfig::new(4));
        // Build a forged version where the same proposer signs two consecutive
        // blocks (f = 1 → window of 2 must be distinct).
        let mut forged = Chain::new(ClusterConfig::new(4));
        for _ in 0..2 {
            let (signed, _) = make_block(&forged, NodeId(2), vec![], &crypto);
            forged.append(signed, None);
        }
        let version = forged.version_from(Round(0));
        let err = chain.validate_version(Round(0), &version, &crypto);
        assert!(matches!(err, Err(Error::InvalidVersion { .. })));
    }

    #[test]
    fn adoption_never_rewrites_definite_prefix() {
        let crypto = crypto(4);
        let mut chain = Chain::new(ClusterConfig::new(4));
        grow(&mut chain, &crypto, 10, 4);
        assert_eq!(chain.definite_len(), 8);
        let err = chain.adopt_version(Round(3), Vec::new());
        assert!(matches!(err, Err(Error::InvalidState(_))));
        // Adopting at the boundary is allowed.
        assert!(chain
            .adopt_version(Round(8), chain.version_from(Round(8)))
            .is_ok());
        assert_eq!(chain.len(), 10);
    }
}
