//! The transaction pool feeding a FireLedger worker.
//!
//! Clients submit transactions through the FLO client manager; the pool holds
//! them until the local node's proposing turn, batches up to β of them into a
//! block, and garbage-collects transactions once they appear in a definitely
//! decided block (regardless of which node proposed them).
//!
//! ## Sharded admission
//!
//! Admission is **sharded**: the pool stripes transactions across
//! [`SHARDS`] independently-locked shards keyed by a hash of the
//! transaction identity, and `submit` takes `&self`. Client threads (or a
//! runtime ingress stage) can therefore admit transactions concurrently
//! with each other *and* with batch assembly — a submit only touches its
//! own shard's lock, never a pool-wide one, so admission no longer
//! serializes against `take_batch`. Each accepted transaction is stamped
//! with a monotonically increasing ticket, and batch assembly merges the
//! shard queues in ticket order — so the pool still hands out batches in
//! global FIFO submission order, bit-identical to the pre-sharding pool for
//! any single-threaded caller (which is what keeps simulator runs
//! deterministic).
//!
//! The paper's evaluation saturates the system by letting every proposer fill
//! its block to the maximum size with randomly generated transactions (§7.2);
//! [`TxPool::take_batch`] supports that through the `fill` parameter.

use fireledger_types::{Bytes, FillOps, Transaction, TxOp};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of admission shards. Eight striped locks are plenty for the
/// client-thread counts the runtimes use while keeping the ticket-order
/// merge in `take_batch` cheap (one head peek per shard per drawn
/// transaction).
pub const SHARDS: usize = 8;

/// One admission shard: a FIFO of `(ticket, transaction)` plus the shard's
/// slice of the duplicate-suppression set.
#[derive(Debug, Default)]
struct Shard {
    queue: VecDeque<(u64, Transaction)>,
    known: HashSet<(u64, u64)>,
}

/// State owned by the (single) batch assembler: the synthetic-filler
/// generator. Guarded by its own lock, which doubles as the assembly lock
/// making concurrent `take_batch` calls safe (they serialize against each
/// other, never against `submit`).
#[derive(Debug)]
struct FillerState {
    /// Synthetic-filler sequence counter (for load-generation mode).
    seq: u64,
    client: u64,
    /// The shared zeroed payload filler transactions carry: all fillers of
    /// one σ are byte-identical, so under saturated load every filler is a
    /// reference bump instead of a fresh σ-byte allocation per transaction.
    payload: Option<Bytes>,
    /// When set, fillers carry deterministic executable ops (§12.1 payloads)
    /// instead of the shared zeroed payload — each one a pure function of
    /// `(client, seq)`, which keeps saturated blocks bit-identical across
    /// runtimes while actually exercising the execution state machine.
    ops: Option<FillOps>,
}

/// The deterministic executable-filler payload for filler identity
/// `(client, seq)` under `ops`.
///
/// Even sequences put a KV value (always applies — guarantees the state
/// root moves every block); odd sequences transfer between accounts.
/// `conflict_pct` of the ops land on a 4-entry hot key/account set so
/// blocks mix hot conflict components with disjoint singletons.
fn filler_op_payload(client: u64, seq: u64, ops: FillOps) -> Bytes {
    // SplitMix64-style finalizer over the filler identity: runtime-
    // independent, allocation-free, and well spread even though client ids
    // are nearly consecutive.
    let mut h = client ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    let hot = h % 100 < ops.conflict_pct as u64;
    let accounts = ops.accounts.max(1);
    let hot_set = 4u64.min(accounts);
    if seq.is_multiple_of(2) {
        // The disjoint keyspace is deliberately bounded: per-round state
        // roots cost O(state size), so an ever-growing state would make
        // saturated runs quadratic in run length.
        let key = if hot { h % hot_set } else { 64 + (h % 256) };
        TxOp::KvPut {
            key,
            value: Bytes::from(h.to_be_bytes().to_vec()),
        }
        .encode_payload()
    } else {
        let from = h % accounts;
        // Hot ops credit a top account (a shared conflict key); disjoint
        // ops self-transfer, touching nothing but their own account.
        let to = if hot {
            accounts - 1 - (h % hot_set)
        } else {
            from
        };
        TxOp::Transfer {
            from,
            to,
            amount: 1,
            nonce: h % 4,
        }
        .encode_payload()
    }
}

/// A sharded FIFO transaction pool with duplicate suppression.
#[derive(Debug)]
pub struct TxPool {
    shards: [Mutex<Shard>; SHARDS],
    /// Global submission ticket: defines the FIFO merge order across shards.
    ticket: AtomicU64,
    /// Pending transaction count (kept outside the shards so `len` — the
    /// FLO client manager's routing signal, read per transaction — is one
    /// atomic load instead of [`SHARDS`] lock acquisitions).
    pending: AtomicUsize,
    total_submitted: AtomicU64,
    total_included: AtomicU64,
    filler: Mutex<FillerState>,
}

/// The shard a transaction maps to: a Fibonacci-hash stripe of its
/// *client* identity.
///
/// Striping by client (rather than by the full `(client, seq)` id) is what
/// makes per-client FIFO structural under concurrent admission: one
/// client's stream lives in exactly one shard, so its submission order is
/// its queue order no matter how the assembler's cross-shard merge races
/// with in-flight submits. Cross-client order is exact whenever submission
/// is quiescent or single-threaded (the simulator's case — bit-identical to
/// the pre-sharding pool) and best-effort during races, where "arrival
/// order" is not observable to begin with.
fn shard_of(id: (u64, u64)) -> usize {
    const { assert!(SHARDS.is_power_of_two()) };
    let mixed = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // Take the stripe from the hash's top bits (Fibonacci hashing mixes
    // upward); the shift is derived from SHARDS so resizing the constant
    // keeps the full shard range in use.
    (mixed >> (64 - SHARDS.trailing_zeros())) as usize
}

impl TxPool {
    /// Creates an empty pool. `filler_client` namespaces the synthetic filler
    /// transactions generated by this node so they never collide with filler
    /// generated by other nodes.
    pub fn new(filler_client: u64) -> Self {
        TxPool {
            shards: Default::default(),
            ticket: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
            total_submitted: AtomicU64::new(0),
            total_included: AtomicU64::new(0),
            filler: Mutex::new(FillerState {
                seq: 0,
                client: filler_client,
                payload: None,
                ops: None,
            }),
        }
    }

    /// Builder-style switch to executable filler transactions (see
    /// [`FillOps`]): subsequent fill batches carry deterministic op
    /// payloads instead of zeroed ones.
    pub fn with_fill_ops(self, ops: Option<FillOps>) -> Self {
        self.filler.lock().expect("txpool filler").ops = ops;
        self
    }

    /// Number of pending transactions (a snapshot under concurrent use).
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// True when no transaction is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total client transactions ever submitted to this pool.
    pub fn total_submitted(&self) -> u64 {
        self.total_submitted.load(Ordering::Relaxed)
    }

    /// Total transactions this pool handed to block proposals.
    pub fn total_included(&self) -> u64 {
        self.total_included.load(Ordering::Relaxed)
    }

    /// Adds a client transaction; duplicates (same client and sequence) are
    /// ignored. Returns whether the transaction was accepted.
    ///
    /// Takes `&self` and locks only the transaction's own shard: concurrent
    /// submitters on different shards never contend, and none of them waits
    /// for an in-flight `take_batch`.
    pub fn submit(&self, tx: Transaction) -> bool {
        let id = tx.id();
        let mut shard = self.shards[shard_of(id)].lock().expect("txpool shard");
        if !shard.known.insert(id) {
            return false;
        }
        // The ticket is drawn under the shard lock, so within a shard the
        // queue is ticket-sorted (push order = ticket order); across shards
        // the assembler merges by ticket.
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        shard.queue.push_back((ticket, tx));
        // The pending increment must land before the shard lock drops: a
        // racing assembler may pop this transaction the instant the lock is
        // released, and its decrement on a not-yet-incremented counter
        // would wrap `len()` to the billions.
        self.pending.fetch_add(1, Ordering::AcqRel);
        drop(shard);
        self.total_submitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Pops the globally oldest pending transaction (minimum ticket across
    /// all shard heads), or `None` when the pool is drained.
    fn pop_oldest(&self) -> Option<Transaction> {
        loop {
            // Peek every shard head briefly; submits appending behind the
            // heads cannot change the minimum.
            let mut oldest: Option<(u64, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock().expect("txpool shard");
                if let Some((ticket, _)) = shard.queue.front() {
                    if oldest.is_none_or(|(best, _)| *ticket < best) {
                        oldest = Some((*ticket, i));
                    }
                }
            }
            let (ticket, i) = oldest?;
            let mut shard = self.shards[i].lock().expect("txpool shard");
            // The head can only have been taken by a racing assembler (the
            // filler lock prevents that) — re-check and retry to stay safe
            // regardless.
            match shard.queue.front() {
                Some((t, _)) if *t == ticket => {
                    let (_, tx) = shard.queue.pop_front().expect("head exists");
                    drop(shard);
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                    return Some(tx);
                }
                _ => continue,
            }
        }
    }

    /// Takes up to `batch_size` transactions for a new block proposal, in
    /// global FIFO submission order.
    ///
    /// When `fill` is true and fewer than `batch_size` real transactions are
    /// pending, the batch is padded with synthetic transactions of `tx_size`
    /// bytes — the paper's "intensive load" mode in which every block is full.
    pub fn take_batch(&self, batch_size: usize, tx_size: usize, fill: bool) -> Vec<Transaction> {
        // The filler lock is also the assembly lock: concurrent assemblers
        // serialize here, while submitters keep flowing into the shards.
        let mut filler = self.filler.lock().expect("txpool filler");
        let mut batch = Vec::with_capacity(batch_size);
        while batch.len() < batch_size {
            match self.pop_oldest() {
                Some(tx) => batch.push(tx),
                None => break,
            }
        }
        if fill && batch.len() < batch_size {
            if let Some(ops) = filler.ops {
                while batch.len() < batch_size {
                    let payload = filler_op_payload(filler.client, filler.seq, ops);
                    let tx = Transaction::new(filler.client, filler.seq, payload);
                    filler.seq += 1;
                    batch.push(tx);
                }
            } else {
                let payload = match &filler.payload {
                    Some(p) if p.len() == tx_size => p.clone(),
                    _ => {
                        let p = Bytes::from(vec![0u8; tx_size]);
                        filler.payload = Some(p.clone());
                        p
                    }
                };
                while batch.len() < batch_size {
                    let tx = Transaction::new(filler.client, filler.seq, payload.clone());
                    filler.seq += 1;
                    batch.push(tx);
                }
            }
        }
        self.total_included
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        batch
    }

    /// Removes transactions that were just decided in somebody's block, so the
    /// local node does not re-propose them.
    pub fn remove_included<'a>(&self, txs: impl IntoIterator<Item = &'a Transaction>) {
        // Group the decided ids by shard so each shard is locked once.
        let mut by_shard: [Vec<(u64, u64)>; SHARDS] = Default::default();
        let mut any = false;
        for tx in txs {
            by_shard[shard_of(tx.id())].push(tx.id());
            any = true;
        }
        if !any {
            return;
        }
        let mut removed = 0usize;
        for (shard, ids) in self.shards.iter().zip(&by_shard) {
            if ids.is_empty() {
                continue;
            }
            let mut shard = shard.lock().expect("txpool shard");
            let ids: HashSet<(u64, u64)> = ids.iter().copied().collect();
            let before = shard.queue.len();
            shard.queue.retain(|(_, t)| !ids.contains(&t.id()));
            removed += before - shard.queue.len();
            // Keep `known` so late duplicates of decided transactions stay
            // rejected.
            shard.known.extend(ids);
        }
        if removed > 0 {
            self.pending.fetch_sub(removed, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_take_in_fifo_order() {
        let pool = TxPool::new(99);
        for i in 0..5 {
            assert!(pool.submit(Transaction::zeroed(1, i, 16)));
        }
        assert_eq!(pool.len(), 5);
        let batch = pool.take_batch(3, 16, false);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].seq, 0);
        assert_eq!(batch[2].seq, 2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.total_included(), 3);
    }

    #[test]
    fn fifo_order_spans_shards() {
        // Interleave many clients so consecutive submissions land on
        // different shards; the ticket merge must still return global
        // submission order.
        let pool = TxPool::new(1_000);
        let mut expected = Vec::new();
        for i in 0..64u64 {
            let tx = Transaction::zeroed(i % 7, i / 7, 8);
            expected.push(tx.id());
            assert!(pool.submit(tx));
        }
        let batch = pool.take_batch(64, 8, false);
        let got: Vec<(u64, u64)> = batch.iter().map(|t| t.id()).collect();
        assert_eq!(got, expected, "ticket merge broke FIFO order");
    }

    #[test]
    fn duplicates_are_rejected() {
        let pool = TxPool::new(99);
        assert!(pool.submit(Transaction::zeroed(1, 7, 16)));
        assert!(!pool.submit(Transaction::zeroed(1, 7, 16)));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_submitted(), 1);
    }

    #[test]
    fn fill_mode_pads_to_batch_size() {
        let pool = TxPool::new(5);
        pool.submit(Transaction::zeroed(1, 0, 512));
        let batch = pool.take_batch(10, 512, true);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|t| t.payload_len() == 512));
        // Real transaction first, filler after.
        assert_eq!(batch[0].client, 1);
        assert_eq!(batch[1].client, 5);
        // Filler sequence numbers are unique across batches.
        let batch2 = pool.take_batch(5, 512, true);
        let all_ids: HashSet<_> = batch.iter().chain(batch2.iter()).map(|t| t.id()).collect();
        assert_eq!(all_ids.len(), 15);
    }

    #[test]
    fn ops_filler_emits_deterministic_executable_payloads() {
        use fireledger_types::DecodedOp;
        let ops = FillOps {
            accounts: 32,
            conflict_pct: 50,
        };
        let take = || {
            TxPool::new(77)
                .with_fill_ops(Some(ops))
                .take_batch(64, 512, true)
        };
        let batch = take();
        assert_eq!(batch.len(), 64);
        // Every filler decodes to a real op — never opaque, never malformed.
        let mut hot = 0;
        let mut disjoint = 0;
        for tx in &batch {
            match TxOp::classify_payload(&tx.payload) {
                DecodedOp::Op(TxOp::KvPut { key, .. }) => {
                    if key < 4 {
                        hot += 1;
                    } else {
                        disjoint += 1;
                    }
                }
                DecodedOp::Op(TxOp::Transfer { from, to, .. }) => {
                    assert!(from < 32 && to < 32);
                    if to == from {
                        disjoint += 1;
                    } else {
                        hot += 1;
                    }
                }
                other => panic!("filler generated a non-executable payload: {other:?}"),
            }
        }
        // The 50% conflict knob produces both kinds.
        assert!(hot > 0 && disjoint > 0, "hot {hot} disjoint {disjoint}");
        // Pure function of (client, seq): a second pool emits the same bytes.
        assert_eq!(batch, take());
        // A different filler client emits different payload streams.
        let other = TxPool::new(78)
            .with_fill_ops(Some(ops))
            .take_batch(64, 512, true);
        assert!(batch
            .iter()
            .zip(&other)
            .any(|(a, b)| a.payload != b.payload));
    }

    #[test]
    fn without_fill_empty_pool_yields_empty_batch() {
        let pool = TxPool::new(1);
        assert!(pool.take_batch(100, 512, false).is_empty());
    }

    #[test]
    fn remove_included_drops_decided_and_blocks_resubmission() {
        let pool = TxPool::new(9);
        for i in 0..4 {
            pool.submit(Transaction::zeroed(1, i, 8));
        }
        let decided = [Transaction::zeroed(1, 1, 8), Transaction::zeroed(1, 3, 8)];
        pool.remove_included(decided.iter());
        assert_eq!(pool.len(), 2);
        // A duplicate of a decided transaction is rejected even though it was
        // never in this pool's queue at removal time.
        assert!(!pool.submit(Transaction::zeroed(1, 3, 8)));
        // Unrelated transactions still flow.
        assert!(pool.submit(Transaction::zeroed(2, 0, 8)));
    }

    #[test]
    fn remove_included_with_empty_iterator_is_noop() {
        let pool = TxPool::new(9);
        pool.submit(Transaction::zeroed(1, 0, 8));
        pool.remove_included(std::iter::empty());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn concurrent_submitters_do_not_serialize_against_assembly() {
        // The sharded-admission contract: many submitter threads push
        // disjoint transactions while the assembler drains batches the
        // whole time. Nothing may be lost, duplicated, or reordered within
        // one submitter's stream.
        use std::sync::Arc;
        let pool = Arc::new(TxPool::new(42));
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 500;
        let mut handles = Vec::new();
        for client in 0..WRITERS {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..PER_WRITER {
                    assert!(pool.submit(Transaction::zeroed(client, seq, 8)));
                }
            }));
        }
        // Drain concurrently with the submitters.
        let mut drained: Vec<Transaction> = Vec::new();
        while drained.len() < (WRITERS * PER_WRITER) as usize {
            drained.extend(pool.take_batch(64, 8, false));
        }
        for h in handles {
            h.join().expect("submitter panicked");
        }
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.total_submitted(), WRITERS * PER_WRITER);
        // No loss, no duplication.
        let ids: HashSet<(u64, u64)> = drained.iter().map(|t| t.id()).collect();
        assert_eq!(ids.len(), drained.len(), "duplicated transaction");
        assert_eq!(ids.len(), (WRITERS * PER_WRITER) as usize);
        // Per-submitter FIFO: each client's sequence numbers appear in
        // submission order (global tickets respect each shard's push order).
        for client in 0..WRITERS {
            let seqs: Vec<u64> = drained
                .iter()
                .filter(|t| t.client == client)
                .map(|t| t.seq)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "client {client} reordered");
        }
    }
}
