//! # FireLedger
//!
//! A from-scratch Rust implementation of **FireLedger**, the high-throughput
//! optimistic permissioned blockchain consensus protocol of Buchnik &
//! Friedman (VLDB 2020), together with **FLO**, the multi-worker orchestrator
//! the paper evaluates.
//!
//! FireLedger trades latency for throughput: the last `f + 1` blocks of every
//! node's chain are *tentative* and may still be rescinded if one of their
//! proposers turns out to be Byzantine, but in the optimistic case — correct
//! proposer, timely network — a new block is decided in **every communication
//! step**, with the proposer sending its block and every other node sending a
//! single bit. The protocol implements the `BBFC(f+1)` abstraction defined in
//! the paper (§3.3).
//!
//! ## Crate layout
//!
//! * [`worker`] — one FireLedger instance (Algorithm 2) with the recovery
//!   procedure (Algorithm 3), block/header separation, the adaptive timeout
//!   and the benign failure detector of §6.1.1;
//! * [`flo`] — the FLO node: ω workers, a client manager and the round-robin
//!   delivery merge of §6.2;
//! * [`chain`], [`txpool`], [`validity`], [`timer`], [`fd`], [`proposer`] —
//!   the building blocks;
//! * [`sync`] — the state-sync synchronizer: late-join / catch-up block
//!   fetch over the definite prefix;
//! * [`messages`] — the wire protocol;
//! * [`byzantine`] — scripted Byzantine node variants used by the evaluation.
//!
//! This crate holds *protocol semantics only*: every type here is a sans-IO
//! state machine implementing [`fireledger_types::Protocol`]. Assembling a
//! cluster, choosing a topology and workload, and driving the nodes on a
//! runtime (deterministic simulator or real threads) is the job of the
//! `fireledger-runtime` facade crate — experiments, examples and tests all go
//! through its `ClusterBuilder` / `Scenario` / `Runtime` surface.
//!
//! ## Quick start
//!
//! ```
//! use fireledger_runtime::prelude::*;
//! use std::time::Duration;
//!
//! // A 4-node FLO cluster, one worker each, 10-transaction blocks ...
//! let params = ProtocolParams::new(4).with_batch_size(10).with_tx_size(256);
//! let cluster = ClusterBuilder::<FloCluster>::new(params).with_seed(42);
//!
//! // ... driven for one simulated second on the single-DC network model.
//! let scenario = Scenario::new("quickstart")
//!     .single_dc()
//!     .run_for(Duration::from_secs(1));
//! let report = Simulator.run(&cluster, &scenario).unwrap();
//!
//! // Every node delivered the same totally-ordered prefix of full blocks.
//! assert!(report.tps > 0.0);
//! assert!(report.per_node.iter().all(|n| n.blocks > 0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod byzantine;
pub mod chain;
pub mod fd;
pub mod flo;
pub mod messages;
pub mod proposer;
pub mod sync;
pub mod timer;
pub mod txpool;
pub mod validity;
pub mod worker;

pub use admission::{AdmissionConfig, Availability, IngressGate, IngressStats, LaneStats};
pub use byzantine::{ClusterNode, EquivocatingNode, SilentProposerNode};
pub use chain::{Chain, ChainEntry, Version};
pub use fd::FailureDetector;
pub use flo::FloNode;
pub use messages::{ConsensusValue, FloMsg, PanicProof, WorkerMsg};
pub use proposer::{ProposerChoice, ProposerRotation};
pub use sync::{SyncPhase, SyncStep, Synchronizer};
pub use timer::EmaTimer;
pub use txpool::TxPool;
pub use validity::{AcceptAll, PredicateFn, SharedValidity, StructuralLimits, ValidityPredicate};
pub use worker::Worker;

/// Commonly used types, re-exported for `use fireledger::prelude::*`.
pub mod prelude {
    pub use crate::{AcceptAll, ClusterNode, FloNode, ValidityPredicate, Worker};
    pub use fireledger_types::{
        Block, BlockHeader, ClusterConfig, Delivery, NodeId, ProtocolParams, Round, SignedHeader,
        Transaction, WorkerId,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::{SharedCrypto, SimKeyStore};
    use fireledger_sim::{SimConfig, Simulation};
    use fireledger_types::{NodeId, ProtocolParams};
    use std::sync::Arc;
    use std::time::Duration;

    fn cluster(params: &ProtocolParams, seed: u64) -> Vec<FloNode> {
        let crypto: SharedCrypto = SimKeyStore::generate(params.n(), seed).shared();
        (0..params.n())
            .map(|i| {
                FloNode::new(
                    NodeId(i as u32),
                    params.clone(),
                    crypto.clone(),
                    Arc::new(AcceptAll),
                )
            })
            .collect()
    }

    #[test]
    fn flo_nodes_share_one_key_directory() {
        let params = ProtocolParams::new(7).with_workers(2);
        let nodes = cluster(&params, 1);
        assert_eq!(nodes.len(), 7);
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.node(), NodeId(i as u32));
            assert_eq!(node.worker_count(), 2);
        }
    }

    #[test]
    fn minimal_cluster_decides_blocks() {
        let params = ProtocolParams::new(4)
            .with_batch_size(10)
            .with_tx_size(256)
            .with_base_timeout(Duration::from_millis(20));
        let nodes = cluster(&params, 42);
        let mut sim = Simulation::new(SimConfig::ideal(), nodes);
        sim.run_for(Duration::from_millis(500));
        assert!(!sim.deliveries(NodeId(0)).is_empty());
    }
}
