//! One FireLedger worker: the round-based optimistic blockchain protocol of
//! Algorithm 2, with the recovery procedure of Algorithm 3.
//!
//! A worker is a full [`Protocol`] state machine, so it can be simulated or
//! run on threads on its own; a FLO node (see [`crate::flo`]) simply runs ω of
//! them side by side.
//!
//! ## How a round works (optimistic case, Figure 1)
//!
//! * The round's proposer assembles a block from its transaction pool,
//!   disseminates the **body** on the data path, and its **signed header** on
//!   the consensus path. In steady state the header rides piggybacked on the
//!   proposer's single-bit vote for the previous round, so no extra message is
//!   needed; after a failed attempt (`full_mode`) it is pushed explicitly.
//! * Every node validates the header (signature, parent hash, body present,
//!   external validity) and broadcasts a single-bit vote. Seeing `n − f`
//!   votes that are all "deliver" is a **fast decision**: the block is
//!   appended tentatively, and the block `f + 1` rounds back becomes
//!   definite.
//! * If votes are mixed or the proposer timed out, the worker falls back to
//!   its BFT consensus layer (a PBFT instance standing in for BFT-SMaRt,
//!   exactly as in Figure 3): every node submits its vote plus evidence, and
//!   the first `n − f` ordered fallback votes determine the outcome (deliver
//!   iff any of them carries the proposer's signed header). A negative outcome
//!   rotates the proposer and retries the round.
//! * If a decided header does **not** extend the local chain — the signature
//!   is fine but the parent hash disagrees, the signature of an equivocating
//!   proposer — the worker reliably-broadcasts a [`PanicProof`] and runs the
//!   recovery procedure: every node submits its last `f + 1` blocks through
//!   the consensus layer, the first `n − f` valid versions are collected, the
//!   longest (first-received among the longest) is adopted, and normal
//!   operation resumes. Definite blocks are never rewritten.

use crate::chain::{Chain, Version};
use crate::fd::FailureDetector;
use crate::messages::{ConsensusValue, PanicProof, WorkerMsg};
use crate::proposer::ProposerRotation;
use crate::sync::{ReplyGate, SyncStep, Synchronizer, TIMER_SYNC};
use crate::timer::EmaTimer;
use crate::txpool::TxPool;
use crate::validity::{structurally_consistent, SharedValidity};
use fireledger_bft::{Pbft, PbftConfig, ReliableBroadcast};
use fireledger_crypto::{hash_header, verify_header_cached, CryptoPool, SharedCrypto};
use fireledger_exec::{prefix_for_header, root_lag, ClaimCheck, ExecShared};
use fireledger_types::runtime::CpuCharge;
use fireledger_types::{
    Block, BlockHeader, Delivery, Hash, NodeId, Observation, Outbox, Protocol, ProtocolParams,
    Round, SignedHeader, SyncMsg, TimerId, Transaction, WorkerId, MAX_SYNC_BODIES,
    MAX_SYNC_HEADERS,
};
use std::collections::{HashMap, HashSet};

/// One recorded fallback vote: `(voter, vote, evidence)`.
type FallbackVoteEntry = (NodeId, bool, Option<SignedHeader>);

/// Timer kind used for the per-round WRB delivery timeout.
const TIMER_ROUND: u8 = 1;
/// Timer kind handed to the embedded PBFT instance.
const TIMER_PBFT: u8 = 0xAB;

/// Votes arriving this many rounds ahead of the current attempt mean the
/// cluster has definitively moved on without us (a healed partition, a long
/// pause): trigger a state-sync fetch instead of waiting for normal traffic
/// to replay the gap.
const SYNC_LAG_THRESHOLD: u64 = 8;

/// Vote bookkeeping for one `(round, proposer)` attempt.
#[derive(Debug, Default)]
struct AttemptVotes {
    votes: HashMap<NodeId, bool>,
}

/// State of an ongoing recovery procedure (Algorithm 3).
#[derive(Debug)]
struct RecoveryState {
    /// The round the recovery was invoked for.
    round: Round,
    /// First round covered by exchanged versions (`round − (f+1)`).
    base: Round,
    /// Valid versions in atomic-broadcast order: (submitter, version).
    versions: Vec<(NodeId, Version)>,
    contributors: HashSet<NodeId>,
}

/// One FireLedger worker instance.
pub struct Worker {
    me: NodeId,
    worker_id: WorkerId,
    params: ProtocolParams,
    crypto: SharedCrypto,
    /// Batch/parallel crypto executor. Defaults to a fully inline pool
    /// (bit-identical to direct calls); realtime runtimes widen it through
    /// [`Worker::set_crypto_pool`].
    pool: CryptoPool,
    /// True when a runtime ingress stage has already verified inbound
    /// bodies against their announced payload hash (see
    /// [`Worker::set_preverified_ingress`]); lets the loop skip re-hashing
    /// them.
    preverified_ingress: bool,
    validity: SharedValidity,

    chain: Chain,
    txpool: TxPool,
    rotation: ProposerRotation,
    timer: EmaTimer,
    fd: FailureDetector,

    // Current attempt.
    round: Round,
    proposer: NodeId,
    voted: bool,
    full_mode: bool,

    // Sub-protocols.
    pbft: Pbft<ConsensusValue>,
    rb: ReliableBroadcast<PanicProof>,

    // Knowledge gathered from the network.
    headers: HashMap<(Round, NodeId), SignedHeader>,
    bodies: HashMap<Hash, Vec<Transaction>>,
    /// Payload hashes whose body has been structurally validated (and its
    /// hashing cost charged) already.
    validated_bodies: HashSet<Hash>,
    /// Computed merkle root per stored body, keyed by the hash the body was
    /// announced under. `bodies` inserts are first-wins, so each entry is
    /// hashed once; every re-evaluation of the vote condition reads the
    /// digest instead of re-hashing β transactions.
    body_roots: HashMap<Hash, Hash>,
    /// Scratch for merkle leaf digests, reused across blocks so steady-state
    /// payload hashing allocates nothing.
    leaf_scratch: Vec<Hash>,
    votes: HashMap<(Round, NodeId), AttemptVotes>,
    fallback_votes: HashMap<(Round, NodeId), Vec<FallbackVoteEntry>>,
    fallback_submitted: HashSet<(Round, NodeId)>,
    attempt_resolved: HashSet<(Round, NodeId)>,
    /// Attempt decided "deliver" but still missing the header or the body.
    pending_finish: Option<(Round, NodeId)>,
    requested_headers: HashSet<(Round, NodeId)>,
    requested_bodies: HashSet<Hash>,

    /// Rounds of our own proposals whose header was already disseminated
    /// (either pushed or piggybacked).
    my_header_sent: HashSet<Round>,

    recovery: Option<RecoveryState>,
    recoveries_started: HashSet<Round>,

    /// The state-sync (catch-up) machine. While it is active the worker
    /// pauses normal attempt progress, exactly like during recovery.
    sync: Synchronizer,
    /// Set by [`Worker::begin_sync`] before the protocol starts; honored on
    /// the first [`Protocol::on_start`].
    sync_wanted: bool,

    /// Next definite chain index still to be handed to the application.
    next_to_deliver: usize,

    /// Durable store for the consensus WAL, when the node was built with
    /// one. Votes are written here *before* they are broadcast.
    store: Option<std::sync::Arc<fireledger_store::NodeStore>>,
    /// The pipelined execution engine for this worker's delivery stream,
    /// when the cluster runs with execution enabled (see
    /// [`Worker::set_exec`]). `None` — the default — keeps the worker a
    /// pure ordering machine and its headers free of execution roots.
    exec: Option<ExecShared>,
    /// Votes replayed from the WAL after a restart, keyed by attempt: a
    /// restarted worker re-casts exactly the vote its pre-kill self already
    /// sent for an attempt, so a kill-restart can never equivocate.
    persisted_votes: HashMap<(Round, NodeId), bool>,
    /// Header hashes locked by a persisted *true* vote: re-affirming such a
    /// vote additionally requires the header now in view to carry the same
    /// hash the pre-kill vote endorsed.
    locked: HashMap<Round, Hash>,
}

impl Worker {
    /// Creates worker `worker_id` of node `me`.
    pub fn new(
        me: NodeId,
        worker_id: WorkerId,
        params: ProtocolParams,
        crypto: SharedCrypto,
        validity: SharedValidity,
    ) -> Self {
        let cluster = params.cluster;
        let pbft_cfg = PbftConfig::new(cluster)
            .with_timeout((params.base_timeout * 10).max(std::time::Duration::from_millis(200)))
            .with_timer_kind(TIMER_PBFT);
        let rotation = ProposerRotation::new(cluster);
        let proposer = rotation.initial();
        Worker {
            me,
            pool: CryptoPool::inline(crypto.clone()),
            preverified_ingress: false,
            worker_id,
            timer: EmaTimer::new(params.base_timeout, params.max_timeout, params.ema_window),
            fd: FailureDetector::new(
                cluster.f,
                params.base_timeout * params.fd_suspect_threshold,
                params.failure_detector,
            ),
            chain: Chain::new(cluster),
            txpool: TxPool::new(1_000_000 + me.0 as u64 * 1_000 + worker_id.0 as u64)
                .with_fill_ops(params.fill_ops),
            rotation,
            round: Round(0),
            proposer,
            voted: false,
            full_mode: true,
            pbft: Pbft::new(me, pbft_cfg),
            rb: ReliableBroadcast::new(me, cluster),
            headers: HashMap::new(),
            bodies: HashMap::new(),
            validated_bodies: HashSet::new(),
            body_roots: HashMap::new(),
            leaf_scratch: Vec::new(),
            votes: HashMap::new(),
            fallback_votes: HashMap::new(),
            fallback_submitted: HashSet::new(),
            attempt_resolved: HashSet::new(),
            pending_finish: None,
            requested_headers: HashSet::new(),
            requested_bodies: HashSet::new(),
            my_header_sent: HashSet::new(),
            recovery: None,
            recoveries_started: HashSet::new(),
            sync: Synchronizer::new(me, cluster.n, params.base_timeout * 2),
            sync_wanted: false,
            next_to_deliver: 0,
            store: None,
            exec: None,
            persisted_votes: HashMap::new(),
            locked: HashMap::new(),
            params,
            crypto,
            validity,
        }
    }

    // ------------------------------------------------------------------
    // Accessors (used by FLO, tests and the benchmark harness)
    // ------------------------------------------------------------------

    /// This worker's instance id.
    pub fn worker_id(&self) -> WorkerId {
        self.worker_id
    }

    /// The node this worker runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The local chain.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current proposer.
    pub fn current_proposer(&self) -> NodeId {
        self.proposer
    }

    /// Whether the worker is inside the recovery procedure.
    pub fn is_recovering(&self) -> bool {
        self.recovery.is_some()
    }

    /// Whether a state-sync (catch-up) fetch is in progress.
    pub fn is_syncing(&self) -> bool {
        self.sync.is_active()
    }

    /// Total rounds this worker has caught up through state-sync fetches.
    pub fn sync_rounds_fetched(&self) -> u64 {
        self.sync.rounds_fetched()
    }

    /// Requests a state-sync cycle on the worker's next start: probe the
    /// cluster's definite tips and range-fetch any gap before joining normal
    /// consensus. Used by a node restored from disk (its WAL tip may be far
    /// behind) and by late-joining nodes. A worker that turns out *not* to be
    /// behind resumes immediately.
    pub fn begin_sync(&mut self) {
        self.sync_wanted = true;
    }

    /// Overrides the synchronizer's request batch sizes (clamped to the wire
    /// caps; tests use this to exercise arbitrary range-split schedules).
    pub fn set_sync_batches(&mut self, headers: usize, bodies: usize) {
        self.sync.set_batches(headers, bodies);
    }

    /// Number of pending transactions in the pool (FLO's least-loaded worker
    /// routing uses this).
    pub fn pool_len(&self) -> usize {
        self.txpool.len()
    }

    /// Submits a transaction directly to this worker's pool.
    pub fn submit_transaction(&mut self, tx: Transaction) -> bool {
        self.txpool.submit(tx)
    }

    /// Installs a (typically wider) crypto pool: block-body merkle roots
    /// and the batchable verification paths (recovery versions, panic
    /// proofs) run through it. The default inline pool makes this a no-op
    /// performance-wise; results never depend on the pool's width.
    pub fn set_crypto_pool(&mut self, pool: CryptoPool) {
        self.pool = pool;
    }

    /// Declares that this worker's inbound messages pass a runtime
    /// pre-verification stage that (a) verifies header signatures, seeding
    /// their [`fireledger_types::SigMemo`], and (b) checks every
    /// `BlockData`/`PullBlockReply` body's merkle root against the hash it
    /// is announced under, dropping mismatches.
    ///
    /// With the flag set the worker records an arriving body's announced
    /// hash as its verified root instead of re-hashing β transactions on
    /// the consensus loop — the pipelining that keeps FLO's critical path
    /// crypto-free at the runtime layer. Never set in simulations (the
    /// simulator has no ingress stage), so simulated runs are untouched.
    pub fn set_preverified_ingress(&mut self, on: bool) {
        self.preverified_ingress = on;
    }

    // ------------------------------------------------------------------
    // Durable store (consensus WAL + restart-from-disk recovery)
    // ------------------------------------------------------------------

    /// Attaches the node's durable store: from now on every round entry and
    /// every cast vote is appended to the consensus WAL (votes strictly
    /// before their broadcast leaves the outbox). A store append failure —
    /// disk full, dead volume — flags the store failed and the worker keeps
    /// running in memory; durability degrades, consensus does not.
    pub fn set_store(&mut self, store: std::sync::Arc<fireledger_store::NodeStore>) {
        self.store = Some(store);
    }

    /// Attaches the pipelined execution engine to this worker's delivery
    /// stream: every block delivered from now on is enqueued for execution
    /// behind the commit frontier, the worker's own headers carry the lagged
    /// execution root (see [`fireledger_exec::root_lag`]), and delivered
    /// headers' claimed roots are cross-checked against local execution
    /// (a mismatch surfaces as [`Observation::ExecRootMismatch`]).
    ///
    /// Any definite prefix already restored from disk is fed to the executor
    /// first, so call order against [`Worker::restore_definite_block`] does
    /// not matter — the executor ignores rounds it has already consumed.
    pub fn set_exec(&mut self, exec: ExecShared) {
        for idx in 0..self.next_to_deliver {
            if let Some(entry) = self.chain.get(Round(idx as u64)) {
                if let Some(body) = &entry.body {
                    exec.enqueue(idx as u64, body);
                }
            }
        }
        self.exec = Some(exec);
    }

    /// The attached execution engine, when [`Worker::set_exec`] installed
    /// one (tests and the report harness read stats through it).
    pub fn exec(&self) -> Option<&ExecShared> {
        self.exec.as_ref()
    }

    /// The execution-root lag of this cluster: header `k` carries the root
    /// of the executed prefix through round `k − (f+3)`.
    fn exec_lag(&self) -> u64 {
        root_lag(self.params.f() as u32)
    }

    /// Appends one WAL entry, swallowing (but not hiding — the store flags
    /// itself failed) storage errors.
    fn wal_append(&self, rec: &fireledger_types::WalRecord) {
        if let Some(store) = &self.store {
            let _ = store.append_wal(rec.kind(), rec.encode_payload());
        }
    }

    /// Replays one persisted block during restart-from-disk recovery:
    /// appends it to the chain definite (see [`Chain::restore_definite`])
    /// and refreshes the rotation bookkeeping, exactly as the original
    /// decision did.
    pub fn restore_definite_block(&mut self, signed: SignedHeader, block: Block) {
        if let Some(exec) = &self.exec {
            // Re-feed the recovered prefix to the executor in order; rounds
            // it already consumed are ignored.
            exec.enqueue(signed.round().0, &block);
        }
        self.rotation
            .record_decided(signed.proposer(), signed.round());
        self.chain.restore_definite(signed, Some(block));
    }

    /// Replays one consensus-WAL entry during restart-from-disk recovery.
    pub fn restore_wal(&mut self, rec: &fireledger_types::WalRecord) {
        match rec {
            // Round entries are a monotone progress marker (diagnostics and
            // future state transfer); replay does not jump rounds on their
            // word — only decided blocks advance the chain.
            fireledger_types::WalRecord::Round { .. } => {}
            fireledger_types::WalRecord::Vote {
                round,
                proposer,
                vote,
                ..
            } => {
                self.persisted_votes.insert((*round, *proposer), *vote);
            }
            fireledger_types::WalRecord::Locked {
                round, header_hash, ..
            } => {
                self.locked.insert(*round, *header_hash);
            }
        }
    }

    /// Finishes restart-from-disk recovery after every persisted block and
    /// WAL entry has been replayed: the worker resumes at the round after
    /// its definite prefix, in full (explicit-header) mode, with nothing
    /// left to re-deliver — the orchestrator replays the delivery stream
    /// itself.
    pub fn finish_restore(&mut self) {
        self.round = self.chain.next_round();
        self.full_mode = true;
        self.next_to_deliver = self.chain.definite_len();
    }

    // ------------------------------------------------------------------
    // Round machinery
    // ------------------------------------------------------------------

    fn round_timer_id(&self) -> TimerId {
        TimerId::compose(TIMER_ROUND, self.round.0)
    }

    fn quorum(&self) -> usize {
        self.params.quorum()
    }

    fn begin_attempt(&mut self, candidate: NodeId, out: &mut Outbox<WorkerMsg>) {
        let choice = self.rotation.select(candidate, self.round);
        if self
            .rotation
            .skip_touches_recent_proposers(&choice.skipped, self.round)
        {
            // §6.1.1: invalidate the suspected list whenever the skip rule
            // bypasses one of the last f proposers.
            self.fd.invalidate();
        }
        self.proposer = choice.proposer;
        self.voted = false;
        if self.store.is_some() {
            self.wal_append(&fireledger_types::WalRecord::Round {
                worker: self.worker_id,
                round: self.round,
                proposer: self.proposer,
            });
        }

        // If we are this round's proposer and our header is not out yet
        // (no piggyback opportunity existed), push it now.
        if self.proposer == self.me && !self.my_header_sent.contains(&self.round) {
            self.propose_own_block(out);
        }

        // The proposer's header may already be known (piggybacked earlier).
        self.maybe_vote(out);

        if !self.voted {
            if self.fd.is_suspected(self.proposer) {
                // Benign FD: do not wait for a suspected node.
                self.cast_vote(false, out);
            } else {
                out.set_timer(self.round_timer_id(), self.timer.current());
            }
        }
        self.check_current_attempt(out);
    }

    /// Assembles, signs and disseminates this node's block for the current
    /// round (the `full_mode` / explicit path).
    fn propose_own_block(&mut self, out: &mut Outbox<WorkerMsg>) {
        let Some(signed) = self.build_own_header(self.round, self.chain.tip_hash(), out) else {
            // Execution root not available yet (transient, e.g. mid
            // state-sync): skip this proposal rather than sign a header we
            // cannot stamp. The round resolves by timeout and the rotation
            // preserves liveness.
            return;
        };
        out.broadcast(WorkerMsg::Header {
            header: signed.clone(),
        });
        out.observe(Observation::HeaderProposed {
            worker: self.worker_id,
            round: self.round,
        });
        self.my_header_sent.insert(self.round);
        self.headers.insert((self.round, self.me), signed);
    }

    /// Builds (and signs) our header for `round` on top of `parent`, also
    /// broadcasting the block body on the data path. Reuses nothing: each call
    /// produces a fresh batch from the pool.
    ///
    /// Returns `None` — without consuming any transactions — when execution
    /// is enabled but the lagged root for `round` is not locally available
    /// yet, so the caller skips the proposal instead of signing an
    /// unstampable header.
    fn build_own_header(
        &mut self,
        round: Round,
        parent: Hash,
        out: &mut Outbox<WorkerMsg>,
    ) -> Option<SignedHeader> {
        // Execution root for the header (WIRE_FORMAT.md §12): the canonical
        // state root of the executed prefix through round `k − (f+3)`, the
        // newest round guaranteed definite when a header for round `k` is
        // built. Resolved before the batch is taken so a skipped proposal
        // loses nothing.
        let exec_root = match &self.exec {
            None => None,
            Some(exec) => Some(exec.prefix_root(prefix_for_header(round.0, self.exec_lag()))?),
        };
        let txs = self.txpool.take_batch(
            self.params.batch_size,
            self.params.tx_size,
            self.params.fill_blocks,
        );
        let payload_hash = self.pool.merkle_root_par(&txs, &mut self.leaf_scratch);
        self.body_roots.insert(payload_hash, payload_hash);
        let payload_bytes: u64 = txs.iter().map(|t| t.payload.len() as u64).sum();
        let mut header = BlockHeader::new(
            round,
            self.worker_id,
            self.me,
            parent,
            payload_hash,
            txs.len() as u32,
            payload_bytes,
        );
        if let Some(root) = exec_root {
            // Stamped strictly before signing: the root is part of the
            // canonical (signed) header bytes.
            header = header.with_exec_root(root);
        }
        let signature = self.crypto.sign(self.me, &header.canonical_bytes());
        // Signing a block = hashing its payload + one ECDSA signature (§7.1).
        out.cpu(CpuCharge::sign(payload_bytes));
        out.observe(Observation::BlockProposed {
            worker: self.worker_id,
            round,
            tx_count: txs.len() as u32,
            payload_bytes,
        });
        // Data path: ship the body immediately.
        out.broadcast(WorkerMsg::BlockData {
            payload_hash,
            txs: txs.clone(),
        });
        self.bodies.insert(payload_hash, txs);
        self.validated_bodies.insert(payload_hash);
        Some(SignedHeader::new(header, signature))
    }

    /// Returns the header of the current attempt if we have it and it is
    /// acceptable to vote for: correct proposer and round, valid signature
    /// (checked at reception), body present, chains from our tip, and passes
    /// the external validity predicate.
    fn votable_header(&mut self, out: &mut Outbox<WorkerMsg>) -> Option<SignedHeader> {
        let signed = self.headers.get(&(self.round, self.proposer))?.clone();
        let header = &signed.header;
        if header.parent != self.chain.tip_hash() {
            return None;
        }
        let txs = self.bodies.get(&header.payload_hash)?;
        // Hash the stored body at most once: the digest is keyed by the hash
        // the body was announced under (first body wins in `bodies`, so the
        // mapping never changes). Re-evaluating the vote condition after
        // every message used to re-hash all β transactions here.
        let known_root = *self
            .body_roots
            .entry(header.payload_hash)
            .or_insert_with(|| self.pool.merkle_root_par(txs, &mut self.leaf_scratch));
        let body = Block::new(header.clone(), txs.clone());
        // Seed the block's compute-once root cache with the stored digest so
        // the structural check (and any hashing application predicate) reads
        // it instead of recomputing.
        body.payload_root_cache().get_or_init(|| known_root);
        if !self.validated_bodies.contains(&header.payload_hash) {
            // Hashing the payload to check the merkle commitment.
            out.cpu(CpuCharge::hash(header.payload_bytes));
            self.validated_bodies.insert(header.payload_hash);
        }
        if !structurally_consistent(header, &body) {
            return None;
        }
        if !self.validity.is_valid(header, &body) {
            return None;
        }
        Some(signed)
    }

    fn maybe_vote(&mut self, out: &mut Outbox<WorkerMsg>) {
        if self.voted || self.recovery.is_some() || self.sync.is_active() {
            return;
        }
        if self.votable_header(out).is_some() {
            self.cast_vote(true, out);
        }
    }

    fn cast_vote(&mut self, vote: bool, out: &mut Outbox<WorkerMsg>) {
        if self.voted {
            return;
        }
        // A vote already persisted for this attempt (by our pre-kill self,
        // replayed from the WAL) binds us: re-cast the same value, and
        // re-affirm *true* only when the header now in view is the one the
        // persisted vote locked — anything else would be equivocation
        // against our own signed past.
        let vote = match self.persisted_votes.get(&(self.round, self.proposer)) {
            Some(&true) => match (
                self.locked.get(&self.round),
                self.headers.get(&(self.round, self.proposer)),
            ) {
                (Some(locked), Some(signed)) => hash_header(&signed.header) == *locked,
                (None, _) => true,
                _ => false,
            },
            Some(&false) => false,
            None => vote,
        };
        self.voted = true;
        out.cancel_timer(self.round_timer_id());

        // Piggyback our next block's header when we are the next proposer in
        // the rotation and the current attempt looks deliverable (Figure 1).
        let mut piggyback = None;
        if vote && self.rotation.successor(self.proposer) == self.me {
            let next_round = self.round.next();
            if !self.my_header_sent.contains(&next_round) {
                // Hash through the *stored* header so the memoized digest is
                // computed on (and cached by) the long-lived value.
                let parent = hash_header(
                    &self
                        .headers
                        .get(&(self.round, self.proposer))
                        .expect("voting 1 implies the header is known")
                        .header,
                );
                // A `None` here (execution root transiently unavailable)
                // simply forgoes the piggyback; the next round's explicit
                // propose path retries.
                if let Some(signed) = self.build_own_header(next_round, parent, out) {
                    out.observe(Observation::HeaderProposed {
                        worker: self.worker_id,
                        round: next_round,
                    });
                    self.my_header_sent.insert(next_round);
                    self.headers.insert((next_round, self.me), signed.clone());
                    piggyback = Some(signed);
                }
            }
        }

        // Persist before broadcast: once the vote is on the wire it must
        // survive a kill, or the restarted node could vote differently.
        if self.store.is_some() {
            self.wal_append(&fireledger_types::WalRecord::Vote {
                worker: self.worker_id,
                round: self.round,
                proposer: self.proposer,
                vote,
            });
            if vote {
                if let Some(signed) = self.headers.get(&(self.round, self.proposer)) {
                    let header_hash = hash_header(&signed.header);
                    self.wal_append(&fireledger_types::WalRecord::Locked {
                        worker: self.worker_id,
                        round: self.round,
                        header_hash,
                    });
                }
            }
        }
        out.broadcast(WorkerMsg::Vote {
            round: self.round,
            proposer: self.proposer,
            vote,
            piggyback,
        });
        // Record our own vote.
        let key = (self.round, self.proposer);
        self.votes
            .entry(key)
            .or_default()
            .votes
            .insert(self.me, vote);
        self.check_current_attempt(out);
    }

    // ------------------------------------------------------------------
    // Attempt resolution (OBBC fast path + fallback)
    // ------------------------------------------------------------------

    fn check_current_attempt(&mut self, out: &mut Outbox<WorkerMsg>) {
        if self.recovery.is_some() || self.sync.is_active() {
            return;
        }
        let key = (self.round, self.proposer);
        if self.attempt_resolved.contains(&key) {
            return;
        }

        // Fast path: n − f votes, all "deliver", including our own.
        if self.voted {
            if let Some(attempt) = self.votes.get(&key) {
                if attempt.votes.len() >= self.quorum() {
                    if attempt.votes.values().all(|v| *v) {
                        self.attempt_resolved.insert(key);
                        self.finish_delivery(key, out);
                        return;
                    }
                    // Mixed votes: invoke the fallback consensus once.
                    self.submit_fallback_vote(key, out);
                }
            }
        }

        // Fallback decision: the first n − f ordered fallback votes.
        let decision = {
            let Some(fv) = self.fallback_votes.get(&key) else {
                return;
            };
            if fv.len() < self.quorum() {
                return;
            }
            fv.iter()
                .take(self.quorum())
                .any(|(_, _, evidence)| evidence.is_some())
        };
        self.attempt_resolved.insert(key);
        if decision {
            self.finish_delivery(key, out);
        } else {
            self.nil_attempt(out);
        }
    }

    fn submit_fallback_vote(&mut self, key: (Round, NodeId), out: &mut Outbox<WorkerMsg>) {
        if self.fallback_submitted.contains(&key) {
            return;
        }
        self.fallback_submitted.insert(key);
        out.observe(Observation::FallbackInvoked {
            worker: self.worker_id,
            round: key.0,
        });
        let my_vote = self
            .votes
            .get(&key)
            .and_then(|a| a.votes.get(&self.me).copied())
            .unwrap_or(false);
        let evidence = if my_vote {
            self.headers.get(&key).cloned()
        } else {
            None
        };
        let value = ConsensusValue::FallbackVote {
            round: key.0,
            proposer: key.1,
            voter: self.me,
            vote: my_vote,
            evidence,
        };
        let mut sub = Outbox::new();
        let delivered = self.pbft.submit(value, &mut sub);
        out.extend(sub.map_msgs(WorkerMsg::Consensus));
        for (_, v) in delivered {
            self.handle_consensus_value(v, out);
        }
    }

    /// The current attempt decided "deliver": append the block if we have all
    /// its pieces (pulling whatever is missing), validate it against the
    /// chain, and either advance to the next round or start recovery.
    fn finish_delivery(&mut self, key: (Round, NodeId), out: &mut Outbox<WorkerMsg>) {
        let (round, proposer) = key;
        let Some(stored) = self.headers.get(&key) else {
            // Decided to deliver but we never saw the header: pull it
            // (Algorithm 1, lines 22–24).
            self.pending_finish = Some(key);
            if self.requested_headers.insert(key) {
                out.broadcast(WorkerMsg::PullHeader { round, proposer });
            }
            return;
        };
        let payload_hash = stored.header.payload_hash;
        if !self.bodies.contains_key(&payload_hash) {
            self.pending_finish = Some(key);
            if self.requested_bodies.insert(payload_hash) {
                out.broadcast(WorkerMsg::PullBlock { payload_hash });
            }
            return;
        }
        self.pending_finish = None;

        // Chain validation (Algorithm 2, line b4) through the *stored*
        // header value, so the signature verdict memoized at reception (or
        // seeded off-loop by a pre-verify stage) is a cache read; what can
        // still fail is the hash link. Clone only after validating — clones
        // reset the memo.
        let valid = self
            .chain
            .validate_extension(stored, self.crypto.as_ref())
            .is_ok();
        let signed = stored.clone();
        if !valid {
            self.panic_and_recover(signed, out);
            return;
        }

        let txs = self.bodies[&signed.header.payload_hash].clone();
        let block = Block::new(signed.header.clone(), txs);
        self.txpool.remove_included(block.txs.iter());
        self.chain.append(signed.clone(), Some(block));
        self.rotation.record_decided(proposer, round);
        self.fd.record_alive(proposer);
        self.timer.record_delivery(self.params.base_timeout / 4);
        out.observe(Observation::TentativeDecision {
            worker: self.worker_id,
            round,
        });

        self.finalize_and_deliver(out);

        // Advance to the next round.
        self.full_mode = false;
        self.round = self.round.next();
        let candidate = self.rotation.successor(proposer);
        self.begin_attempt(candidate, out);
    }

    /// The attempt decided "skip": rotate the proposer and retry the round.
    fn nil_attempt(&mut self, out: &mut Outbox<WorkerMsg>) {
        out.observe(Observation::NilDelivery {
            worker: self.worker_id,
            round: self.round,
        });
        self.timer.record_miss();
        self.fd.record_wait(self.proposer, self.timer.current());
        self.full_mode = true;
        let candidate = self.rotation.successor(self.proposer);
        self.begin_attempt(candidate, out);
    }

    /// Marks deep blocks definite and delivers them (in order) to the
    /// application, provided their bodies are known.
    fn finalize_and_deliver(&mut self, out: &mut Outbox<WorkerMsg>) {
        for round in self.chain.finalize_deep_blocks() {
            if let Some(entry) = self.chain.get(round) {
                out.observe(Observation::DefiniteDecision {
                    worker: self.worker_id,
                    round,
                    tx_count: entry.signed_header.header.tx_count,
                    payload_bytes: entry.signed_header.header.payload_bytes,
                });
            }
        }
        self.try_deliver_definite(out);
    }

    fn try_deliver_definite(&mut self, out: &mut Outbox<WorkerMsg>) {
        while self.next_to_deliver < self.chain.definite_len() {
            let round = Round(self.next_to_deliver as u64);
            let entry = self
                .chain
                .get(round)
                .expect("definite entries exist")
                .clone();
            let Some(body) = entry.body else {
                // Body still missing: pull it and stop (deliveries are in
                // order).
                let payload_hash = entry.signed_header.header.payload_hash;
                if self.requested_bodies.insert(payload_hash) {
                    out.broadcast(WorkerMsg::PullBlock { payload_hash });
                }
                return;
            };
            if let Some(exec) = &self.exec {
                // Committed, immutable block → execution pipeline, at the
                // deterministic delivery point (inline under the simulator,
                // stage-thread hand-off under the real-time runtimes).
                exec.enqueue(round.0, &body);
                if let Some(claimed) = entry.signed_header.header.exec_root {
                    let prefix = prefix_for_header(round.0, self.exec_lag());
                    if let ClaimCheck::Mismatch(_) = exec.expect_prefix(prefix, round.0, claimed) {
                        out.observe(Observation::ExecRootMismatch {
                            worker: self.worker_id,
                            round,
                        });
                    }
                }
            }
            out.deliver(Delivery {
                worker: self.worker_id,
                round,
                proposer: entry.signed_header.proposer(),
                block: body,
            });
            self.next_to_deliver += 1;
        }
    }

    // ------------------------------------------------------------------
    // Recovery (Algorithm 3)
    // ------------------------------------------------------------------

    fn panic_and_recover(&mut self, conflicting: SignedHeader, out: &mut Outbox<WorkerMsg>) {
        let detected_round = conflicting.round();
        out.observe(Observation::ByzantineDetected {
            culprit: conflicting.proposer(),
        });
        let local_parent = detected_round
            .0
            .checked_sub(1)
            .and_then(|r| self.chain.get(Round(r)))
            .map(|e| e.signed_header.clone());
        let proof = PanicProof {
            detected_round,
            conflicting,
            local_parent,
        };
        let mut sub = Outbox::new();
        self.rb.broadcast(proof, &mut sub);
        out.extend(sub.map_msgs(WorkerMsg::Panic));
        self.start_recovery(detected_round, out);
    }

    fn start_recovery(&mut self, round: Round, out: &mut Outbox<WorkerMsg>) {
        if self.recovery.is_some() || self.recoveries_started.contains(&round) {
            return;
        }
        self.recoveries_started.insert(round);
        out.observe(Observation::RecoveryStarted {
            worker: self.worker_id,
            round,
        });
        out.cancel_timer(self.round_timer_id());
        let f = self.params.f() as u64;
        let base = round.minus(f + 1);
        let version = if self.chain.next_round() < base {
            // We are too far behind: submit the empty version (Algorithm 3,
            // lines 3–4).
            Vec::new()
        } else {
            self.chain.version_from(base)
        };
        self.recovery = Some(RecoveryState {
            round,
            base,
            versions: Vec::new(),
            contributors: HashSet::new(),
        });
        let value = ConsensusValue::RecoveryVersion {
            recovery_round: round,
            from: self.me,
            version,
        };
        let mut sub = Outbox::new();
        let delivered = self.pbft.submit(value, &mut sub);
        out.extend(sub.map_msgs(WorkerMsg::Consensus));
        for (_, v) in delivered {
            self.handle_consensus_value(v, out);
        }
    }

    fn handle_recovery_version(
        &mut self,
        recovery_round: Round,
        from: NodeId,
        version: Version,
        out: &mut Outbox<WorkerMsg>,
    ) {
        // A version for a recovery we have not joined yet doubles as the
        // trigger to join it (the RB proof may still be in flight).
        if self.recovery.is_none() && !self.recoveries_started.contains(&recovery_round) {
            self.start_recovery(recovery_round, out);
        }
        let Some(state) = self.recovery.as_mut() else {
            return;
        };
        if state.round != recovery_round || state.contributors.contains(&from) {
            return;
        }
        let base = state.base;
        // Validate the version; invalid versions are simply not counted
        // (Algorithm 3, lines 11–14).
        // The version's signatures are one batch for the crypto pool: the
        // verdicts seed each header's memo, so the anchor check below reads
        // them instead of verifying one at a time.
        let headers: Vec<&SignedHeader> = version.iter().collect();
        let all_sigs_ok = self
            .pool
            .batch_verify_headers(&headers)
            .into_iter()
            .all(|ok| ok);
        let valid = if version.is_empty() {
            true
        } else if self.chain.next_round() >= base {
            let r = if all_sigs_ok {
                self.chain
                    .validate_version(base, &version, self.crypto.as_ref())
            } else {
                Err(fireledger_types::Error::InvalidSignature {
                    signer: from,
                    context: "recovery version signature".into(),
                })
            };
            out.cpu(CpuCharge {
                signs: 0,
                verifies: version.len() as u32,
                hashed_bytes: 0,
            });
            r.is_ok()
        } else {
            // Too far behind to anchor-check; accept on signatures alone.
            all_sigs_ok
        };
        let state = self.recovery.as_mut().expect("still recovering");
        if !valid {
            return;
        }
        state.contributors.insert(from);
        state.versions.push((from, version));
        if state.versions.len() >= self.params.quorum() {
            self.complete_recovery(out);
        }
    }

    fn complete_recovery(&mut self, out: &mut Outbox<WorkerMsg>) {
        let state = self.recovery.take().expect("recovery in progress");
        // Adopt the first-received among the longest versions (Algorithm 3,
        // lines 16–17). Atomic broadcast gives every correct node the same
        // order, hence the same choice.
        let longest = state
            .versions
            .iter()
            .map(|(_, v)| v.len())
            .max()
            .unwrap_or(0);
        let adopted = state
            .versions
            .iter()
            .find(|(_, v)| v.len() == longest)
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let adopted_len = adopted.len();

        if self.chain.next_round() >= state.base
            && adopted_len > 0
            && self
                .chain
                .adopt_version(state.base, adopted.clone())
                .is_ok()
        {
            // Refresh rotation bookkeeping for the adopted suffix.
            for signed in &adopted {
                self.rotation
                    .record_decided(signed.proposer(), signed.round());
            }
        }

        // Drop attempt state for every round the recovery may have replaced.
        let base = state.base;
        self.votes.retain(|(r, _), _| *r < base);
        self.headers.retain(|(r, p), _| *r < base || *p == self.me);
        self.attempt_resolved.retain(|(r, _)| *r < base);
        self.fallback_submitted.retain(|(r, _)| *r < base);
        self.fallback_votes.retain(|(r, _), _| *r < base);
        self.pending_finish = None;
        self.my_header_sent.retain(|r| *r < base);

        self.fd.invalidate();
        self.timer.reset();
        self.full_mode = true;
        self.round = self.chain.next_round();
        out.observe(Observation::RecoveryFinished {
            worker: self.worker_id,
            round: state.round,
            adopted_len,
        });

        self.finalize_and_deliver(out);

        let candidate = self
            .chain
            .entries()
            .last()
            .map(|e| self.rotation.successor(e.proposer()))
            .unwrap_or_else(|| self.rotation.initial());
        self.begin_attempt(candidate, out);
    }

    // ------------------------------------------------------------------
    // Incoming message handling
    // ------------------------------------------------------------------

    /// Stores an inbound body (first announcement wins). When the runtime's
    /// ingress stage pre-verified the body's merkle commitment
    /// ([`Worker::set_preverified_ingress`]), the announced hash is recorded
    /// as the body's verified root right away — `votable_header` then never
    /// re-hashes β transactions on the consensus loop.
    fn store_body(&mut self, payload_hash: Hash, txs: Vec<Transaction>) {
        if self.preverified_ingress {
            self.body_roots.entry(payload_hash).or_insert(payload_hash);
            self.validated_bodies.insert(payload_hash);
        }
        self.bodies.entry(payload_hash).or_insert(txs);
    }

    fn store_header(&mut self, from: NodeId, signed: SignedHeader, out: &mut Outbox<WorkerMsg>) {
        let header = &signed.header;
        if header.worker != self.worker_id {
            return;
        }
        // Headers are only accepted from their claimed proposer (no relaying
        // on the optimistic path) and must carry a valid signature.
        if header.proposer != from {
            return;
        }
        let key = (header.round, header.proposer);
        if self.headers.contains_key(&key) {
            return;
        }
        out.cpu(CpuCharge::verify(0));
        // Memoized: when the runtime's pre-verify stage already checked this
        // value off-loop, the verdict is a cache read; otherwise the
        // verification happens here and is remembered for the stored value.
        if !verify_header_cached(self.crypto.as_ref(), &signed) {
            return;
        }
        self.headers.insert(key, signed);
        if key == (self.round, self.proposer) {
            self.maybe_vote(out);
        }
        if self.pending_finish == Some(key) {
            self.finish_delivery(key, out);
        }
    }

    fn handle_vote(
        &mut self,
        from: NodeId,
        round: Round,
        proposer: NodeId,
        vote: bool,
        piggyback: Option<SignedHeader>,
        out: &mut Outbox<WorkerMsg>,
    ) {
        if let Some(signed) = piggyback {
            self.store_header(from, signed, out);
        }
        self.votes
            .entry((round, proposer))
            .or_default()
            .votes
            .entry(from)
            .or_insert(vote);
        if (round, proposer) == (self.round, self.proposer) {
            self.maybe_vote(out);
            self.check_current_attempt(out);
        }
        // Lag detection: a vote far ahead of our current attempt means the
        // cluster decided many rounds without us (healed partition, long
        // pause). Fetch the definite gap instead of limping behind.
        if round.0 >= self.round.0 + SYNC_LAG_THRESHOLD
            && self.recovery.is_none()
            && !self.sync.is_active()
        {
            let mut sub = Outbox::new();
            self.sync.begin(&mut sub);
            out.extend(sub.map_msgs(WorkerMsg::Sync));
        }
    }

    fn handle_consensus_value(&mut self, value: ConsensusValue, out: &mut Outbox<WorkerMsg>) {
        match value {
            ConsensusValue::FallbackVote {
                round,
                proposer,
                voter,
                vote,
                evidence,
            } => {
                // Validate the evidence before counting it (the external
                // validity of OBBC_v).
                let evidence = evidence.filter(|signed| {
                    signed.round() == round
                        && signed.proposer() == proposer
                        && verify_header_cached(self.crypto.as_ref(), signed)
                });
                if let Some(signed) = evidence.clone() {
                    // The evidence also tells us the header, useful if we
                    // never saw it on the optimistic path.
                    let key = (signed.round(), signed.proposer());
                    self.headers.entry(key).or_insert(signed);
                }
                let key = (round, proposer);
                let entry = self.fallback_votes.entry(key).or_default();
                if !entry.iter().any(|(v, _, _)| *v == voter) {
                    entry.push((voter, vote, evidence));
                }
                // Participation rule (Algorithm 4, lines OB26–OB27): if the
                // fallback is running for an attempt we already resolved
                // optimistically, contribute our vote so it can terminate.
                if self.attempt_resolved.contains(&key) {
                    self.submit_fallback_vote(key, out);
                }
                if key == (self.round, self.proposer) {
                    self.check_current_attempt(out);
                }
            }
            ConsensusValue::RecoveryVersion {
                recovery_round,
                from,
                version,
            } => {
                self.handle_recovery_version(recovery_round, from, version, out);
            }
        }
    }

    fn handle_panic_proof(&mut self, proof: PanicProof, out: &mut Outbox<WorkerMsg>) {
        // Validate the proof's signatures (Algorithm 2, line b12: "a valid
        // proof") as one batch through the crypto pool. A bogus proof can at
        // worst trigger a redundant recovery, never a safety violation.
        let mut headers = vec![&proof.conflicting];
        headers.extend(proof.local_parent.as_ref());
        if self
            .pool
            .batch_verify_headers(&headers)
            .into_iter()
            .all(|ok| ok)
        {
            self.start_recovery(proof.detected_round, out);
        }
    }

    // ------------------------------------------------------------------
    // State sync (late-join / catch-up block fetch)
    // ------------------------------------------------------------------

    /// Handles a [`SyncMsg`]: the serving side answers probes and range
    /// requests out of the definite prefix (capped batches, never more than
    /// asked); the requesting side feeds replies into the synchronizer and
    /// performs the two verification steps it delegates — header-chain
    /// validation *before* any body download, and per-body merkle checks
    /// against the verified headers before splicing.
    fn handle_sync_msg(&mut self, from: NodeId, msg: SyncMsg, out: &mut Outbox<WorkerMsg>) {
        match msg {
            // -------- serving side --------
            SyncMsg::TipProbe { req } => {
                out.send(
                    from,
                    WorkerMsg::Sync(SyncMsg::TipReply {
                        req,
                        definite: Round(self.chain.definite_len() as u64),
                    }),
                );
            }
            SyncMsg::GetHeaders { req, from: lo, to } => {
                let hi =
                    to.0.min(lo.0.saturating_add(MAX_SYNC_HEADERS as u64))
                        .min(self.chain.definite_len() as u64);
                let mut headers = Vec::new();
                for r in lo.0..hi {
                    let Some(entry) = self.chain.get(Round(r)) else {
                        break;
                    };
                    headers.push(entry.signed_header.clone());
                }
                out.send(
                    from,
                    WorkerMsg::Sync(SyncMsg::HeadersReply {
                        req,
                        from: lo,
                        headers,
                    }),
                );
            }
            SyncMsg::GetBlocks { req, from: lo, to } => {
                let hi =
                    to.0.min(lo.0.saturating_add(MAX_SYNC_BODIES as u64))
                        .min(self.chain.definite_len() as u64);
                let mut bodies = Vec::new();
                for r in lo.0..hi {
                    let Some(block) = self.chain.get(Round(r)).and_then(|e| e.body.as_ref()) else {
                        break;
                    };
                    bodies.push(block.txs.clone());
                }
                out.send(
                    from,
                    WorkerMsg::Sync(SyncMsg::BlocksReply {
                        req,
                        from: lo,
                        bodies,
                    }),
                );
            }
            // -------- requesting side --------
            SyncMsg::TipReply { req, definite } => {
                let mut sub = Outbox::new();
                let step =
                    self.sync
                        .on_tip_reply(from, req, definite, self.chain.next_round(), &mut sub);
                out.extend(sub.map_msgs(WorkerMsg::Sync));
                if step == SyncStep::CaughtUp {
                    self.resume_after_sync(out);
                }
            }
            SyncMsg::HeadersReply {
                req,
                from: lo,
                headers,
            } => {
                let candidate = match self.sync.on_headers_reply(from, req, lo, headers) {
                    ReplyGate::Ignore => return,
                    ReplyGate::Bad => None,
                    ReplyGate::Candidate(headers) => Some(headers),
                };
                // Header-chain verification before a single body byte is
                // requested: batch signature checks seed each header's memo,
                // then the hash chain and the f+1-distinct-proposers rule are
                // checked against our own tip.
                let verified = candidate.filter(|headers| {
                    let refs: Vec<&SignedHeader> = headers.iter().collect();
                    let sigs_ok = self
                        .pool
                        .batch_verify_headers(&refs)
                        .into_iter()
                        .all(|ok| ok);
                    out.cpu(CpuCharge {
                        signs: 0,
                        verifies: headers.len() as u32,
                        hashed_bytes: 0,
                    });
                    sigs_ok
                        && self
                            .chain
                            .validate_version(
                                self.chain.next_round(),
                                headers,
                                self.crypto.as_ref(),
                            )
                            .is_ok()
                });
                let mut sub = Outbox::new();
                let step = match verified {
                    Some(headers) => self.sync.headers_verified(headers, &mut sub),
                    None => self.sync.peer_failed(self.chain.next_round(), &mut sub),
                };
                out.extend(sub.map_msgs(WorkerMsg::Sync));
                if step == SyncStep::CaughtUp {
                    self.resume_after_sync(out);
                }
            }
            SyncMsg::BlocksReply {
                req,
                from: lo,
                bodies,
            } => {
                let pairs = match self.sync.on_blocks_reply(from, req, lo, bodies) {
                    ReplyGate::Ignore => return,
                    ReplyGate::Bad => None,
                    ReplyGate::Candidate(pairs) => Some(pairs),
                };
                // Each body must hash to the payload commitment of its
                // already-verified header.
                let verified = pairs.filter(|pairs| {
                    pairs.iter().all(|(signed, txs)| {
                        self.pool.merkle_root_par(txs, &mut self.leaf_scratch)
                            == signed.header.payload_hash
                    })
                });
                let mut sub = Outbox::new();
                let step = match verified {
                    Some(pairs) => {
                        let count = pairs.len();
                        self.splice_fetched(pairs, out);
                        self.sync.spliced(count, &mut sub)
                    }
                    None => self.sync.peer_failed(self.chain.next_round(), &mut sub),
                };
                out.extend(sub.map_msgs(WorkerMsg::Sync));
                if step == SyncStep::CaughtUp {
                    self.resume_after_sync(out);
                }
            }
        }
    }

    /// Appends a verified fetched segment to the chain exactly as a normal
    /// decision would: pool pruning, rotation bookkeeping, then
    /// finalize-and-deliver so the application stream advances in order.
    fn splice_fetched(
        &mut self,
        pairs: Vec<(SignedHeader, Vec<Transaction>)>,
        out: &mut Outbox<WorkerMsg>,
    ) {
        for (signed, txs) in pairs {
            out.cpu(CpuCharge::hash(signed.header.payload_bytes));
            let block = Block::new(signed.header.clone(), txs);
            self.txpool.remove_included(block.txs.iter());
            self.rotation
                .record_decided(signed.proposer(), signed.round());
            self.chain.append(signed, Some(block));
        }
        self.finalize_and_deliver(out);
    }

    /// The synchronizer finished (caught up, or found no gap): resume normal
    /// consensus from the — possibly far advanced — local tip, mirroring how
    /// `complete_recovery` restarts after a version adoption. Votes and
    /// headers gathered while syncing are deliberately kept: they let the
    /// worker resolve the cluster's in-flight rounds through the ordinary
    /// quorum and pull machinery.
    fn resume_after_sync(&mut self, out: &mut Outbox<WorkerMsg>) {
        self.pending_finish = None;
        self.finalize_and_deliver(out);
        if self.round == self.chain.next_round() && self.voted {
            // False-positive trigger: the chain did not move and the current
            // attempt (already voted on) is still live — leave it alone.
            return;
        }
        self.fd.invalidate();
        self.timer.reset();
        self.full_mode = true;
        self.round = self.chain.next_round();
        out.observe(Observation::SyncCompleted {
            worker: self.worker_id,
            round: self.round,
            fetched: self.sync.rounds_fetched(),
        });
        let candidate = self
            .chain
            .entries()
            .last()
            .map(|e| self.rotation.successor(e.proposer()))
            .unwrap_or_else(|| self.rotation.initial());
        self.begin_attempt(candidate, out);
    }
}

impl Protocol for Worker {
    type Msg = WorkerMsg;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn is_syncing(&self) -> bool {
        Worker::is_syncing(self)
    }

    fn on_start(&mut self, out: &mut Outbox<WorkerMsg>) {
        // A worker asked to state-sync first (restored from disk, late join)
        // probes the cluster before joining consensus; `resume_after_sync`
        // begins the first attempt once the gap — if any — is fetched.
        if self.sync_wanted {
            self.sync_wanted = false;
            let mut sub = Outbox::new();
            self.sync.begin(&mut sub);
            out.extend(sub.map_msgs(WorkerMsg::Sync));
            return;
        }
        // A fresh worker starts from the rotation's initial proposer; a
        // worker restored from disk resumes with the successor of its last
        // decided block's proposer — the same choice `complete_recovery`
        // makes after a version adoption. For an empty chain the two
        // coincide, so the fresh-start behaviour is untouched.
        let candidate = self
            .chain
            .entries()
            .last()
            .map(|e| self.rotation.successor(e.proposer()))
            .unwrap_or_else(|| self.rotation.initial());
        self.begin_attempt(candidate, out);
    }

    fn on_message(&mut self, from: NodeId, msg: WorkerMsg, out: &mut Outbox<WorkerMsg>) {
        match msg {
            WorkerMsg::BlockData { payload_hash, txs } => {
                self.store_body(payload_hash, txs);
                self.maybe_vote(out);
                if let Some(key) = self.pending_finish {
                    self.finish_delivery(key, out);
                }
                self.try_deliver_definite(out);
            }
            WorkerMsg::Header { header } => {
                self.store_header(from, header, out);
            }
            WorkerMsg::Vote {
                round,
                proposer,
                vote,
                piggyback,
            } => {
                self.handle_vote(from, round, proposer, vote, piggyback, out);
            }
            WorkerMsg::PullHeader { round, proposer } => {
                if let Some(signed) = self.headers.get(&(round, proposer)) {
                    out.send(
                        from,
                        WorkerMsg::PullHeaderReply {
                            header: signed.clone(),
                        },
                    );
                }
            }
            WorkerMsg::PullHeaderReply { header } => {
                // Pulled headers may be relayed by nodes other than the
                // proposer; verify the proposer's signature directly.
                let key = (header.round(), header.proposer());
                if !self.headers.contains_key(&key)
                    && verify_header_cached(self.crypto.as_ref(), &header)
                {
                    out.cpu(CpuCharge::verify(0));
                    self.headers.insert(key, header);
                    if self.pending_finish == Some(key) {
                        self.finish_delivery(key, out);
                    }
                    if key == (self.round, self.proposer) {
                        self.maybe_vote(out);
                    }
                }
            }
            WorkerMsg::PullBlock { payload_hash } => {
                if let Some(txs) = self.bodies.get(&payload_hash) {
                    out.send(
                        from,
                        WorkerMsg::PullBlockReply {
                            payload_hash,
                            txs: txs.clone(),
                        },
                    );
                }
            }
            WorkerMsg::PullBlockReply { payload_hash, txs } => {
                self.store_body(payload_hash, txs.clone());
                // Attach to any decided entry still waiting for this body.
                for round in self.chain.missing_bodies() {
                    if let Some(entry) = self.chain.get(round) {
                        if entry.signed_header.header.payload_hash == payload_hash {
                            let header = entry.signed_header.header.clone();
                            self.chain
                                .attach_body(round, Block::new(header, txs.clone()));
                        }
                    }
                }
                self.maybe_vote(out);
                if let Some(key) = self.pending_finish {
                    self.finish_delivery(key, out);
                }
                self.try_deliver_definite(out);
            }
            WorkerMsg::Panic(rb_msg) => {
                let mut sub = Outbox::new();
                let delivered = self.rb.on_message(from, rb_msg, &mut sub);
                out.extend(sub.map_msgs(WorkerMsg::Panic));
                for (_, _, proof) in delivered {
                    self.handle_panic_proof(proof, out);
                }
            }
            WorkerMsg::Consensus(pbft_msg) => {
                let mut sub = Outbox::new();
                let delivered = self.pbft.on_message(from, pbft_msg, &mut sub);
                out.extend(sub.map_msgs(WorkerMsg::Consensus));
                for (_, value) in delivered {
                    self.handle_consensus_value(value, out);
                }
            }
            WorkerMsg::Sync(sync_msg) => {
                self.handle_sync_msg(from, sync_msg, out);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<WorkerMsg>) {
        let (kind, seq) = timer.decompose();
        match kind {
            TIMER_ROUND => {
                if self.recovery.is_some()
                    || self.sync.is_active()
                    || self.voted
                    || seq != self.round.0
                {
                    return;
                }
                // The proposer's message did not arrive in time: vote against
                // delivery (Algorithm 1, lines 11–12).
                self.fd.record_wait(self.proposer, self.timer.current());
                self.cast_vote(false, out);
            }
            TIMER_PBFT => {
                let mut sub = Outbox::new();
                self.pbft.on_timer(timer, &mut sub);
                out.extend(sub.map_msgs(WorkerMsg::Consensus));
            }
            TIMER_SYNC => {
                let mut sub = Outbox::new();
                let step = self.sync.on_timer(seq, self.chain.next_round(), &mut sub);
                out.extend(sub.map_msgs(WorkerMsg::Sync));
                if step == SyncStep::CaughtUp {
                    self.resume_after_sync(out);
                }
            }
            _ => {}
        }
    }

    fn on_transaction(&mut self, tx: Transaction, _out: &mut Outbox<WorkerMsg>) {
        self.txpool.submit(tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::AcceptAll;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::{SimConfig, Simulation};
    use std::sync::Arc;
    use std::time::Duration;

    fn cluster(n: usize, batch: usize) -> Vec<Worker> {
        let params = ProtocolParams::new(n)
            .with_batch_size(batch)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20));
        let crypto: SharedCrypto = SimKeyStore::generate(n, 7).shared();
        (0..n)
            .map(|i| {
                Worker::new(
                    NodeId(i as u32),
                    WorkerId(0),
                    params.clone(),
                    crypto.clone(),
                    Arc::new(AcceptAll),
                )
            })
            .collect()
    }

    #[test]
    fn fault_free_cluster_grows_identical_chains() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(500));
        let len0 = sim.node(NodeId(0)).chain().len();
        assert!(
            len0 > 10,
            "chain should grow well beyond 10 blocks, got {len0}"
        );
        // All nodes agree on the definite prefix.
        let reference: Vec<_> = sim
            .node(NodeId(0))
            .chain()
            .entries()
            .iter()
            .take(sim.node(NodeId(0)).chain().definite_len())
            .map(|e| hash_header(&e.signed_header.header))
            .collect();
        for i in 1..4u32 {
            let other: Vec<_> = sim
                .node(NodeId(i))
                .chain()
                .entries()
                .iter()
                .take(reference.len())
                .map(|e| hash_header(&e.signed_header.header))
                .collect();
            assert_eq!(other, reference, "node {i} diverged");
        }
        // No recovery and no fallback in the fault-free run.
        let s = sim.summary();
        assert_eq!(
            s.fallbacks, 0,
            "no fallback expected in the optimistic case"
        );
        assert!(s.recoveries_per_sec == 0.0);
    }

    #[test]
    fn proposers_rotate_round_robin() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 5));
        sim.run_for(Duration::from_millis(300));
        let chain = sim.node(NodeId(2)).chain();
        for (i, entry) in chain.entries().iter().enumerate().take(12) {
            assert_eq!(
                entry.proposer(),
                NodeId((i % 4) as u32),
                "block {i} has the wrong proposer"
            );
        }
    }

    #[test]
    fn deliveries_are_definite_ordered_and_full() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 8));
        sim.run_for(Duration::from_millis(400));
        let deliveries = sim.deliveries(NodeId(1));
        assert!(!deliveries.is_empty());
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.round, Round(i as u64));
            assert_eq!(d.block.len(), 8, "blocks are filled to β under load");
        }
        // Delivered prefix is the definite prefix.
        assert!(deliveries.len() <= sim.node(NodeId(1)).chain().definite_len());
    }

    #[test]
    fn crashed_proposer_is_skipped_and_progress_continues() {
        use fireledger_sim::adversary::CrashSchedule;
        use fireledger_sim::SimTime;
        let adv = CrashSchedule::new().crash(NodeId(3), SimTime::ZERO);
        let mut sim = Simulation::with_adversary(SimConfig::ideal(), cluster(4, 5), Box::new(adv));
        sim.run_for(Duration::from_secs(2));
        let chain = sim.node(NodeId(0)).chain();
        assert!(
            chain.len() > 6,
            "progress must continue despite the crashed node, got {}",
            chain.len()
        );
        // The crashed node proposed nothing after its crash.
        assert!(chain
            .entries()
            .iter()
            .all(|e| e.proposer() != NodeId(3) || e.round() == Round(3)));
        // Fallbacks were needed for the crashed node's turns.
        let s = sim.summary_for(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert!(s.fallbacks > 0);
    }

    #[test]
    fn client_transactions_end_up_in_decided_blocks() {
        let params_tx = Transaction::new(7, 99, vec![0xAB; 64]);
        let mut workers = cluster(4, 5);
        // Disable filler so only real transactions appear.
        for w in &mut workers {
            w.params.fill_blocks = false;
        }
        let mut sim = Simulation::new(SimConfig::ideal(), workers);
        sim.inject_transaction(NodeId(0), params_tx.clone(), Duration::from_millis(1));
        sim.run_for(Duration::from_millis(500));
        let delivered_txs: Vec<Transaction> = sim
            .deliveries(NodeId(2))
            .iter()
            .flat_map(|d| d.block.txs.clone())
            .collect();
        assert!(
            delivered_txs.contains(&params_tx),
            "the injected transaction must reach every node's delivered prefix"
        );
    }

    #[test]
    fn late_started_worker_catches_up_via_state_sync() {
        let mut sim = Simulation::new(SimConfig::ideal(), cluster(4, 10));
        sim.run_for(Duration::from_millis(300));
        let target = sim.node(NodeId(0)).chain().definite_len();
        assert!(target > 10, "cluster should be well ahead, got {target}");

        // Kill-restart node 3 as a *fresh* worker (empty chain) in sync mode:
        // it must fetch the whole prefix instead of replaying history.
        let params = ProtocolParams::new(4)
            .with_batch_size(10)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20));
        let crypto: SharedCrypto = SimKeyStore::generate(4, 7).shared();
        sim.restart_node(NodeId(3), move |_old| {
            let mut w = Worker::new(NodeId(3), WorkerId(0), params, crypto, Arc::new(AcceptAll));
            w.begin_sync();
            w
        });
        sim.run_for(Duration::from_millis(300));

        let fresh = sim.node(NodeId(3));
        assert!(
            fresh.sync_rounds_fetched() >= target as u64,
            "expected at least {target} fetched rounds, got {}",
            fresh.sync_rounds_fetched()
        );
        assert!(!fresh.is_syncing(), "sync must complete");
        // The fetched prefix is byte-identical to the cluster's.
        let reference = sim.node(NodeId(0)).chain();
        let fresh_chain = sim.node(NodeId(3)).chain();
        let common = reference.definite_len().min(fresh_chain.definite_len());
        assert!(common >= target);
        for r in 0..common as u64 {
            assert_eq!(
                hash_header(&fresh_chain.get(Round(r)).unwrap().signed_header.header),
                hash_header(&reference.get(Round(r)).unwrap().signed_header.header),
                "round {r} diverged"
            );
        }
        // Deliveries restart from round 0 — the full ledger, in order.
        let deliveries = sim.deliveries(NodeId(3));
        assert!(deliveries.len() >= target);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.round, Round(i as u64));
        }
    }

    #[test]
    fn worker_accessors_report_state() {
        let workers = cluster(4, 5);
        let w = &workers[2];
        assert_eq!(w.node(), NodeId(2));
        assert_eq!(w.worker_id(), WorkerId(0));
        assert_eq!(w.round(), Round(0));
        assert!(!w.is_recovering());
        assert_eq!(w.pool_len(), 0);
    }
}
