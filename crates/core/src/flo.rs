//! FLO — the FireLedger Orchestrator (§6.2).
//!
//! FireLedger's rotating-proposer pattern makes a single instance's
//! throughput latency-bound: a node may only propose on its turn. FLO
//! compensates by running ω independent FireLedger instances ("workers") per
//! node and using them as a blockchain-based ordering service:
//!
//! * the **client manager** routes each incoming write to the least-loaded
//!   worker;
//! * workers run completely independently (their messages are tagged with the
//!   worker id and never interact);
//! * to preserve a single total order, FLO releases decided blocks to the
//!   application by collecting the workers' definite deliveries **in
//!   round-robin order** — worker 0's block for round r, then worker 1's,
//!   and so on. A single slow worker therefore delays the merged delivery of
//!   all others, which is exactly the latency effect studied in Figures 8–9.

use crate::messages::{FloMsg, WorkerMsg};
use crate::validity::SharedValidity;
use crate::worker::Worker;
use fireledger_crypto::SharedCrypto;
use fireledger_store::{NodeStore, RecoveredState, REC_BLOCK};
use fireledger_types::{
    Action, Block, Delivery, NodeId, Observation, Outbox, Protocol, ProtocolParams, StoredBlock,
    TimerId, Transaction, WalRecord, WireCodec, WorkerId,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// A FLO node: ω FireLedger workers plus the client manager and the
/// round-robin delivery merge.
pub struct FloNode {
    me: NodeId,
    params: ProtocolParams,
    workers: Vec<Worker>,
    /// Definite deliveries produced by each worker, awaiting their round-robin
    /// release slot.
    pending: Vec<VecDeque<Delivery>>,
    /// The worker whose delivery is released next.
    next_worker: usize,
    /// Total blocks released by the round-robin merge.
    released: u64,
    /// Durable store: every released block is appended to the block log at
    /// the moment of release, so the persisted ledger *is* the merged
    /// delivery stream in order.
    store: Option<Arc<fireledger_store::NodeStore>>,
    /// Deliveries reconstructed from the block log by
    /// [`FloNode::recover_from_disk`], re-emitted on start so the restarted
    /// node's delivery stream begins with its recovered prefix.
    replay: Vec<Delivery>,
}

impl FloNode {
    /// Creates a FLO node with `params.workers` FireLedger workers.
    pub fn new(
        me: NodeId,
        params: ProtocolParams,
        crypto: SharedCrypto,
        validity: SharedValidity,
    ) -> Self {
        let workers = (0..params.workers)
            .map(|w| {
                Worker::new(
                    me,
                    WorkerId(w as u32),
                    params.clone(),
                    crypto.clone(),
                    validity.clone(),
                )
            })
            .collect::<Vec<_>>();
        FloNode {
            me,
            pending: vec![VecDeque::new(); params.workers],
            next_worker: 0,
            released: 0,
            store: None,
            replay: Vec::new(),
            params,
            workers,
        }
    }

    /// Attaches the node's durable store: every worker gains a consensus
    /// WAL (votes persisted before broadcast) and every block the
    /// round-robin merge releases from now on is appended to the block log.
    pub fn set_store(&mut self, store: Arc<NodeStore>) {
        for w in &mut self.workers {
            w.set_store(store.clone());
        }
        self.store = Some(store);
    }

    /// Rebuilds a node **solely from its durable store** after a kill: the
    /// replayed block log restores every worker's definite chain prefix and
    /// the round-robin merge position, and the replayed WAL restores each
    /// worker's vote ledger so the restarted node can never contradict a
    /// vote its pre-kill self broadcast.
    ///
    /// Replay is forgiving the same way the store's tail scan is: the first
    /// record that fails to decode (or names a worker the configuration
    /// does not have) ends the usable prefix rather than failing recovery.
    ///
    /// The recovered prefix is re-emitted as deliveries on the node's first
    /// [`Protocol::on_start`], so its post-restart delivery stream is the
    /// full ledger from round 0 — what the ledger-identity checks compare.
    /// Every worker then starts in state-sync mode (see
    /// [`FloNode::begin_sync`]): it probes the cluster's definite tips and
    /// range-fetches the gap between its WAL tip and the cluster's definite
    /// round before rejoining consensus, so a node that fell far behind
    /// while dead catches up by block fetch instead of stalling.
    pub fn recover_from_disk(
        me: NodeId,
        params: ProtocolParams,
        crypto: SharedCrypto,
        validity: SharedValidity,
        store: Arc<NodeStore>,
        recovered: &RecoveredState,
    ) -> Self {
        let mut node = FloNode::new(me, params, crypto, validity);
        for (kind, payload) in &recovered.blocks {
            if *kind != REC_BLOCK {
                break;
            }
            let Ok(stored) = StoredBlock::decode(payload) else {
                break;
            };
            let w = stored.worker.as_usize();
            if w >= node.workers.len() {
                break;
            }
            let block = Block::new(stored.signed_header.header.clone(), stored.txs);
            node.workers[w].restore_definite_block(stored.signed_header.clone(), block.clone());
            node.replay.push(Delivery {
                worker: stored.worker,
                round: stored.signed_header.round(),
                proposer: stored.signed_header.proposer(),
                block,
            });
        }
        node.released = node.replay.len() as u64;
        node.next_worker = (node.released as usize) % node.workers.len();
        for (kind, payload) in &recovered.wal {
            let Ok(rec) = WalRecord::decode_record(*kind, payload) else {
                continue;
            };
            let w = match rec {
                WalRecord::Round { worker, .. }
                | WalRecord::Vote { worker, .. }
                | WalRecord::Locked { worker, .. } => worker.as_usize(),
            };
            if let Some(worker) = node.workers.get_mut(w) {
                worker.restore_wal(&rec);
            }
        }
        for w in &mut node.workers {
            w.finish_restore();
        }
        node.set_store(store);
        node.begin_sync();
        node
    }

    /// Puts every worker into state-sync mode for its next start: each
    /// probes the cluster's definite tips and range-fetches any gap before
    /// joining normal consensus (a worker that is not behind resumes
    /// immediately). Used after [`FloNode::recover_from_disk`] and by
    /// late-joining nodes.
    pub fn begin_sync(&mut self) {
        for w in &mut self.workers {
            w.begin_sync();
        }
    }

    /// Total rounds fetched through state sync across all workers.
    pub fn sync_rounds_fetched(&self) -> u64 {
        self.workers.iter().map(|w| w.sync_rounds_fetched()).sum()
    }

    /// True while any worker's state-sync fetch is in progress.
    pub fn is_syncing(&self) -> bool {
        self.workers.iter().any(|w| w.is_syncing())
    }

    /// Overrides every worker's synchronizer batch sizes (see
    /// [`Worker::set_sync_batches`]).
    pub fn set_sync_batches(&mut self, headers: usize, bodies: usize) {
        for w in &mut self.workers {
            w.set_sync_batches(headers, bodies);
        }
    }

    /// The node's identity.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Number of workers (ω).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Access to an individual worker (for tests and the benchmark harness).
    pub fn worker(&self, w: usize) -> &Worker {
        &self.workers[w]
    }

    /// Total blocks released to the application so far.
    pub fn released_blocks(&self) -> u64 {
        self.released
    }

    /// The protocol parameters this node runs with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Installs a crypto pool on every worker (see
    /// [`Worker::set_crypto_pool`]).
    pub fn set_crypto_pool(&mut self, pool: fireledger_crypto::CryptoPool) {
        for w in &mut self.workers {
            w.set_crypto_pool(pool.clone());
        }
    }

    /// Attaches one execution shard per worker (see [`Worker::set_exec`]):
    /// each worker stream is executed by its own independent state machine,
    /// so FLO's sharded ordering carries straight through to sharded
    /// execution. Call order against [`FloNode::recover_from_disk`] does not
    /// matter — each worker re-feeds its restored prefix on attach.
    ///
    /// # Panics
    /// Panics when fewer shards than workers are supplied.
    pub fn set_exec(&mut self, shards: &[fireledger_exec::ExecShared]) {
        assert!(
            shards.len() >= self.workers.len(),
            "need one execution shard per worker: got {}, have ω = {}",
            shards.len(),
            self.workers.len()
        );
        for (w, shard) in self.workers.iter_mut().zip(shards) {
            w.set_exec(shard.clone());
        }
    }

    /// Marks every worker's ingress as runtime-pre-verified (see
    /// [`Worker::set_preverified_ingress`]).
    pub fn set_preverified_ingress(&mut self, on: bool) {
        for w in &mut self.workers {
            w.set_preverified_ingress(on);
        }
    }

    /// Tags a worker's timer with its instance index. The worker occupies a
    /// dedicated 8-bit field of [`TimerId`], disjoint from both the kind tag
    /// and the 48-bit sequence, so remapping can never alias another worker's
    /// (or kind's) timer; `ProtocolParams::with_workers` caps ω accordingly.
    fn wrap_timer(worker: usize, id: TimerId) -> TimerId {
        id.with_worker(WorkerId(worker as u32))
    }

    fn unwrap_timer(id: TimerId) -> (usize, TimerId) {
        (id.worker().as_usize(), id.without_worker())
    }

    /// Lifts a worker's outbox into FLO-level actions: messages are tagged
    /// with the worker id, timers are remapped, deliveries are buffered for
    /// the round-robin merge, everything else passes through.
    fn absorb(&mut self, worker: usize, sub: Outbox<WorkerMsg>, out: &mut Outbox<FloMsg>) {
        let tag = WorkerId(worker as u32);
        for action in sub.into_actions() {
            match action {
                Action::Send { to, msg } => out.send(
                    to,
                    FloMsg {
                        worker: tag,
                        inner: msg,
                    },
                ),
                Action::Broadcast { msg } => out.broadcast(FloMsg {
                    worker: tag,
                    inner: msg,
                }),
                Action::SetTimer { id, delay } => {
                    out.set_timer(Self::wrap_timer(worker, id), delay)
                }
                Action::CancelTimer { id } => out.cancel_timer(Self::wrap_timer(worker, id)),
                Action::Cpu(c) => out.cpu(c),
                Action::Observe(o) => out.observe(o),
                Action::Deliver(d) => {
                    self.pending[worker].push_back(d);
                }
            }
        }
        self.release_round_robin(out);
    }

    /// Releases buffered deliveries in strict round-robin order across
    /// workers: the merge stalls as soon as the worker whose turn it is has
    /// nothing ready (§6.2).
    fn release_round_robin(&mut self, out: &mut Outbox<FloMsg>) {
        loop {
            let Some(delivery) = self.pending[self.next_worker].pop_front() else {
                return;
            };
            out.observe(Observation::FloDelivery {
                worker: delivery.worker,
                round: delivery.round,
            });
            self.persist_released(&delivery);
            out.deliver(delivery);
            self.released += 1;
            self.next_worker = (self.next_worker + 1) % self.workers.len();
        }
    }

    /// Appends a released block to the durable block log, before the
    /// delivery leaves the outbox. Under the buffered fsync policies the
    /// write itself happens on the store's writer thread — this call only
    /// encodes and enqueues — so persistence stays off the consensus hot
    /// path; under `FsyncPolicy::Always` the append and `fdatasync` are
    /// paid right here, which is exactly the durability/latency trade the
    /// fsync benchmark rows quantify.
    fn persist_released(&mut self, delivery: &Delivery) {
        let Some(store) = &self.store else {
            return;
        };
        let w = delivery.worker.as_usize();
        let Some(entry) = self.workers[w].chain().get(delivery.round) else {
            return;
        };
        let stored = StoredBlock {
            worker: delivery.worker,
            signed_header: entry.signed_header.clone(),
            txs: delivery.block.txs.clone(),
        };
        let _ = store.append_block(stored.encode());
    }

    /// The least-loaded worker (by pending transaction count) — the client
    /// manager's routing rule.
    fn least_loaded_worker(&self) -> usize {
        self.workers
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.pool_len())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Protocol for FloNode {
    type Msg = FloMsg;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn is_syncing(&self) -> bool {
        FloNode::is_syncing(self)
    }

    fn on_start(&mut self, out: &mut Outbox<FloMsg>) {
        // A node restored from disk first re-emits its recovered prefix, so
        // the delivery stream observed after a restart is the complete
        // ledger from round 0. These blocks are already in the block log —
        // they are deliberately not re-persisted.
        for delivery in std::mem::take(&mut self.replay) {
            out.observe(Observation::FloDelivery {
                worker: delivery.worker,
                round: delivery.round,
            });
            out.deliver(delivery);
        }
        for w in 0..self.workers.len() {
            let mut sub = Outbox::new();
            self.workers[w].on_start(&mut sub);
            self.absorb(w, sub, out);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: FloMsg, out: &mut Outbox<FloMsg>) {
        let w = msg.worker.as_usize();
        if w >= self.workers.len() {
            return;
        }
        let mut sub = Outbox::new();
        self.workers[w].on_message(from, msg.inner, &mut sub);
        self.absorb(w, sub, out);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<FloMsg>) {
        let (w, inner) = Self::unwrap_timer(timer);
        if w >= self.workers.len() {
            return;
        }
        let mut sub = Outbox::new();
        self.workers[w].on_timer(inner, &mut sub);
        self.absorb(w, sub, out);
    }

    fn on_transaction(&mut self, tx: Transaction, out: &mut Outbox<FloMsg>) {
        let w = self.least_loaded_worker();
        let mut sub = Outbox::new();
        self.workers[w].on_transaction(tx, &mut sub);
        self.absorb(w, sub, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::AcceptAll;
    use fireledger_crypto::SimKeyStore;
    use fireledger_sim::{SimConfig, Simulation};
    use fireledger_types::Round;
    use std::sync::Arc;
    use std::time::Duration;

    fn flo_cluster(n: usize, workers: usize, batch: usize) -> Vec<FloNode> {
        let params = ProtocolParams::new(n)
            .with_workers(workers)
            .with_batch_size(batch)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20));
        let crypto: SharedCrypto = SimKeyStore::generate(n, 11).shared();
        (0..n)
            .map(|i| {
                FloNode::new(
                    NodeId(i as u32),
                    params.clone(),
                    crypto.clone(),
                    Arc::new(AcceptAll),
                )
            })
            .collect()
    }

    #[test]
    fn timer_wrapping_roundtrips() {
        let id = TimerId::compose(1, 12345);
        let wrapped = FloNode::wrap_timer(7, id);
        let (w, inner) = FloNode::unwrap_timer(wrapped);
        assert_eq!(w, 7);
        assert_eq!(inner, id);
    }

    #[test]
    fn multi_worker_flo_makes_progress_on_all_workers() {
        let mut sim = Simulation::new(SimConfig::ideal(), flo_cluster(4, 3, 5));
        sim.run_for(Duration::from_millis(500));
        let node = sim.node(NodeId(0));
        for w in 0..3 {
            assert!(
                node.worker(w).chain().len() > 5,
                "worker {w} should have decided blocks, got {}",
                node.worker(w).chain().len()
            );
        }
        assert!(node.released_blocks() > 0);
    }

    #[test]
    fn deliveries_are_round_robin_across_workers() {
        let mut sim = Simulation::new(SimConfig::ideal(), flo_cluster(4, 3, 5));
        sim.run_for(Duration::from_millis(500));
        let deliveries = sim.deliveries(NodeId(1));
        assert!(deliveries.len() >= 6);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(
                d.worker,
                WorkerId((i % 3) as u32),
                "delivery {i} out of worker order"
            );
            assert_eq!(
                d.round,
                Round((i / 3) as u64),
                "delivery {i} out of round order"
            );
        }
    }

    #[test]
    fn all_nodes_release_the_same_merged_sequence() {
        let mut sim = Simulation::new(SimConfig::ideal(), flo_cluster(4, 2, 4));
        sim.run_for(Duration::from_millis(400));
        let seq = |n: u32| {
            sim.deliveries(NodeId(n))
                .iter()
                .map(|d| (d.worker, d.round, d.block.header.payload_hash))
                .collect::<Vec<_>>()
        };
        let reference = seq(0);
        assert!(!reference.is_empty());
        for i in 1..4 {
            let other = seq(i);
            let common = reference.len().min(other.len());
            assert_eq!(other[..common], reference[..common], "node {i} diverged");
        }
    }

    #[test]
    fn client_manager_routes_to_least_loaded_worker() {
        let params = ProtocolParams::new(4)
            .with_workers(3)
            .with_fill_blocks(false);
        let crypto: SharedCrypto = SimKeyStore::generate(4, 1).shared();
        let mut node = FloNode::new(NodeId(0), params, crypto, Arc::new(AcceptAll));
        let mut out = Outbox::new();
        for i in 0..9 {
            node.on_transaction(Transaction::zeroed(1, i, 8), &mut out);
        }
        // 9 transactions spread evenly across 3 workers.
        for w in 0..3 {
            assert_eq!(node.worker(w).pool_len(), 3, "worker {w} unbalanced");
        }
    }

    #[test]
    fn single_worker_flo_matches_plain_worker_behaviour() {
        let mut sim = Simulation::new(SimConfig::ideal(), flo_cluster(4, 1, 5));
        sim.run_for(Duration::from_millis(300));
        let node = sim.node(NodeId(0));
        assert_eq!(node.worker_count(), 1);
        assert_eq!(
            node.released_blocks() as usize,
            sim.deliveries(NodeId(0)).len()
        );
        assert!(node.released_blocks() > 3);
    }
}
