//! The state-sync [`Synchronizer`]: a per-worker state machine that closes
//! the gap between a lagging node and the cluster's definite prefix by
//! range-fetching blocks (late join, restart-from-disk, healed partition).
//!
//! ```text
//!            begin()                 f+1 tips / timer
//!   Idle ────────────▶ ProbingTips ──────────────────▶ FetchingHeaders
//!                           ▲                               │ verified
//!                           │ no eligible peer              ▼
//!                           └──────────────────────── FetchingBodies
//!                                                           │ spliced to target
//!                                                           ▼
//!                                                       CaughtUp
//! ```
//!
//! The synchronizer owns the *protocol* side of catch-up: nonce bookkeeping,
//! peer selection, per-request timeouts, quarantine of peers that lied or
//! stalled, and range arithmetic. It deliberately owns **no** chain or
//! crypto state — the hosting [`crate::worker::Worker`] validates every
//! header segment against its own tip (hash chain, signatures, the
//! f+1-distinct-proposers rule) before any body is requested, and checks
//! every body's merkle root against its verified header before splicing.
//! That split keeps the machine trivially unit-testable and keeps the
//! security checks next to the state they protect.
//!
//! Every request carries a fresh nonce; replies are gated on
//! `(phase, nonce, peer, range)`, so duplicated, reordered or unsolicited
//! responses are ignored rather than corrupting the fetch. A reply that is
//! *addressed correctly but malformed* (empty, oversized) is treated exactly
//! like a verification failure: the peer is quarantined and the fetch retries
//! against an alternate peer, re-probing the cluster when no candidate is
//! left.

use fireledger_types::{
    NodeId, Outbox, Round, SignedHeader, SyncMsg, TimerId, Transaction, MAX_SYNC_BODIES,
    MAX_SYNC_HEADERS,
};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Timer kind used for per-request sync timeouts (disjoint from the worker's
/// round timer and the embedded PBFT timer kinds).
pub const TIMER_SYNC: u8 = 0x5C;

/// Longest quarantine, in probe cycles. Strikes escalate the sentence one
/// cycle at a time up to this cap, so even a repeat offender is re-admitted
/// eventually — a transiently slow peer must not be excluded forever.
const QUARANTINE_TTL_CAP: u64 = 4;

/// Phase of the synchronizer state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPhase {
    /// Not syncing; never synced.
    Idle,
    /// Broadcast a [`SyncMsg::TipProbe`], collecting peers' definite tips.
    ProbingTips,
    /// A [`SyncMsg::GetHeaders`] range request is in flight.
    FetchingHeaders,
    /// Headers verified; a [`SyncMsg::GetBlocks`] request is in flight.
    FetchingBodies,
    /// The last sync cycle completed (the host resumed normal operation).
    CaughtUp,
}

/// What the host must do after feeding an event into the synchronizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncStep {
    /// Nothing — the machine progressed (or ignored the event) on its own.
    Continue,
    /// The sync cycle is over: resume normal consensus from the local tip.
    CaughtUp,
}

/// Strike record for a misbehaving peer: how often it failed us and the
/// probe cycle at which it is forgiven.
#[derive(Clone, Copy, Debug)]
struct Quarantine {
    strikes: u64,
    released_at_cycle: u64,
}

/// Gate verdict for an inbound reply.
#[derive(Debug, PartialEq)]
pub enum ReplyGate<T> {
    /// Stale, duplicated or unsolicited — drop silently.
    Ignore,
    /// Correctly addressed but malformed — quarantine the peer and retry.
    Bad,
    /// A well-formed candidate the host must now verify.
    Candidate(T),
}

/// The catch-up state machine. See the module docs for the protocol.
pub struct Synchronizer {
    me: NodeId,
    /// Cluster size (peers = n − 1).
    n: usize,
    phase: SyncPhase,
    timeout: Duration,
    /// Nonce of the in-flight request; every request consumes a fresh one,
    /// so replies (and timers) for superseded requests are self-identifying.
    req: u64,
    next_req: u64,
    /// Definite tips reported by peers during the current probe. BTreeMap so
    /// peer selection is deterministic under the simulator.
    tips: BTreeMap<NodeId, Round>,
    /// Peers that lied, stalled or replied malformed, with their strike
    /// record. Entries expire after a strike-scaled number of probe cycles
    /// (see [`QUARANTINE_TTL_CAP`]) instead of lasting the whole sync.
    quarantined: BTreeMap<NodeId, Quarantine>,
    /// Monotone probe-cycle counter — the clock quarantine TTLs tick on.
    probe_cycle: u64,
    /// The peer currently serving our range requests.
    peer: Option<NodeId>,
    /// Fetch target: one past the last round to fetch (the best definite tip
    /// reported during the probe).
    target: Round,
    /// Next round to fetch / splice (the front of `headers` is this round).
    from: Round,
    /// Verified headers whose bodies are still being downloaded.
    headers: VecDeque<SignedHeader>,
    header_batch: usize,
    body_batch: usize,
    rounds_fetched: u64,
}

impl Synchronizer {
    /// Creates an idle synchronizer for node `me` in a cluster of `n` nodes.
    pub fn new(me: NodeId, n: usize, timeout: Duration) -> Self {
        Synchronizer {
            me,
            n,
            phase: SyncPhase::Idle,
            timeout,
            req: 0,
            next_req: 0,
            tips: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            probe_cycle: 0,
            peer: None,
            target: Round(0),
            from: Round(0),
            headers: VecDeque::new(),
            header_batch: MAX_SYNC_HEADERS,
            body_batch: MAX_SYNC_BODIES,
            rounds_fetched: 0,
        }
    }

    /// Overrides the per-request batch sizes (clamped to the wire caps;
    /// used by tests to exercise arbitrary range-split schedules).
    pub fn with_batches(mut self, headers: usize, bodies: usize) -> Self {
        self.set_batches(headers, bodies);
        self
    }

    /// In-place variant of [`Synchronizer::with_batches`].
    pub fn set_batches(&mut self, headers: usize, bodies: usize) {
        self.header_batch = headers.clamp(1, MAX_SYNC_HEADERS);
        self.body_batch = bodies.clamp(1, MAX_SYNC_BODIES);
    }

    /// Current phase.
    pub fn phase(&self) -> SyncPhase {
        self.phase
    }

    /// True while a sync cycle is in progress (normal consensus is paused).
    pub fn is_active(&self) -> bool {
        matches!(
            self.phase,
            SyncPhase::ProbingTips | SyncPhase::FetchingHeaders | SyncPhase::FetchingBodies
        )
    }

    /// Total rounds fetched and spliced across all sync cycles.
    pub fn rounds_fetched(&self) -> u64 {
        self.rounds_fetched
    }

    /// The peer currently serving this sync cycle, if any.
    pub fn current_peer(&self) -> Option<NodeId> {
        self.peer
    }

    /// Whether `p` is currently serving a quarantine sentence (struck and
    /// not yet past its release cycle).
    pub fn is_quarantined(&self, p: NodeId) -> bool {
        self.quarantined
            .get(&p)
            .is_some_and(|q| q.released_at_cycle > self.probe_cycle)
    }

    /// Peers currently under quarantine.
    pub fn quarantined_peers(&self) -> Vec<NodeId> {
        self.quarantined
            .keys()
            .copied()
            .filter(|p| self.is_quarantined(*p))
            .collect()
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn arm_timer(&self, out: &mut Outbox<SyncMsg>) {
        out.set_timer(TimerId::compose(TIMER_SYNC, self.req), self.timeout);
    }

    /// Starts a sync cycle: broadcast a tip probe and wait for replies.
    /// No-op while a cycle is already active.
    pub fn begin(&mut self, out: &mut Outbox<SyncMsg>) {
        if self.is_active() {
            return;
        }
        self.quarantined.clear();
        self.reprobe(out);
    }

    fn reprobe(&mut self, out: &mut Outbox<SyncMsg>) -> SyncStep {
        self.phase = SyncPhase::ProbingTips;
        self.tips.clear();
        self.headers.clear();
        self.peer = None;
        // One tick of the quarantine clock: peers whose sentence has run
        // out become eligible reporters again (their strike record stays,
        // so a repeat offender earns a longer sentence next time).
        self.probe_cycle += 1;
        self.req = self.fresh_req();
        out.broadcast(SyncMsg::TipProbe { req: self.req });
        self.arm_timer(out);
        SyncStep::Continue
    }

    /// Records a peer's definite tip. Once every peer answered (or, via
    /// [`Synchronizer::on_timer`], when the probe times out with at least one
    /// answer) the machine picks a target and a serving peer.
    pub fn on_tip_reply(
        &mut self,
        from: NodeId,
        req: u64,
        definite: Round,
        local_next: Round,
        out: &mut Outbox<SyncMsg>,
    ) -> SyncStep {
        if self.phase != SyncPhase::ProbingTips || req != self.req || from == self.me {
            return SyncStep::Continue;
        }
        self.tips.insert(from, definite);
        if self.tips.len() >= self.n.saturating_sub(1) {
            return self.decide_target(local_next, out);
        }
        SyncStep::Continue
    }

    /// Picks the fetch target (the best reported definite tip) and the
    /// serving peer (the best-tipped non-quarantined reporter; ties go to the
    /// lowest node id for determinism).
    fn decide_target(&mut self, local_next: Round, out: &mut Outbox<SyncMsg>) -> SyncStep {
        let best = self
            .tips
            .iter()
            .filter(|(p, _)| !self.is_quarantined(**p))
            .max_by_key(|(p, r)| (r.0, std::cmp::Reverse(p.0)))
            .map(|(p, r)| (*p, *r));
        let Some((peer, target)) = best else {
            // Every reporter is quarantined: forgive and start over rather
            // than deadlock (a peer that lied about headers may still be the
            // only one reachable).
            self.quarantined.clear();
            return self.reprobe(out);
        };
        if target <= local_next {
            return self.finish(out);
        }
        self.target = target;
        self.from = local_next;
        self.peer = Some(peer);
        self.request_headers(out);
        SyncStep::Continue
    }

    fn request_headers(&mut self, out: &mut Outbox<SyncMsg>) {
        self.phase = SyncPhase::FetchingHeaders;
        let to = Round(self.target.0.min(self.from.0 + self.header_batch as u64));
        self.req = self.fresh_req();
        out.send(
            self.peer.expect("fetching requires a peer"),
            SyncMsg::GetHeaders {
                req: self.req,
                from: self.from,
                to,
            },
        );
        self.arm_timer(out);
    }

    fn request_bodies(&mut self, out: &mut Outbox<SyncMsg>) {
        self.phase = SyncPhase::FetchingBodies;
        let span = self.headers.len().min(self.body_batch) as u64;
        self.req = self.fresh_req();
        out.send(
            self.peer.expect("fetching requires a peer"),
            SyncMsg::GetBlocks {
                req: self.req,
                from: self.from,
                to: Round(self.from.0 + span),
            },
        );
        self.arm_timer(out);
    }

    fn finish(&mut self, out: &mut Outbox<SyncMsg>) -> SyncStep {
        out.cancel_timer(TimerId::compose(TIMER_SYNC, self.req));
        self.phase = SyncPhase::CaughtUp;
        self.peer = None;
        self.headers.clear();
        self.tips.clear();
        SyncStep::CaughtUp
    }

    /// Gates a [`SyncMsg::HeadersReply`]. A [`ReplyGate::Candidate`] segment
    /// must be chain-verified by the host, which then calls either
    /// [`Synchronizer::headers_verified`] or [`Synchronizer::peer_failed`].
    pub fn on_headers_reply(
        &mut self,
        from: NodeId,
        req: u64,
        reply_from: Round,
        headers: Vec<SignedHeader>,
    ) -> ReplyGate<Vec<SignedHeader>> {
        if self.phase != SyncPhase::FetchingHeaders || req != self.req || Some(from) != self.peer {
            return ReplyGate::Ignore;
        }
        let span = (self.target.0 - self.from.0).min(self.header_batch as u64);
        if reply_from != self.from || headers.is_empty() || headers.len() as u64 > span {
            return ReplyGate::Bad;
        }
        ReplyGate::Candidate(headers)
    }

    /// The host verified the candidate header segment against its chain:
    /// store it and request the first batch of bodies.
    pub fn headers_verified(
        &mut self,
        headers: Vec<SignedHeader>,
        out: &mut Outbox<SyncMsg>,
    ) -> SyncStep {
        self.headers = headers.into();
        self.request_bodies(out);
        SyncStep::Continue
    }

    /// Gates a [`SyncMsg::BlocksReply`]. A [`ReplyGate::Candidate`] pairs
    /// each body with its already-verified header; the host checks the merkle
    /// roots, splices, and calls [`Synchronizer::spliced`] — or
    /// [`Synchronizer::peer_failed`] on a mismatch.
    pub fn on_blocks_reply(
        &mut self,
        from: NodeId,
        req: u64,
        reply_from: Round,
        bodies: Vec<Vec<Transaction>>,
    ) -> ReplyGate<Vec<(SignedHeader, Vec<Transaction>)>> {
        if self.phase != SyncPhase::FetchingBodies || req != self.req || Some(from) != self.peer {
            return ReplyGate::Ignore;
        }
        let span = self.headers.len().min(self.body_batch);
        if reply_from != self.from || bodies.is_empty() || bodies.len() > span {
            return ReplyGate::Bad;
        }
        let pairs = self
            .headers
            .iter()
            .take(bodies.len())
            .cloned()
            .zip(bodies)
            .collect();
        ReplyGate::Candidate(pairs)
    }

    /// The host spliced `count` fetched blocks onto its chain: advance the
    /// cursor and issue the next request (more bodies of this segment, the
    /// next header segment, or done).
    pub fn spliced(&mut self, count: usize, out: &mut Outbox<SyncMsg>) -> SyncStep {
        self.headers.drain(..count.min(self.headers.len()));
        self.from = Round(self.from.0 + count as u64);
        self.rounds_fetched += count as u64;
        if !self.headers.is_empty() {
            self.request_bodies(out);
            SyncStep::Continue
        } else if self.from < self.target {
            self.request_headers(out);
            SyncStep::Continue
        } else {
            self.finish(out)
        }
    }

    /// The current peer failed us — timed out, replied malformed, or served a
    /// segment that did not verify. Quarantine it and retry against the best
    /// alternate reporter; re-probe the cluster when none is left.
    pub fn peer_failed(&mut self, local_next: Round, out: &mut Outbox<SyncMsg>) -> SyncStep {
        if !self.is_active() {
            return SyncStep::Continue;
        }
        if let Some(p) = self.peer.take() {
            // Strike-scaled sentence: first offence sits out one probe
            // cycle, repeat offenders up to QUARANTINE_TTL_CAP cycles.
            let strikes = self.quarantined.get(&p).map_or(0, |q| q.strikes) + 1;
            self.quarantined.insert(
                p,
                Quarantine {
                    strikes,
                    released_at_cycle: self.probe_cycle + strikes.min(QUARANTINE_TTL_CAP),
                },
            );
        }
        // Any partially fetched segment is abandoned; re-anchor on the chain.
        self.headers.clear();
        self.from = local_next;
        let next = self
            .tips
            .iter()
            .filter(|(p, r)| !self.is_quarantined(**p) && r.0 > self.from.0)
            .max_by_key(|(p, r)| (r.0, std::cmp::Reverse(p.0)))
            .map(|(p, _)| *p);
        match next {
            Some(p) => {
                self.peer = Some(p);
                self.request_headers(out);
                SyncStep::Continue
            }
            None => self.reprobe(out),
        }
    }

    /// Handles a fired `TIMER_SYNC` timer (`seq` is the request nonce the
    /// timer was armed for). Stale timers are ignored.
    pub fn on_timer(&mut self, seq: u64, local_next: Round, out: &mut Outbox<SyncMsg>) -> SyncStep {
        if !self.is_active() || seq != self.req {
            return SyncStep::Continue;
        }
        match self.phase {
            SyncPhase::ProbingTips => {
                if self.tips.is_empty() {
                    // Nobody answered: keep probing.
                    self.reprobe(out)
                } else {
                    // Proceed with the tips we have (some peers may be down).
                    self.decide_target(local_next, out)
                }
            }
            SyncPhase::FetchingHeaders | SyncPhase::FetchingBodies => {
                self.peer_failed(local_next, out)
            }
            SyncPhase::Idle | SyncPhase::CaughtUp => SyncStep::Continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::{Action, BlockHeader, Signature, GENESIS_HASH};

    fn header(round: u64) -> SignedHeader {
        SignedHeader::new(
            BlockHeader::new(
                Round(round),
                fireledger_types::WorkerId(0),
                NodeId(1),
                GENESIS_HASH,
                GENESIS_HASH,
                0,
                0,
            ),
            Signature::from(vec![0u8; 64]),
        )
    }

    fn sent(out: &mut Outbox<SyncMsg>) -> Vec<(Option<NodeId>, SyncMsg)> {
        out.drain()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((Some(to), msg)),
                Action::Broadcast { msg } => Some((None, msg)),
                _ => None,
            })
            .collect()
    }

    fn sync() -> Synchronizer {
        Synchronizer::new(NodeId(3), 4, Duration::from_millis(50)).with_batches(4, 2)
    }

    #[test]
    fn full_cycle_probe_headers_bodies_caught_up() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        let msgs = sent(&mut out);
        assert!(matches!(msgs[0], (None, SyncMsg::TipProbe { .. })));
        let req = msgs[0].1.req();

        // Peers 0..=2 report tips; the best (node 1, tip 6) is chosen.
        assert_eq!(
            s.on_tip_reply(NodeId(0), req, Round(5), Round(0), &mut out),
            SyncStep::Continue
        );
        assert_eq!(
            s.on_tip_reply(NodeId(1), req, Round(6), Round(0), &mut out),
            SyncStep::Continue
        );
        assert_eq!(
            s.on_tip_reply(NodeId(2), req, Round(6), Round(0), &mut out),
            SyncStep::Continue
        );
        let msgs = sent(&mut out);
        // Header batch 4 < gap 6: the first request covers [0, 4).
        let (to, SyncMsg::GetHeaders { req, from, to: hi }) = msgs[0].clone() else {
            panic!("expected GetHeaders, got {msgs:?}");
        };
        assert_eq!(to, Some(NodeId(1)), "ties break to the lowest node id");
        assert_eq!((from, hi), (Round(0), Round(4)));

        let gate = s.on_headers_reply(NodeId(1), req, Round(0), (0..4).map(header).collect());
        let ReplyGate::Candidate(hs) = gate else {
            panic!("expected candidate")
        };
        s.headers_verified(hs, &mut out);
        // Body batch 2: bodies come in sub-batches [0,2) then [2,4).
        let msgs = sent(&mut out);
        let (_, SyncMsg::GetBlocks { req, from, to: hi }) = msgs[0].clone() else {
            panic!("expected GetBlocks, got {msgs:?}");
        };
        assert_eq!((from, hi), (Round(0), Round(2)));

        let gate = s.on_blocks_reply(NodeId(1), req, Round(0), vec![vec![], vec![]]);
        let ReplyGate::Candidate(pairs) = gate else {
            panic!("expected candidate")
        };
        assert_eq!(pairs.len(), 2);
        assert_eq!(s.spliced(2, &mut out), SyncStep::Continue);
        let msgs = sent(&mut out);
        let (_, SyncMsg::GetBlocks { req, from, to: hi }) = msgs[0].clone() else {
            panic!("expected GetBlocks, got {msgs:?}");
        };
        assert_eq!((from, hi), (Round(2), Round(4)));
        let ReplyGate::Candidate(_) =
            s.on_blocks_reply(NodeId(1), req, Round(2), vec![vec![], vec![]])
        else {
            panic!("expected candidate")
        };
        assert_eq!(s.spliced(2, &mut out), SyncStep::Continue);

        // Segment [0,4) done; next header segment [4,6) closes the gap.
        let msgs = sent(&mut out);
        let (_, SyncMsg::GetHeaders { req, from, to: hi }) = msgs[0].clone() else {
            panic!("expected GetHeaders, got {msgs:?}");
        };
        assert_eq!((from, hi), (Round(4), Round(6)));
        let ReplyGate::Candidate(hs) =
            s.on_headers_reply(NodeId(1), req, Round(4), (4..6).map(header).collect())
        else {
            panic!("expected candidate")
        };
        s.headers_verified(hs, &mut out);
        let msgs = sent(&mut out);
        let (_, SyncMsg::GetBlocks { req, .. }) = msgs[0].clone() else {
            panic!("expected GetBlocks, got {msgs:?}");
        };
        let ReplyGate::Candidate(_) =
            s.on_blocks_reply(NodeId(1), req, Round(4), vec![vec![], vec![]])
        else {
            panic!("expected candidate")
        };
        assert_eq!(s.spliced(2, &mut out), SyncStep::CaughtUp);
        assert_eq!(s.phase(), SyncPhase::CaughtUp);
        assert_eq!(s.rounds_fetched(), 6);
    }

    #[test]
    fn duplicate_stale_and_unsolicited_replies_are_ignored() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        let req = sent(&mut out)[0].1.req();
        for p in 0..3 {
            s.on_tip_reply(NodeId(p), req, Round(8), Round(0), &mut out);
        }
        let req = match sent(&mut out)[0].1 {
            SyncMsg::GetHeaders { req, .. } => req,
            ref m => panic!("expected GetHeaders, got {m:?}"),
        };
        // Wrong nonce, wrong peer, wrong phase for bodies: all ignored.
        assert_eq!(
            s.on_headers_reply(NodeId(0), req + 99, Round(0), vec![header(0)]),
            ReplyGate::Ignore
        );
        assert_eq!(
            s.on_headers_reply(NodeId(2), req, Round(0), vec![header(0)]),
            ReplyGate::Ignore,
            "reply from a peer we did not ask"
        );
        assert_eq!(
            s.on_blocks_reply(NodeId(0), req, Round(0), vec![vec![]]),
            ReplyGate::Ignore,
            "bodies while fetching headers"
        );
        // Malformed replies from the right peer are Bad, not Ignore.
        assert_eq!(
            s.on_headers_reply(NodeId(0), req, Round(0), vec![]),
            ReplyGate::Bad
        );
        assert_eq!(
            s.on_headers_reply(NodeId(0), req, Round(3), vec![header(3)]),
            ReplyGate::Bad,
            "reply for a range we did not ask"
        );
        assert_eq!(
            s.on_headers_reply(NodeId(0), req, Round(0), (0..5).map(header).collect()),
            ReplyGate::Bad,
            "oversized reply"
        );
    }

    #[test]
    fn timeout_quarantines_the_peer_and_retries_an_alternate() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        let req = sent(&mut out)[0].1.req();
        s.on_tip_reply(NodeId(0), req, Round(8), Round(0), &mut out);
        s.on_tip_reply(NodeId(1), req, Round(8), Round(0), &mut out);
        s.on_tip_reply(NodeId(2), req, Round(8), Round(0), &mut out);
        let (peer1, req) = match sent(&mut out)[0].clone() {
            (Some(p), SyncMsg::GetHeaders { req, .. }) => (p, req),
            other => panic!("expected GetHeaders, got {other:?}"),
        };
        assert_eq!(s.on_timer(req, Round(0), &mut out), SyncStep::Continue);
        let (peer2, req2) = match sent(&mut out)[0].clone() {
            (Some(p), SyncMsg::GetHeaders { req, .. }) => (p, req),
            other => panic!("expected retried GetHeaders, got {other:?}"),
        };
        assert_ne!(peer1, peer2, "retry must go to an alternate peer");
        assert_ne!(req, req2, "retry must use a fresh nonce");
        // Exhausting all three peers falls back to a fresh probe.
        s.on_timer(req2, Round(0), &mut out);
        let req3 = match sent(&mut out)[0].1 {
            SyncMsg::GetHeaders { req, .. } => req,
            ref m => panic!("expected GetHeaders, got {m:?}"),
        };
        assert_eq!(s.on_timer(req3, Round(0), &mut out), SyncStep::Continue);
        assert_eq!(s.phase(), SyncPhase::ProbingTips);
        assert!(matches!(
            sent(&mut out)[0],
            (None, SyncMsg::TipProbe { .. })
        ));
    }

    /// Feeds tips from all three peers, then times out every serving peer
    /// in turn until the machine falls back to a fresh probe. On return,
    /// `out` holds the fallback [`SyncMsg::TipProbe`] broadcast.
    fn run_all_fail_round(s: &mut Synchronizer, out: &mut Outbox<SyncMsg>) {
        let req = sent(out)[0].1.req();
        for p in 0..3 {
            s.on_tip_reply(NodeId(p), req, Round(8), Round(0), out);
        }
        for _ in 0..3 {
            let req = match sent(out)[0].1 {
                SyncMsg::GetHeaders { req, .. } => req,
                ref m => panic!("expected GetHeaders, got {m:?}"),
            };
            s.on_timer(req, Round(0), out);
        }
        assert_eq!(s.phase(), SyncPhase::ProbingTips);
    }

    #[test]
    fn transient_peer_is_released_after_its_quarantine_ttl() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        run_all_fail_round(&mut s, &mut out);
        // The fallback probe ticked the quarantine clock: every first-strike
        // sentence (one probe cycle) has expired.
        assert!(
            s.quarantined_peers().is_empty(),
            "first strikes last one probe cycle"
        );
        // The previously failed best peer is eligible and serves again.
        let req = sent(&mut out)[0].1.req();
        for p in 0..3 {
            s.on_tip_reply(NodeId(p), req, Round(8), Round(0), &mut out);
        }
        match sent(&mut out)[0].clone() {
            (Some(p), SyncMsg::GetHeaders { .. }) => {
                assert_eq!(p, NodeId(0), "released peer serves again");
            }
            other => panic!("expected GetHeaders, got {other:?}"),
        }
    }

    #[test]
    fn repeat_offenders_serve_escalating_sentences_and_probing_never_stalls() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        run_all_fail_round(&mut s, &mut out);
        assert!(s.quarantined_peers().is_empty());
        run_all_fail_round(&mut s, &mut out);
        // Second strikes hold for two probe cycles: still quarantined after
        // the fallback probe that released the first-time offenders above.
        assert_eq!(s.quarantined_peers(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Every reporter is quarantined: the machine forgives and re-probes
        // rather than stalling without a serving peer.
        let req = sent(&mut out)[0].1.req();
        for p in 0..3 {
            s.on_tip_reply(NodeId(p), req, Round(8), Round(0), &mut out);
        }
        assert_eq!(s.phase(), SyncPhase::ProbingTips);
        let msgs = sent(&mut out);
        assert!(
            matches!(msgs[0], (None, SyncMsg::TipProbe { .. })),
            "fresh probe, not a stall: {msgs:?}"
        );
        // After total forgiveness the next probe round fetches normally.
        let req = msgs[0].1.req();
        for p in 0..3 {
            s.on_tip_reply(NodeId(p), req, Round(8), Round(0), &mut out);
        }
        assert_eq!(s.phase(), SyncPhase::FetchingHeaders);
    }

    #[test]
    fn probe_finding_no_gap_finishes_immediately() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        let req = sent(&mut out)[0].1.req();
        s.on_tip_reply(NodeId(0), req, Round(5), Round(9), &mut out);
        s.on_tip_reply(NodeId(1), req, Round(5), Round(9), &mut out);
        assert_eq!(
            s.on_tip_reply(NodeId(2), req, Round(5), Round(9), &mut out),
            SyncStep::CaughtUp,
            "local chain already past every reported tip"
        );
        assert_eq!(s.phase(), SyncPhase::CaughtUp);
        assert_eq!(s.rounds_fetched(), 0);
    }

    #[test]
    fn probe_timeout_with_partial_replies_proceeds() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        let req = sent(&mut out)[0].1.req();
        // Only one of three peers answers before the timer fires.
        s.on_tip_reply(NodeId(2), req, Round(3), Round(0), &mut out);
        assert_eq!(s.on_timer(req, Round(0), &mut out), SyncStep::Continue);
        match sent(&mut out)[0].clone() {
            (Some(p), SyncMsg::GetHeaders { from, to, .. }) => {
                assert_eq!(p, NodeId(2));
                assert_eq!((from, to), (Round(0), Round(3)));
            }
            other => panic!("expected GetHeaders, got {other:?}"),
        }
    }

    #[test]
    fn begin_is_idempotent_while_active() {
        let mut s = sync();
        let mut out = Outbox::new();
        s.begin(&mut out);
        assert_eq!(sent(&mut out).len(), 1);
        s.begin(&mut out);
        assert_eq!(sent(&mut out).len(), 0, "second begin must not re-probe");
        assert!(s.is_active());
    }
}
