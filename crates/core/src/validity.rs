//! The external validity predicate (the paper's `valid` method).
//!
//! Blockchain consensus needs *external validity* (§3.3, VPBC): even a
//! Byzantine proposer may produce a block that is legal by the application's
//! rules, and conversely a syntactically well-formed block may be
//! application-invalid. FireLedger therefore delegates block acceptance to a
//! predefined `valid` method; BBFC-Validity guarantees every decided block
//! satisfies it.
//!
//! Applications implement [`ValidityPredicate`]; the crate ships the common
//! cases (accept-everything, structural checks, a closure adapter) and the
//! worker always enforces the structural invariants (payload hash matches the
//! body) on top of the application predicate.

use fireledger_crypto::block_payload_root;
use fireledger_types::{Block, BlockHeader};
use std::sync::Arc;

/// An application-defined block validity predicate.
pub trait ValidityPredicate: Send + Sync {
    /// Returns `true` when the block is acceptable to the application.
    fn is_valid(&self, header: &BlockHeader, body: &Block) -> bool;

    /// Human-readable name used in logs.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Shared handle to a validity predicate.
pub type SharedValidity = Arc<dyn ValidityPredicate>;

/// Accepts every structurally consistent block (the default — the paper's
/// evaluation uses randomly generated transactions with no application rules).
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAll;

impl ValidityPredicate for AcceptAll {
    fn is_valid(&self, _header: &BlockHeader, _body: &Block) -> bool {
        true
    }
    fn name(&self) -> &str {
        "accept-all"
    }
}

/// Enforces per-block structural limits: at most `max_txs` transactions and at
/// most `max_tx_bytes` bytes per transaction payload.
#[derive(Clone, Copy, Debug)]
pub struct StructuralLimits {
    /// Maximal number of transactions in a block.
    pub max_txs: usize,
    /// Maximal payload size of a single transaction.
    pub max_tx_bytes: usize,
}

impl ValidityPredicate for StructuralLimits {
    fn is_valid(&self, _header: &BlockHeader, body: &Block) -> bool {
        body.txs.len() <= self.max_txs
            && body
                .txs
                .iter()
                .all(|t| t.payload.len() <= self.max_tx_bytes)
    }
    fn name(&self) -> &str {
        "structural-limits"
    }
}

/// Adapts a closure into a [`ValidityPredicate`] — convenient for examples and
/// application-specific rules (e.g. the insurance-consortium example rejects
/// claims referencing unknown policies).
pub struct PredicateFn<F>(pub F);

impl<F> ValidityPredicate for PredicateFn<F>
where
    F: Fn(&BlockHeader, &Block) -> bool + Send + Sync,
{
    fn is_valid(&self, header: &BlockHeader, body: &Block) -> bool {
        (self.0)(header, body)
    }
    fn name(&self) -> &str {
        "closure"
    }
}

/// The structural invariant every worker enforces regardless of the
/// application predicate: the header commits (via the merkle root) to exactly
/// the transactions in the body, and the declared counts match.
///
/// The cheap count checks run first; the merkle root goes through the
/// block's compute-once cache ([`block_payload_root`]), so re-validating the
/// same `Block` value — or one whose cache a worker pre-seeded from its
/// stored-body digest — does not re-hash β transactions.
pub fn structurally_consistent(header: &BlockHeader, body: &Block) -> bool {
    header.tx_count as usize == body.txs.len()
        && header.payload_bytes == body.payload_bytes()
        && header.payload_hash == block_payload_root(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::merkle_root;
    use fireledger_types::{NodeId, Round, Transaction, WorkerId, GENESIS_HASH};

    fn block(txs: Vec<Transaction>) -> (BlockHeader, Block) {
        let payload_hash = merkle_root(&txs);
        let payload_bytes = txs.iter().map(|t| t.payload.len() as u64).sum();
        let header = BlockHeader::new(
            Round(0),
            WorkerId(0),
            NodeId(0),
            GENESIS_HASH,
            payload_hash,
            txs.len() as u32,
            payload_bytes,
        );
        let block = Block::new(header.clone(), txs);
        (header, block)
    }

    #[test]
    fn accept_all_accepts() {
        let (h, b) = block(vec![Transaction::zeroed(0, 0, 10)]);
        assert!(AcceptAll.is_valid(&h, &b));
        assert_eq!(AcceptAll.name(), "accept-all");
    }

    #[test]
    fn structural_limits_enforced() {
        let p = StructuralLimits {
            max_txs: 2,
            max_tx_bytes: 100,
        };
        let (h, b) = block(vec![Transaction::zeroed(0, 0, 10)]);
        assert!(p.is_valid(&h, &b));
        let (h2, b2) = block((0..3).map(|i| Transaction::zeroed(0, i, 10)).collect());
        assert!(!p.is_valid(&h2, &b2));
        let (h3, b3) = block(vec![Transaction::zeroed(0, 0, 200)]);
        assert!(!p.is_valid(&h3, &b3));
    }

    #[test]
    fn closure_predicate_works() {
        let p = PredicateFn(|_: &BlockHeader, b: &Block| b.txs.len().is_multiple_of(2));
        let (h, b) = block(vec![
            Transaction::zeroed(0, 0, 1),
            Transaction::zeroed(0, 1, 1),
        ]);
        assert!(p.is_valid(&h, &b));
        let (h1, b1) = block(vec![Transaction::zeroed(0, 0, 1)]);
        assert!(!p.is_valid(&h1, &b1));
        assert_eq!(p.name(), "closure");
    }

    #[test]
    fn structural_consistency_detects_mismatches() {
        let (h, b) = block(vec![Transaction::zeroed(0, 0, 10)]);
        assert!(structurally_consistent(&h, &b));

        // Tampered body (different transaction set).
        let (_, other_body) = block(vec![Transaction::zeroed(9, 9, 10)]);
        assert!(!structurally_consistent(&h, &other_body));

        // Tampered declared count.
        let mut bad_header = h.clone();
        bad_header.tx_count = 5;
        assert!(!structurally_consistent(&bad_header, &b));

        // Tampered declared bytes.
        let mut bad_header = h;
        bad_header.payload_bytes = 1;
        assert!(!structurally_consistent(&bad_header, &b));
    }

    #[test]
    fn predicates_are_usable_as_trait_objects() {
        let shared: SharedValidity = Arc::new(AcceptAll);
        let (h, b) = block(vec![]);
        assert!(shared.is_valid(&h, &b));
    }
}
