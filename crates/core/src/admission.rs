//! Client ingress admission: the pipeline between a node's RPC listener and
//! its (sharded) [`crate::TxPool`].
//!
//! The north star serves "heavy traffic from millions of users"; what makes
//! that survivable is not raw pool throughput but *graceful refusal*. The
//! [`IngressGate`] sits in front of the pool and applies, in order:
//!
//! 1. **Availability** — a node that is catching up (the worker's
//!    [`crate::Synchronizer`] is active) answers
//!    [`SubmitStatus::Syncing`]; a node known to be down/paused answers
//!    [`SubmitStatus::Busy`]. Accepting work the node is about to lose
//!    would turn into silent loss; refusing it is the honest signal.
//! 2. **Dedup window** — a bounded window of recently admitted or committed
//!    `(client, seq)` ids answers [`SubmitStatus::Duplicate`], so retry
//!    storms after a lost ack do not double-admit.
//! 3. **Per-client token bucket** — integer-arithmetic rate limiting
//!    (deterministic under the simulator: the gate never reads a clock, the
//!    caller passes `now_nanos`), answering [`SubmitStatus::RateLimited`]
//!    with a computed retry hint.
//! 4. **Bounded queue with priority shedding** — admission is capped by the
//!    number of accepted-but-uncommitted transactions. Lanes shed
//!    asymmetrically (RED-style thresholds): [`Lane::Bulk`] is refused once
//!    the queue passes its low threshold, [`Lane::Normal`] past its high
//!    threshold, [`Lane::Probe`] only when the queue is full — so health
//!    probes keep landing while bulk traffic backs off first.
//!
//! Every refusal is a **typed, client-visible** status — the gate never
//! drops silently — and every count is exact, surfaced through
//! [`IngressGate::stats`] into the run report's `ingress` section.
//!
//! The gate is runtime-agnostic: the TCP listener, the threaded runtime's
//! channel port and the simulator's sliced driver all feed the same
//! [`IngressGate::handle`] entry point, which keeps the admission matrix
//! one implementation wide.

use fireledger_types::rpc::{Lane, RpcMsg, SubmitStatus};
use fireledger_types::{RejectReason, Round, Transaction};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Coarse node availability as seen by the admission gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Availability {
    /// Accepting work.
    Up,
    /// Catching up through state sync: client work would be accepted into a
    /// pool the node may discard — answer `Syncing` instead.
    Syncing,
    /// Crashed, paused or killed: answer `Busy` so clients fail over.
    Down,
}

/// Tuning knobs for the [`IngressGate`]. Defaults are sized for the soak
/// scenarios; every test overrides what it measures.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Recently-seen `(client, seq)` ids kept for duplicate suppression.
    ///
    /// **Eviction bound:** the window is FIFO over *admissions*, except that
    /// an id still inflight (accepted, not yet committed) is never evicted —
    /// its retry must stay `Duplicate` until it commits, or the same
    /// transaction could be admitted twice. Inflight ids are themselves
    /// bounded by `capacity`, so the dedup set holds at most
    /// `dedup_window + capacity` entries; an id that ages out becomes
    /// re-acceptable (clients are expected not to reuse a sequence number
    /// `dedup_window` admissions later). Pinned by
    /// `dedup_window_eviction_is_bounded_by_window_plus_capacity`.
    pub dedup_window: usize,
    /// Token-bucket refill rate per client, in transactions per second.
    /// `0` disables rate limiting.
    pub rate_per_sec: u64,
    /// Token-bucket burst capacity per client, in transactions.
    pub burst: u64,
    /// Bound on accepted-but-uncommitted transactions (the admission
    /// queue). Beyond it even probes shed.
    pub capacity: usize,
    /// Queue fill percentage past which [`Lane::Bulk`] sheds.
    pub bulk_shed_pct: u32,
    /// Queue fill percentage past which [`Lane::Normal`] sheds.
    pub normal_shed_pct: u32,
    /// Back-off hint attached to `Busy` rejections, in milliseconds.
    pub retry_after_ms: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            dedup_window: 4096,
            rate_per_sec: 0,
            burst: 64,
            capacity: 1024,
            bulk_shed_pct: 50,
            normal_shed_pct: 85,
            retry_after_ms: 20,
        }
    }
}

/// Micro-tokens per token: buckets are integer-only so identical call
/// sequences refill identically on every platform (no float drift).
const MICRO: u64 = 1_000_000;

#[derive(Clone, Copy, Debug)]
struct Bucket {
    micro_tokens: u64,
    last_refill_nanos: u64,
}

/// Mutable admission state, guarded by one mutex (admission is cheap: a few
/// hash operations per submit; the heavy lifting stays in the sharded pool).
#[derive(Debug, Default)]
struct Inner {
    /// Dedup window: membership set plus insertion ring for eviction.
    seen: HashSet<(u64, u64)>,
    seen_order: VecDeque<(u64, u64)>,
    /// Accepted-but-uncommitted ids, each with its admission lane (so the
    /// commit counters stay per-lane).
    inflight: HashMap<(u64, u64), Lane>,
    /// Per-client token buckets.
    buckets: HashMap<u64, Bucket>,
    /// Recent commit notifications for subscribers: `(round, tx_count)`.
    events: VecDeque<(u64, u32)>,
}

/// Exact per-lane admission counters (a snapshot of [`IngressGate::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Submissions admitted into the pool.
    pub accepted: u64,
    /// Admitted submissions later observed committed.
    pub committed: u64,
    /// Refused with `Busy` (queue bound or node down).
    pub shed_busy: u64,
    /// Refused with `RateLimited`.
    pub shed_rate_limited: u64,
    /// Refused with `Duplicate`.
    pub duplicate: u64,
    /// Refused with `Syncing`.
    pub rejected_syncing: u64,
}

impl LaneStats {
    /// Total refusals of every kind.
    pub fn shed_total(&self) -> u64 {
        self.shed_busy + self.shed_rate_limited + self.duplicate + self.rejected_syncing
    }
}

/// Per-gate admission statistics: one [`LaneStats`] per [`Lane`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Indexed by [`Lane::index`].
    pub lanes: [LaneStats; 3],
}

impl IngressStats {
    /// The stats of one lane.
    pub fn lane(&self, lane: Lane) -> &LaneStats {
        &self.lanes[lane.index()]
    }

    /// Total accepted across lanes.
    pub fn accepted(&self) -> u64 {
        self.lanes.iter().map(|l| l.accepted).sum()
    }

    /// Total refusals across lanes.
    pub fn shed(&self) -> u64 {
        self.lanes.iter().map(|l| l.shed_total()).sum()
    }
}

/// Atomic counters behind [`IngressStats`] (6 counters × 3 lanes).
#[derive(Debug, Default)]
struct LaneCounters {
    accepted: AtomicU64,
    committed: AtomicU64,
    shed_busy: AtomicU64,
    shed_rate_limited: AtomicU64,
    duplicate: AtomicU64,
    rejected_syncing: AtomicU64,
}

/// The admission gate. One per node; shared (`Arc`) between the node's RPC
/// listener, its event loop (availability mirroring) and the harness
/// (commit notification + stats).
#[derive(Debug)]
pub struct IngressGate {
    cfg: AdmissionConfig,
    inner: Mutex<Inner>,
    availability: AtomicU8,
    /// Definite (committed) round count, mirrored from delivery
    /// notifications — what `Query` answers.
    definite: AtomicU64,
    next_ticket: AtomicU64,
    counters: [LaneCounters; 3],
}

impl IngressGate {
    /// Creates a gate with the given admission policy, initially `Up`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        IngressGate {
            cfg,
            inner: Mutex::new(Inner::default()),
            availability: AtomicU8::new(0),
            definite: AtomicU64::new(0),
            next_ticket: AtomicU64::new(1),
            counters: Default::default(),
        }
    }

    /// The policy this gate was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Mirrors the node's availability into the gate. Called by the event
    /// loop (sync phase transitions) and the fault driver (crash/pause/kill
    /// windows).
    pub fn set_availability(&self, a: Availability) {
        let v = match a {
            Availability::Up => 0,
            Availability::Syncing => 1,
            Availability::Down => 2,
        };
        self.availability.store(v, Ordering::Release);
    }

    /// Current mirrored availability.
    pub fn availability(&self) -> Availability {
        match self.availability.load(Ordering::Acquire) {
            1 => Availability::Syncing,
            2 => Availability::Down,
            _ => Availability::Up,
        }
    }

    /// The definite (committed) round count the gate has been told about.
    pub fn definite(&self) -> Round {
        Round(self.definite.load(Ordering::Acquire))
    }

    /// Exact admission counters so far.
    pub fn stats(&self) -> IngressStats {
        let mut out = IngressStats::default();
        for (lane, c) in out.lanes.iter_mut().zip(&self.counters) {
            *lane = LaneStats {
                accepted: c.accepted.load(Ordering::Relaxed),
                committed: c.committed.load(Ordering::Relaxed),
                shed_busy: c.shed_busy.load(Ordering::Relaxed),
                shed_rate_limited: c.shed_rate_limited.load(Ordering::Relaxed),
                duplicate: c.duplicate.load(Ordering::Relaxed),
                rejected_syncing: c.rejected_syncing.load(Ordering::Relaxed),
            };
        }
        out
    }

    /// Admitted-but-uncommitted transaction count (the bounded queue's
    /// occupancy).
    pub fn inflight(&self) -> usize {
        self.inner.lock().expect("ingress gate").inflight.len()
    }

    /// Ids currently held for duplicate suppression — bounded by
    /// `dedup_window + capacity` (see [`AdmissionConfig::dedup_window`]).
    pub fn dedup_entries(&self) -> usize {
        self.inner.lock().expect("ingress gate").seen.len()
    }

    fn lane_limit(&self, lane: Lane) -> usize {
        let pct = |p: u32| (self.cfg.capacity.saturating_mul(p as usize)) / 100;
        match lane {
            Lane::Probe => self.cfg.capacity,
            Lane::Normal => pct(self.cfg.normal_shed_pct),
            Lane::Bulk => pct(self.cfg.bulk_shed_pct),
        }
    }

    /// Runs the admission pipeline for one submission. Pure with respect to
    /// time: the caller supplies `now_nanos` (simulated or wall-clock), so
    /// identical call sequences decide identically.
    pub fn try_submit(&self, client: u64, seq: u64, lane: Lane, now_nanos: u64) -> SubmitStatus {
        let c = &self.counters[lane.index()];
        match self.availability() {
            Availability::Up => {}
            Availability::Syncing => {
                c.rejected_syncing.fetch_add(1, Ordering::Relaxed);
                return SubmitStatus::Syncing;
            }
            Availability::Down => {
                c.shed_busy.fetch_add(1, Ordering::Relaxed);
                return SubmitStatus::Busy {
                    retry_after_ms: self.cfg.retry_after_ms,
                };
            }
        }
        let id = (client, seq);
        let mut inner = self.inner.lock().expect("ingress gate");
        if inner.seen.contains(&id) {
            drop(inner);
            c.duplicate.fetch_add(1, Ordering::Relaxed);
            return SubmitStatus::Duplicate;
        }
        if self.cfg.rate_per_sec > 0 {
            let burst_micro = self.cfg.burst.max(1).saturating_mul(MICRO);
            let rate = self.cfg.rate_per_sec;
            let bucket = inner.buckets.entry(client).or_insert(Bucket {
                micro_tokens: burst_micro,
                last_refill_nanos: now_nanos,
            });
            // Integer refill: rate tx/s over `elapsed` ns adds
            // rate · elapsed / 1000 micro-tokens (10⁶ micro per token,
            // 10⁹ ns per second).
            let elapsed = now_nanos.saturating_sub(bucket.last_refill_nanos);
            bucket.micro_tokens =
                burst_micro.min(bucket.micro_tokens + rate.saturating_mul(elapsed) / 1000);
            bucket.last_refill_nanos = now_nanos;
            if bucket.micro_tokens < MICRO {
                // Hint: time until one full token accrues.
                let deficit = MICRO - bucket.micro_tokens;
                let wait_ms = (deficit.saturating_mul(1000) / rate).div_ceil(1_000_000);
                drop(inner);
                c.shed_rate_limited.fetch_add(1, Ordering::Relaxed);
                return SubmitStatus::RateLimited {
                    retry_after_ms: wait_ms.max(1) as u32,
                };
            }
            bucket.micro_tokens -= MICRO;
        }
        if inner.inflight.len() >= self.lane_limit(lane).max(1) {
            drop(inner);
            c.shed_busy.fetch_add(1, Ordering::Relaxed);
            return SubmitStatus::Busy {
                retry_after_ms: self.cfg.retry_after_ms,
            };
        }
        inner.inflight.insert(id, lane);
        inner.seen.insert(id);
        inner.seen_order.push_back(id);
        // Eviction policy (see `AdmissionConfig::dedup_window`): drop the
        // oldest admitted ids down to the window, but never an id that is
        // still inflight — it rotates to the back instead (at most one
        // rotation per submit, so a stuck head cannot spin this loop). Each
        // submit adds one entry and an inflight entry stays counted against
        // `capacity`, so `seen` never exceeds `dedup_window + capacity`.
        while inner.seen_order.len() > self.cfg.dedup_window {
            if let Some(old) = inner.seen_order.pop_front() {
                if inner.inflight.contains_key(&old) {
                    inner.seen_order.push_back(old);
                    break;
                }
                inner.seen.remove(&old);
            }
        }
        drop(inner);
        c.accepted.fetch_add(1, Ordering::Relaxed);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        SubmitStatus::Accepted { ticket }
    }

    /// Notes a committed block: frees the admission-queue slots of its
    /// transactions, advances the definite tip, and records one subscriber
    /// event. `round` is the block's round; `txs` its transaction list.
    pub fn note_commit<'a>(&self, round: Round, txs: impl IntoIterator<Item = &'a Transaction>) {
        let mut inner = self.inner.lock().expect("ingress gate");
        let mut count = 0u32;
        for tx in txs {
            count += 1;
            if let Some(lane) = inner.inflight.remove(&tx.id()) {
                self.counters[lane.index()]
                    .committed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.events.push_back((round.0, count));
        while inner.events.len() > 1024 {
            inner.events.pop_front();
        }
        drop(inner);
        self.definite.fetch_max(round.0 + 1, Ordering::AcqRel);
    }

    /// Commit events with round `>= from`, oldest first — the poll-based
    /// feed behind [`RpcMsg::Subscribe`].
    pub fn events_since(&self, from: Round) -> Vec<(Round, u32)> {
        let inner = self.inner.lock().expect("ingress gate");
        inner
            .events
            .iter()
            .filter(|(r, _)| *r >= from.0)
            .map(|(r, n)| (Round(*r), *n))
            .collect()
    }

    /// Serves one client RPC message: the single dispatch point shared by
    /// every runtime's listener. Returns the reply to send back and, for an
    /// accepted submission, the transaction to hand the node.
    ///
    /// Server-only verbs arriving from a client (acks, replies, events) are
    /// protocol violations and answered with a typed [`RpcMsg::Reject`].
    pub fn handle(&self, msg: &RpcMsg, now_nanos: u64) -> (RpcMsg, Option<Transaction>) {
        match msg {
            RpcMsg::Submit {
                client,
                seq,
                lane,
                payload,
            } => {
                let status = self.try_submit(*client, *seq, *lane, now_nanos);
                let tx = status
                    .is_accepted()
                    .then(|| Transaction::new(*client, *seq, payload.clone()));
                (
                    RpcMsg::SubmitAck {
                        client: *client,
                        seq: *seq,
                        status,
                    },
                    tx,
                )
            }
            RpcMsg::Query { req } => (
                RpcMsg::QueryReply {
                    req: *req,
                    definite: self.definite(),
                },
                None,
            ),
            RpcMsg::Subscribe { from } => {
                // Immediate position marker; the listener then streams
                // subsequent commits through `events_since`.
                let evt = self
                    .events_since(*from)
                    .first()
                    .copied()
                    .unwrap_or((self.definite(), 0));
                (
                    RpcMsg::Event {
                        round: evt.0,
                        tx_count: evt.1,
                    },
                    None,
                )
            }
            RpcMsg::SubmitAck { .. }
            | RpcMsg::QueryReply { .. }
            | RpcMsg::Event { .. }
            | RpcMsg::Reject { .. } => (
                RpcMsg::Reject {
                    reason: RejectReason::BadMessage,
                },
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txpool::TxPool;

    fn gate(cfg: AdmissionConfig) -> IngressGate {
        IngressGate::new(cfg)
    }

    fn small() -> AdmissionConfig {
        AdmissionConfig {
            capacity: 10,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn accepts_then_dedups_until_committed_ids_age_out() {
        let g = gate(AdmissionConfig {
            dedup_window: 2,
            ..small()
        });
        assert!(g.try_submit(1, 0, Lane::Normal, 0).is_accepted());
        assert_eq!(g.try_submit(1, 0, Lane::Normal, 0), SubmitStatus::Duplicate);
        // Committing frees the queue slot but the window still dedups.
        g.note_commit(Round(0), [Transaction::zeroed(1, 0, 4)].iter());
        assert_eq!(g.try_submit(1, 0, Lane::Normal, 0), SubmitStatus::Duplicate);
        // Two more ids push (1, 0) out of the window.
        assert!(g.try_submit(1, 1, Lane::Normal, 0).is_accepted());
        g.note_commit(Round(1), [Transaction::zeroed(1, 1, 4)].iter());
        assert!(g.try_submit(1, 2, Lane::Normal, 0).is_accepted());
        g.note_commit(Round(2), [Transaction::zeroed(1, 2, 4)].iter());
        assert!(
            g.try_submit(1, 0, Lane::Normal, 0).is_accepted(),
            "aged-out id readmits"
        );
    }

    #[test]
    fn inflight_ids_survive_dedup_eviction() {
        // A window smaller than the inflight set must not evict an
        // uncommitted id — its retry has to stay Duplicate.
        let g = gate(AdmissionConfig {
            dedup_window: 1,
            ..small()
        });
        assert!(g.try_submit(1, 0, Lane::Normal, 0).is_accepted());
        assert!(g.try_submit(1, 1, Lane::Normal, 0).is_accepted());
        assert_eq!(g.try_submit(1, 0, Lane::Normal, 0), SubmitStatus::Duplicate);
        assert_eq!(g.try_submit(1, 1, Lane::Normal, 0), SubmitStatus::Duplicate);
    }

    #[test]
    fn dedup_window_eviction_is_bounded_by_window_plus_capacity() {
        // The documented eviction bound of `AdmissionConfig::dedup_window`:
        // the dedup set never exceeds dedup_window + capacity entries, no
        // matter how many ids flow through or how commits interleave.
        let (window, capacity) = (16usize, 8usize);
        let g = gate(AdmissionConfig {
            dedup_window: window,
            capacity,
            ..AdmissionConfig::default()
        });
        // Phase 1: pin half the capacity inflight (never committed), leaving
        // headroom so churn submits in phase 2 are not refused as Busy.
        let pinned = capacity / 2;
        for seq in 0..pinned as u64 {
            assert!(g.try_submit(1, seq, Lane::Probe, 0).is_accepted());
        }
        assert_eq!(g.inflight(), pinned);
        // Phase 2: churn many more ids through, committing each immediately
        // so the queue never refuses — the dedup set is what's under test.
        for seq in 0..500u64 {
            assert!(g.try_submit(2, seq, Lane::Probe, 0).is_accepted());
            g.note_commit(Round(seq), [Transaction::zeroed(2, seq, 4)].iter());
            assert!(
                g.dedup_entries() <= window + capacity,
                "dedup set grew past the documented bound at seq {seq}: {} > {}",
                g.dedup_entries(),
                window + capacity
            );
        }
        // The pinned inflight ids were never evicted…
        for seq in 0..pinned as u64 {
            assert_eq!(
                g.try_submit(1, seq, Lane::Probe, 0),
                SubmitStatus::Duplicate
            );
        }
        // …while churned ids older than the window aged out and readmit.
        assert!(g.try_submit(2, 0, Lane::Probe, 0).is_accepted());
        // Recent churned ids inside the window still dedup.
        assert_eq!(
            g.try_submit(2, 499, Lane::Probe, 0),
            SubmitStatus::Duplicate
        );
    }

    #[test]
    fn token_bucket_rate_limits_and_refills_deterministically() {
        let g = gate(AdmissionConfig {
            rate_per_sec: 10,
            burst: 2,
            capacity: 1000,
            ..AdmissionConfig::default()
        });
        // Burst of 2, then limited.
        assert!(g.try_submit(1, 0, Lane::Normal, 0).is_accepted());
        assert!(g.try_submit(1, 1, Lane::Normal, 0).is_accepted());
        let r = g.try_submit(1, 2, Lane::Normal, 0);
        let SubmitStatus::RateLimited { retry_after_ms } = r else {
            panic!("expected RateLimited, got {r:?}");
        };
        // 10 tx/s → one token per 100 ms.
        assert_eq!(retry_after_ms, 100);
        // 100 ms later exactly one more token has accrued.
        let t = 100_000_000u64;
        assert!(g.try_submit(1, 2, Lane::Normal, t).is_accepted());
        assert!(matches!(
            g.try_submit(1, 3, Lane::Normal, t),
            SubmitStatus::RateLimited { .. }
        ));
        // Another client has its own bucket.
        assert!(g.try_submit(2, 0, Lane::Normal, t).is_accepted());
        let stats = g.stats();
        assert_eq!(stats.lane(Lane::Normal).accepted, 4);
        assert_eq!(stats.lane(Lane::Normal).shed_rate_limited, 2);
    }

    #[test]
    fn lanes_shed_in_priority_order_with_exact_counts() {
        let g = gate(AdmissionConfig {
            capacity: 10,
            bulk_shed_pct: 50,
            normal_shed_pct: 80,
            ..AdmissionConfig::default()
        });
        // Fill to 5 (bulk limit): bulk sheds, normal and probe flow.
        for seq in 0..5 {
            assert!(g.try_submit(1, seq, Lane::Bulk, 0).is_accepted());
        }
        assert!(matches!(
            g.try_submit(1, 100, Lane::Bulk, 0),
            SubmitStatus::Busy { .. }
        ));
        // Fill to 8 (normal limit): normal sheds, probe still flows.
        for seq in 5..8 {
            assert!(g.try_submit(1, seq, Lane::Normal, 0).is_accepted());
        }
        assert!(matches!(
            g.try_submit(1, 101, Lane::Normal, 0),
            SubmitStatus::Busy { .. }
        ));
        // Fill to capacity: even probes shed.
        for seq in 8..10 {
            assert!(g.try_submit(1, seq, Lane::Probe, 0).is_accepted());
        }
        assert!(matches!(
            g.try_submit(1, 102, Lane::Probe, 0),
            SubmitStatus::Busy { .. }
        ));
        let stats = g.stats();
        assert_eq!(stats.lane(Lane::Bulk).shed_busy, 1);
        assert_eq!(stats.lane(Lane::Normal).shed_busy, 1);
        assert_eq!(stats.lane(Lane::Probe).shed_busy, 1);
        assert_eq!(stats.accepted(), 10);
        assert_eq!(g.inflight(), 10);
        // Commits free slots. At exactly the bulk threshold (5 of 10) bulk
        // still sheds; one more commit drops below it and bulk flows again.
        let committed: Vec<Transaction> = (0..5).map(|s| Transaction::zeroed(1, s, 4)).collect();
        g.note_commit(Round(0), committed.iter());
        assert_eq!(g.inflight(), 5);
        assert!(matches!(
            g.try_submit(1, 200, Lane::Bulk, 0),
            SubmitStatus::Busy { .. }
        ));
        g.note_commit(Round(1), [Transaction::zeroed(1, 5, 4)].iter());
        assert!(g.try_submit(1, 200, Lane::Bulk, 0).is_accepted());
        assert_eq!(g.stats().lane(Lane::Bulk).committed, 5);
    }

    #[test]
    fn syncing_and_down_nodes_refuse_typed() {
        let g = gate(small());
        g.set_availability(Availability::Syncing);
        assert_eq!(g.try_submit(1, 0, Lane::Normal, 0), SubmitStatus::Syncing);
        g.set_availability(Availability::Down);
        assert!(matches!(
            g.try_submit(1, 1, Lane::Normal, 0),
            SubmitStatus::Busy { .. }
        ));
        g.set_availability(Availability::Up);
        assert!(g.try_submit(1, 2, Lane::Normal, 0).is_accepted());
        let stats = g.stats();
        assert_eq!(stats.lane(Lane::Normal).rejected_syncing, 1);
        assert_eq!(stats.lane(Lane::Normal).shed_busy, 1);
        assert_eq!(stats.lane(Lane::Normal).accepted, 1);
    }

    #[test]
    fn handle_dispatches_every_verb() {
        let g = gate(small());
        let (reply, tx) = g.handle(
            &RpcMsg::Submit {
                client: 3,
                seq: 7,
                lane: Lane::Normal,
                payload: vec![9, 9],
            },
            0,
        );
        assert!(matches!(
            reply,
            RpcMsg::SubmitAck {
                client: 3,
                seq: 7,
                status: SubmitStatus::Accepted { .. }
            }
        ));
        assert_eq!(tx, Some(Transaction::new(3, 7, vec![9, 9])));

        g.note_commit(Round(4), [Transaction::new(3, 7, vec![9, 9])].iter());
        let (reply, tx) = g.handle(&RpcMsg::Query { req: 11 }, 0);
        assert_eq!(
            reply,
            RpcMsg::QueryReply {
                req: 11,
                definite: Round(5)
            }
        );
        assert!(tx.is_none());

        let (reply, _) = g.handle(&RpcMsg::Subscribe { from: Round(0) }, 0);
        assert_eq!(
            reply,
            RpcMsg::Event {
                round: Round(4),
                tx_count: 1
            }
        );

        // Server-only verbs are a typed protocol violation.
        let (reply, _) = g.handle(
            &RpcMsg::Event {
                round: Round(0),
                tx_count: 0,
            },
            0,
        );
        assert_eq!(
            reply,
            RpcMsg::Reject {
                reason: RejectReason::BadMessage
            }
        );
    }

    #[test]
    fn events_since_filters_by_round() {
        let g = gate(small());
        g.note_commit(Round(0), std::iter::empty());
        g.note_commit(Round(1), std::iter::empty());
        g.note_commit(Round(2), std::iter::empty());
        assert_eq!(g.events_since(Round(1)), vec![(Round(1), 0), (Round(2), 0)]);
        assert!(g.events_since(Round(3)).is_empty());
    }

    // --- satellite: sharded pool under sustained overflow, behind admission ---

    #[test]
    fn overflow_keeps_per_client_fifo_and_exact_shed_counts() {
        let g = gate(AdmissionConfig {
            capacity: 32,
            bulk_shed_pct: 100,
            normal_shed_pct: 100,
            ..AdmissionConfig::default()
        });
        let pool = TxPool::new(999);
        const CLIENTS: u64 = 4;
        const PER_CLIENT: u64 = 50;
        let mut accepted: Vec<(u64, u64)> = Vec::new();
        let mut shed = 0u64;
        // Sustained overflow: nobody commits, so the queue saturates at
        // `capacity` and every further submit sheds — with an exact count.
        for seq in 0..PER_CLIENT {
            for client in 0..CLIENTS {
                match g.try_submit(client, seq, Lane::Normal, 0) {
                    SubmitStatus::Accepted { .. } => {
                        assert!(pool.submit(Transaction::zeroed(client, seq, 8)));
                        accepted.push((client, seq));
                    }
                    SubmitStatus::Busy { .. } => shed += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(accepted.len(), 32, "admission bound ignored");
        assert_eq!(shed, CLIENTS * PER_CLIENT - 32);
        assert_eq!(g.stats().lane(Lane::Normal).shed_busy, shed);
        assert_eq!(g.stats().lane(Lane::Normal).accepted, 32);
        // The pool drains exactly the admitted set, per-client FIFO.
        let batch = pool.take_batch(1000, 8, false);
        assert_eq!(batch.len(), accepted.len());
        for client in 0..CLIENTS {
            let seqs: Vec<u64> = batch
                .iter()
                .filter(|t| t.client == client)
                .map(|t| t.seq)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "client {client} reordered under overflow");
        }
    }

    #[test]
    fn single_threaded_admitted_stream_is_bit_identical_to_unsharded_reference() {
        // With admission enabled, a single-threaded run through the sharded
        // pool must produce byte-for-byte the batches a plain FIFO would:
        // admission must not perturb order, content or encoding.
        use fireledger_types::WireCodec;
        let g = gate(AdmissionConfig {
            capacity: 64,
            rate_per_sec: 100_000,
            burst: 64,
            ..AdmissionConfig::default()
        });
        let pool = TxPool::new(7);
        let mut reference: VecDeque<Transaction> = VecDeque::new();
        let mut now = 0u64;
        for i in 0..200u64 {
            now += 1_000_000;
            let (client, seq) = (i % 5, i / 5);
            let tx = Transaction::new(client, seq, vec![(i % 251) as u8; 16]);
            if g.try_submit(client, seq, Lane::Normal, now).is_accepted() {
                assert!(pool.submit(tx.clone()));
                reference.push_back(tx);
            }
            // Drain in small batches mid-stream, like a proposer would.
            if i % 17 == 0 {
                let batch = pool.take_batch(8, 16, false);
                let expect: Vec<Transaction> = (0..batch.len())
                    .filter_map(|_| reference.pop_front())
                    .collect();
                let got: Vec<u8> = batch.iter().flat_map(|t| t.encode()).collect();
                let want: Vec<u8> = expect.iter().flat_map(|t| t.encode()).collect();
                assert_eq!(got, want, "sharded batch diverged at i={i}");
                let committed: Vec<Transaction> = batch;
                g.note_commit(Round(i), committed.iter());
            }
        }
        let batch = pool.take_batch(10_000, 16, false);
        let got: Vec<u8> = batch.iter().flat_map(|t| t.encode()).collect();
        let want: Vec<u8> = reference.iter().flat_map(|t| t.encode()).collect();
        assert_eq!(got, want, "final drain diverged");
    }
}
