//! The benign failure detector of §6.1.1.
//!
//! Without it, a crashed proposer forces every node to wait out the full
//! (ever-growing) WRB timeout each time the round-robin reaches it. The
//! detector keeps a *suspected list* of at most `f` nodes that the local node
//! has waited for the longest (and beyond a threshold); when a suspected node
//! is the round's proposer, the node votes against delivery immediately
//! instead of waiting.
//!
//! Two invalidation rules preserve liveness and non-triviality:
//! * the list is cleared whenever the proposer-skip rule of Algorithm 2
//!   (lines b1–b3) skips a node that is among the last `f` proposers — this
//!   guarantees some correct, unsuspected node gets to propose; and
//! * the list is cleared when Byzantine activity is detected, so that no more
//!   than `f` nodes are ever treated as faulty at once.

use fireledger_types::NodeId;
use std::collections::HashMap;
use std::time::Duration;

/// A per-worker benign failure detector.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    /// Maximal number of nodes that may be suspected simultaneously (`f`).
    capacity: usize,
    /// A node is suspected once its accumulated waiting time exceeds this.
    threshold: Duration,
    /// Accumulated time spent waiting on each node.
    waited: HashMap<NodeId, Duration>,
    suspected: Vec<NodeId>,
    enabled: bool,
}

impl FailureDetector {
    /// Creates a detector that suspects at most `capacity` (= f) nodes, each
    /// after `threshold` of accumulated waiting.
    pub fn new(capacity: usize, threshold: Duration, enabled: bool) -> Self {
        FailureDetector {
            capacity,
            threshold,
            waited: HashMap::new(),
            suspected: Vec::new(),
            enabled,
        }
    }

    /// Whether `node` is currently suspected.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.enabled && self.suspected.contains(&node)
    }

    /// The current suspected list.
    pub fn suspected(&self) -> &[NodeId] {
        &self.suspected
    }

    /// Records that the local node waited `duration` for `node` (a timed-out
    /// WRB delivery with `node` as the proposer).
    pub fn record_wait(&mut self, node: NodeId, duration: Duration) {
        if !self.enabled {
            return;
        }
        let total = self.waited.entry(node).or_insert(Duration::ZERO);
        *total += duration;
        if *total >= self.threshold
            && !self.suspected.contains(&node)
            && self.suspected.len() < self.capacity
        {
            self.suspected.push(node);
        }
    }

    /// Records a successful delivery from `node`: it is clearly alive, so its
    /// accumulated wait is cleared and it is removed from the suspected list.
    pub fn record_alive(&mut self, node: NodeId) {
        self.waited.remove(&node);
        self.suspected.retain(|s| *s != node);
    }

    /// Invalidates the whole suspected list (proposer-skip interaction or
    /// detected Byzantine activity, §6.1.1).
    pub fn invalidate(&mut self) {
        self.waited.clear();
        self.suspected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> FailureDetector {
        FailureDetector::new(2, Duration::from_millis(100), true)
    }

    #[test]
    fn suspicion_requires_accumulated_threshold() {
        let mut d = fd();
        d.record_wait(NodeId(3), Duration::from_millis(60));
        assert!(!d.is_suspected(NodeId(3)));
        d.record_wait(NodeId(3), Duration::from_millis(60));
        assert!(d.is_suspected(NodeId(3)));
    }

    #[test]
    fn at_most_capacity_nodes_are_suspected() {
        let mut d = fd();
        for i in 0..4u32 {
            d.record_wait(NodeId(i), Duration::from_millis(500));
        }
        assert_eq!(d.suspected().len(), 2);
        assert!(d.is_suspected(NodeId(0)));
        assert!(d.is_suspected(NodeId(1)));
        assert!(!d.is_suspected(NodeId(2)));
    }

    #[test]
    fn alive_nodes_are_unsuspected() {
        let mut d = fd();
        d.record_wait(NodeId(1), Duration::from_millis(200));
        assert!(d.is_suspected(NodeId(1)));
        d.record_alive(NodeId(1));
        assert!(!d.is_suspected(NodeId(1)));
        // The accumulated wait was cleared too.
        d.record_wait(NodeId(1), Duration::from_millis(60));
        assert!(!d.is_suspected(NodeId(1)));
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut d = fd();
        d.record_wait(NodeId(0), Duration::from_millis(500));
        d.record_wait(NodeId(1), Duration::from_millis(500));
        d.invalidate();
        assert!(d.suspected().is_empty());
        d.record_wait(NodeId(0), Duration::from_millis(50));
        assert!(!d.is_suspected(NodeId(0)));
    }

    #[test]
    fn disabled_detector_never_suspects() {
        let mut d = FailureDetector::new(2, Duration::from_millis(1), false);
        d.record_wait(NodeId(0), Duration::from_secs(10));
        assert!(!d.is_suspected(NodeId(0)));
        assert!(d.suspected().is_empty());
    }
}
