//! Proposer rotation.
//!
//! FireLedger rotates the proposer role round-robin (a well-known defence
//! against performance attacks on a fixed primary, §1). Two refinements from
//! the paper are implemented here:
//!
//! * the **skip rule** of Algorithm 2 (lines b1–b3): a node whose block was
//!   tentatively decided within the last `f` rounds is skipped, which is what
//!   guarantees that any `f + 1` consecutive decided blocks come from `f + 1`
//!   distinct proposers (Lemma 5.3.2);
//! * the **pseudo-random permutation** of §6.1.1 ("Consecutive Byzantine
//!   Proposers"): the round-robin order can be re-shuffled from a seed that is
//!   unpredictable to the adversary (e.g. a decided block's hash, standing in
//!   for the paper's VRF), so Byzantine nodes cannot park themselves on
//!   consecutive positions forever.

use fireledger_types::{ClusterConfig, DetRng, Hash, NodeId, Round};
use std::collections::HashMap;

/// The outcome of selecting the proposer for a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProposerChoice {
    /// The selected proposer.
    pub proposer: NodeId,
    /// Nodes that were skipped by the rule, in skip order.
    pub skipped: Vec<NodeId>,
}

/// Deterministic proposer-rotation state shared by all correct nodes.
#[derive(Clone, Debug)]
pub struct ProposerRotation {
    cluster: ClusterConfig,
    /// Rotation order: `order[i]` proposes at position `i` of the cycle.
    order: Vec<NodeId>,
    /// Round at which each node's block was most recently tentatively decided.
    last_decided: HashMap<NodeId, Round>,
}

impl ProposerRotation {
    /// Creates the identity rotation `p0, p1, …, p_{n−1}`.
    pub fn new(cluster: ClusterConfig) -> Self {
        ProposerRotation {
            cluster,
            order: cluster.nodes().collect(),
            last_decided: HashMap::new(),
        }
    }

    /// The first proposer of the chain (position 0 of the order).
    pub fn initial(&self) -> NodeId {
        self.order[0]
    }

    /// The current rotation order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `node` in the rotation order.
    fn position(&self, node: NodeId) -> usize {
        self.order
            .iter()
            .position(|p| *p == node)
            .expect("node is part of the rotation")
    }

    /// The node that follows `node` in the rotation order.
    pub fn successor(&self, node: NodeId) -> NodeId {
        let pos = self.position(node);
        self.order[(pos + 1) % self.order.len()]
    }

    /// Records that `proposer`'s block was tentatively decided in `round`.
    pub fn record_decided(&mut self, proposer: NodeId, round: Round) {
        let entry = self.last_decided.entry(proposer).or_insert(round);
        if round >= *entry {
            *entry = round;
        }
    }

    /// Whether `node` is eligible to propose in `round` under the skip rule:
    /// its block must not have been tentatively decided in the last `f`
    /// rounds.
    pub fn eligible(&self, node: NodeId, round: Round) -> bool {
        match self.last_decided.get(&node) {
            None => true,
            Some(decided) => decided.plus(self.cluster.f as u64) < round,
        }
    }

    /// Applies the skip rule starting from `candidate` (inclusive) for
    /// `round`, returning the chosen proposer and any skipped nodes.
    ///
    /// The rule can skip at most `f` nodes before reaching one that has not
    /// proposed recently, so the loop always terminates.
    pub fn select(&self, candidate: NodeId, round: Round) -> ProposerChoice {
        let mut skipped = Vec::new();
        let mut current = candidate;
        for _ in 0..self.order.len() {
            if self.eligible(current, round) {
                return ProposerChoice {
                    proposer: current,
                    skipped,
                };
            }
            skipped.push(current);
            current = self.successor(current);
        }
        // Every node proposed recently (impossible with n ≥ 3f+1 > f+1, but
        // return the candidate rather than loop forever).
        ProposerChoice {
            proposer: candidate,
            skipped,
        }
    }

    /// Whether any of `skipped` proposed within the last `f` decided rounds —
    /// the condition under which the failure detector's suspected list must be
    /// invalidated (§6.1.1).
    pub fn skip_touches_recent_proposers(&self, skipped: &[NodeId], round: Round) -> bool {
        skipped.iter().any(|p| !self.eligible(*p, round))
    }

    /// Re-shuffles the rotation order from a seed derived from `entropy`
    /// (typically a decided block's hash — the paper's VRF stand-in). All
    /// correct nodes call this with the same entropy and therefore derive the
    /// same order.
    pub fn reshuffle(&mut self, entropy: &Hash) {
        let mut rng = DetRng::from_seed_bytes(entropy.as_bytes());
        self.order = self.cluster.nodes().collect();
        rng.shuffle(&mut self.order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotation(n: usize) -> ProposerRotation {
        ProposerRotation::new(ClusterConfig::new(n))
    }

    #[test]
    fn identity_order_and_successor() {
        let r = rotation(4);
        assert_eq!(r.initial(), NodeId(0));
        assert_eq!(r.successor(NodeId(0)), NodeId(1));
        assert_eq!(r.successor(NodeId(3)), NodeId(0));
        assert_eq!(r.order().len(), 4);
    }

    #[test]
    fn fresh_nodes_are_always_eligible() {
        let r = rotation(4);
        for i in 0..4u32 {
            assert!(r.eligible(NodeId(i), Round(0)));
        }
        let choice = r.select(NodeId(2), Round(0));
        assert_eq!(choice.proposer, NodeId(2));
        assert!(choice.skipped.is_empty());
    }

    #[test]
    fn recent_proposers_are_skipped() {
        let mut r = rotation(4); // f = 1
        r.record_decided(NodeId(1), Round(9));
        // Round 10: node 1 proposed in the last f = 1 rounds → skipped.
        let choice = r.select(NodeId(1), Round(10));
        assert_eq!(choice.proposer, NodeId(2));
        assert_eq!(choice.skipped, vec![NodeId(1)]);
        assert!(r.skip_touches_recent_proposers(&choice.skipped, Round(10)));
        // Round 11: the block is now f + 1 rounds old → eligible again.
        assert!(r.eligible(NodeId(1), Round(11)));
    }

    #[test]
    fn consecutive_skips_respect_f() {
        let mut r = rotation(10); // f = 3
        r.record_decided(NodeId(4), Round(20));
        r.record_decided(NodeId(5), Round(21));
        r.record_decided(NodeId(6), Round(22));
        let choice = r.select(NodeId(4), Round(23));
        assert_eq!(choice.proposer, NodeId(7));
        assert_eq!(choice.skipped, vec![NodeId(4), NodeId(5), NodeId(6)]);
    }

    #[test]
    fn normal_round_robin_never_skips() {
        // In steady state each node proposes every n rounds, far beyond f.
        let mut r = rotation(7); // f = 2
        let mut proposer = r.initial();
        for round in 0..50u64 {
            let choice = r.select(proposer, Round(round));
            assert!(
                choice.skipped.is_empty(),
                "unexpected skip at round {round}"
            );
            r.record_decided(choice.proposer, Round(round));
            proposer = r.successor(choice.proposer);
        }
    }

    #[test]
    fn record_decided_keeps_the_latest_round() {
        let mut r = rotation(4);
        r.record_decided(NodeId(0), Round(5));
        r.record_decided(NodeId(0), Round(3));
        assert!(!r.eligible(NodeId(0), Round(6)));
        assert!(r.eligible(NodeId(0), Round(7)));
    }

    #[test]
    fn reshuffle_is_deterministic_and_complete() {
        let mut a = rotation(10);
        let mut b = rotation(10);
        let entropy = Hash([7u8; 32]);
        a.reshuffle(&entropy);
        b.reshuffle(&entropy);
        assert_eq!(a.order(), b.order());
        // It is a permutation of all nodes.
        let mut sorted = a.order().to_vec();
        sorted.sort();
        assert_eq!(sorted, (0..10u32).map(NodeId).collect::<Vec<_>>());
        // Different entropy gives (almost surely) a different order.
        let mut c = rotation(10);
        c.reshuffle(&Hash([8u8; 32]));
        assert_ne!(a.order(), c.order());
    }

    #[test]
    fn select_terminates_even_if_everyone_is_recent() {
        let mut r = rotation(4);
        for i in 0..4u32 {
            r.record_decided(NodeId(i), Round(10));
        }
        let choice = r.select(NodeId(0), Round(10));
        assert_eq!(choice.proposer, NodeId(0));
        assert_eq!(choice.skipped.len(), 4);
    }
}
