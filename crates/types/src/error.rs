//! Error types shared across the workspace.

use crate::ids::{NodeId, Round};
use std::fmt;

/// Convenience result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the FireLedger crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A signature failed to verify.
    InvalidSignature {
        /// The claimed signer.
        signer: NodeId,
        /// Human-readable context.
        context: String,
    },
    /// A block or header failed chain validation (wrong parent hash, wrong
    /// round, wrong proposer, ...).
    InvalidBlock {
        /// Round of the offending block.
        round: Round,
        /// Human-readable reason.
        reason: String,
    },
    /// A recovery version failed validation.
    InvalidVersion {
        /// The node that sent the version.
        from: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// A message referenced an unknown node.
    UnknownNode(NodeId),
    /// A key was requested for a node that has no registered key.
    MissingKey(NodeId),
    /// Serialization / deserialization failure.
    Codec(String),
    /// An operating-system I/O failure (socket setup, read, write).
    Io(String),
    /// The operation is not valid in the component's current state.
    InvalidState(String),
    /// A configuration value is out of range.
    Config(String),
    /// A cluster configuration schedules more faulty nodes (crashing +
    /// Byzantine) than the `f` its size tolerates. BFT guarantees are void
    /// beyond `f`, so such an experiment must fail loudly at build time
    /// instead of silently producing meaningless results.
    FaultBudgetExceeded {
        /// Number of nodes with a faulty role.
        faulty: usize,
        /// The cluster's fault tolerance `f = ⌊(n − 1) / 3⌋`.
        f: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSignature { signer, context } => {
                write!(f, "invalid signature from {signer}: {context}")
            }
            Error::InvalidBlock { round, reason } => {
                write!(f, "invalid block at {round}: {reason}")
            }
            Error::InvalidVersion { from, reason } => {
                write!(f, "invalid recovery version from {from}: {reason}")
            }
            Error::UnknownNode(id) => write!(f, "unknown node {id}"),
            Error::MissingKey(id) => write!(f, "no key registered for {id}"),
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::FaultBudgetExceeded { faulty, f: tol } => write!(
                f,
                "fault budget exceeded: {faulty} faulty node(s) scheduled but the cluster tolerates f = {tol}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::InvalidSignature {
            signer: NodeId(3),
            context: "header".into(),
        };
        assert_eq!(e.to_string(), "invalid signature from p3: header");

        let e = Error::InvalidBlock {
            round: Round(7),
            reason: "parent mismatch".into(),
        };
        assert_eq!(e.to_string(), "invalid block at r7: parent mismatch");

        assert_eq!(
            Error::MissingKey(NodeId(1)).to_string(),
            "no key registered for p1"
        );
        assert_eq!(Error::UnknownNode(NodeId(9)).to_string(), "unknown node p9");
    }

    #[test]
    fn fault_budget_error_carries_both_counts() {
        let e = Error::FaultBudgetExceeded { faulty: 3, f: 1 };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("f = 1"), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Error::Codec("x".into()));
    }
}
