//! # fireledger-types
//!
//! Foundational data types shared by every crate in the FireLedger workspace:
//! node / worker / round identifiers, transactions, blocks and block headers,
//! cluster configuration, a wire-size model used by the network simulator,
//! the binary wire [`codec`] (spec: `docs/WIRE_FORMAT.md`) used by the TCP
//! runtime, and the runtime-agnostic [`runtime::Protocol`] state-machine
//! abstraction that lets the same protocol code run under the discrete-event
//! simulator (`fireledger-sim`) and the real-time runtimes
//! (`fireledger-net`).
//!
//! The types in this crate are intentionally free of cryptographic and I/O
//! dependencies; hashing and signing live in `fireledger-crypto`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod bytes;
pub mod codec;
pub mod config;
pub mod error;
pub mod faults;
pub mod ids;
pub mod ops;
pub mod persist;
pub mod rng;
pub mod rpc;
pub mod runtime;
pub mod sync;
pub mod transaction;
pub mod wire;

pub use block::{
    Block, BlockHeader, CanonicalBytes, Hash, HashMemo, SigMemo, Signature, SignedHeader,
    GENESIS_HASH,
};
pub use bytes::Bytes;
pub use codec::{CodecError, FrameHeader, Reader, WireCodec, MAX_FRAME_LEN, WIRE_VERSION};
pub use config::{ClusterConfig, FillOps, ProtocolParams};
pub use error::{Error, Result};
pub use faults::{
    DiskFault, FaultPlan, FaultWindow, KillFault, LinkDecision, LinkFault, LinkFaultEngine,
    LinkFaultKind, LinkSelector, NodeFault, Partition,
};
pub use ids::{NodeId, Round, WorkerId};
pub use ops::{DecodedOp, Receipt, TxOp, MAX_KV_VALUE, OP_MAGIC};
pub use persist::{StoredBlock, WalRecord, WAL_LOCKED, WAL_ROUND, WAL_VOTE};
pub use rng::DetRng;
pub use rpc::{Lane, RejectReason, RpcMsg, SubmitStatus, MAX_RPC_PAYLOAD};
pub use runtime::{Action, Delivery, Observation, Outbox, Protocol, TimerId};
pub use sync::{SyncMsg, MAX_SYNC_BODIES, MAX_SYNC_HEADERS};
pub use transaction::Transaction;
pub use wire::WireSize;
