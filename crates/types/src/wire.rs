//! Wire-size accounting.
//!
//! The discrete-event simulator charges each message with a transmission time
//! of `size / bandwidth + latency`, so every message type must report a
//! realistic serialized size. We use an explicit trait instead of measuring
//! `serde` output so that size accounting is cheap (no allocation on the hot
//! path) and deterministic.

/// Types that can report their (approximate) serialized size in bytes.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSize for u8 {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_size(&self) -> usize {
        self.as_ref().wire_size()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(true.wire_size(), 1);
        assert_eq!(7u8.wire_size(), 1);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(7u64.wire_size(), 8);
    }

    #[test]
    fn option_adds_tag_byte() {
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!(Some(1u64).wire_size(), 9);
    }

    #[test]
    fn vec_adds_length_prefix() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.wire_size(), 4 + 12);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.wire_size(), 4);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u64).wire_size(), 12);
        assert_eq!(Box::new(5u64).wire_size(), 8);
    }
}
