//! State-sync messages: the late-join / catch-up block-fetch sub-protocol.
//!
//! A node that is behind the cluster — freshly late-joined, restarted from
//! disk with a stale WAL tip, or back from the wrong side of a partition —
//! closes the gap by *fetching* the definite ledger prefix from its peers
//! instead of waiting for normal protocol traffic to replay it. The
//! exchange is a classic range protocol over `[from, to)` rounds:
//!
//! 1. [`SyncMsg::TipProbe`] / [`SyncMsg::TipReply`] discover how far each
//!    peer's **definite** prefix reaches;
//! 2. [`SyncMsg::GetHeaders`] / [`SyncMsg::HeadersReply`] fetch the signed
//!    header chain for a round range, which the requester verifies against
//!    its own tip (hash chain + signatures + the f+1-distinct-proposers
//!    rule) **before** downloading a single body byte;
//! 3. [`SyncMsg::GetBlocks`] / [`SyncMsg::BlocksReply`] fetch the block
//!    bodies, each checked against its verified header's payload (merkle)
//!    hash.
//!
//! Every message carries the requester's `req` nonce; replies that do not
//! match the in-flight nonce (duplicates, reordered stragglers, unsolicited
//! pushes) are discarded, so at-least-once networks cannot confuse the
//! state machine. Responses are **batched with a hard cap**
//! ([`MAX_SYNC_HEADERS`], [`MAX_SYNC_BODIES`]) so a serving node never
//! assembles an unbounded reply; the requester simply issues the next range.
//!
//! The driving state machine lives in `fireledger-core`'s `sync` module;
//! this module only defines the wire vocabulary (WIRE_FORMAT.md §10) so the
//! TCP runtime and the store-recovery path share one set of codecs.

use crate::block::SignedHeader;
use crate::codec::{CodecError, Reader, WireCodec};
use crate::ids::Round;
use crate::transaction::Transaction;
use crate::wire::WireSize;

/// Hard cap on the number of headers one [`SyncMsg::HeadersReply`] may
/// carry. A server clamps every requested range to this many rounds; a
/// requester never asks for more.
pub const MAX_SYNC_HEADERS: usize = 512;

/// Hard cap on the number of block bodies one [`SyncMsg::BlocksReply`] may
/// carry. Bodies dominate bandwidth, so the cap is far smaller than the
/// header cap.
pub const MAX_SYNC_BODIES: usize = 64;

/// A state-sync message (WIRE_FORMAT.md §10). All ranges are `[from, to)`
/// over rounds of one worker's ledger; the `req` nonce binds replies to the
/// request they answer.
#[derive(Clone, Debug, PartialEq)]
pub enum SyncMsg {
    /// "How far does your definite prefix reach?" — broadcast by a node
    /// entering sync to find the cluster's tip and candidate servers.
    TipProbe {
        /// Requester's nonce, echoed by [`SyncMsg::TipReply`].
        req: u64,
    },
    /// Reply to [`SyncMsg::TipProbe`]: the responder's definite-prefix
    /// length (equivalently: the first non-definite round).
    TipReply {
        /// The probe's nonce.
        req: u64,
        /// Number of definite blocks the responder holds.
        definite: Round,
    },
    /// Request the signed headers of rounds `[from, to)`.
    GetHeaders {
        /// Requester's nonce, echoed by [`SyncMsg::HeadersReply`].
        req: u64,
        /// First round requested.
        from: Round,
        /// One past the last round requested.
        to: Round,
    },
    /// Reply to [`SyncMsg::GetHeaders`]: consecutive headers starting at
    /// `from`, at most [`MAX_SYNC_HEADERS`] of them (the server clamps; a
    /// shorter-than-requested reply means the server's definite prefix ends
    /// there).
    HeadersReply {
        /// The request's nonce.
        req: u64,
        /// Round of the first header.
        from: Round,
        /// The headers, in round order.
        headers: Vec<SignedHeader>,
    },
    /// Request the block bodies of rounds `[from, to)` — issued only after
    /// the headers of the same range passed chain verification.
    GetBlocks {
        /// Requester's nonce, echoed by [`SyncMsg::BlocksReply`].
        req: u64,
        /// First round requested.
        from: Round,
        /// One past the last round requested.
        to: Round,
    },
    /// Reply to [`SyncMsg::GetBlocks`]: the transaction lists of consecutive
    /// rounds starting at `from`, at most [`MAX_SYNC_BODIES`] of them.
    BlocksReply {
        /// The request's nonce.
        req: u64,
        /// Round of the first body.
        from: Round,
        /// One transaction list per round, in round order.
        bodies: Vec<Vec<Transaction>>,
    },
}

impl SyncMsg {
    /// The nonce carried by any sync message.
    pub fn req(&self) -> u64 {
        match self {
            SyncMsg::TipProbe { req }
            | SyncMsg::TipReply { req, .. }
            | SyncMsg::GetHeaders { req, .. }
            | SyncMsg::HeadersReply { req, .. }
            | SyncMsg::GetBlocks { req, .. }
            | SyncMsg::BlocksReply { req, .. } => *req,
        }
    }
}

impl WireSize for SyncMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            SyncMsg::TipProbe { .. } => 8,
            SyncMsg::TipReply { .. } => 8 + 8,
            SyncMsg::GetHeaders { .. } | SyncMsg::GetBlocks { .. } => 8 + 8 + 8,
            SyncMsg::HeadersReply { headers, .. } => 8 + 8 + headers.wire_size(),
            SyncMsg::BlocksReply { bodies, .. } => 8 + 8 + bodies.wire_size(),
        }
    }
}

/// Layout per WIRE_FORMAT.md §10: a discriminant byte (`0x01` TipProbe
/// through `0x06` BlocksReply) followed by the variant's fields in
/// declaration order.
impl WireCodec for SyncMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            SyncMsg::TipProbe { req } => {
                out.push(1);
                req.encode_to(out);
            }
            SyncMsg::TipReply { req, definite } => {
                out.push(2);
                req.encode_to(out);
                definite.encode_to(out);
            }
            SyncMsg::GetHeaders { req, from, to } => {
                out.push(3);
                req.encode_to(out);
                from.encode_to(out);
                to.encode_to(out);
            }
            SyncMsg::HeadersReply { req, from, headers } => {
                out.push(4);
                req.encode_to(out);
                from.encode_to(out);
                headers.encode_to(out);
            }
            SyncMsg::GetBlocks { req, from, to } => {
                out.push(5);
                req.encode_to(out);
                from.encode_to(out);
                to.encode_to(out);
            }
            SyncMsg::BlocksReply { req, from, bodies } => {
                out.push(6);
                req.encode_to(out);
                from.encode_to(out);
                bodies.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => Ok(SyncMsg::TipProbe {
                req: u64::decode_from(r)?,
            }),
            2 => Ok(SyncMsg::TipReply {
                req: u64::decode_from(r)?,
                definite: Round::decode_from(r)?,
            }),
            3 => Ok(SyncMsg::GetHeaders {
                req: u64::decode_from(r)?,
                from: Round::decode_from(r)?,
                to: Round::decode_from(r)?,
            }),
            4 => Ok(SyncMsg::HeadersReply {
                req: u64::decode_from(r)?,
                from: Round::decode_from(r)?,
                headers: Vec::<SignedHeader>::decode_from(r)?,
            }),
            5 => Ok(SyncMsg::GetBlocks {
                req: u64::decode_from(r)?,
                from: Round::decode_from(r)?,
                to: Round::decode_from(r)?,
            }),
            6 => Ok(SyncMsg::BlocksReply {
                req: u64::decode_from(r)?,
                from: Round::decode_from(r)?,
                bodies: Vec::<Vec<Transaction>>::decode_from(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "SyncMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            SyncMsg::TipProbe { .. } => 8,
            SyncMsg::TipReply { .. } => 8 + 8,
            SyncMsg::GetHeaders { .. } | SyncMsg::GetBlocks { .. } => 8 + 8 + 8,
            SyncMsg::HeadersReply { headers, .. } => 8 + 8 + headers.encoded_len(),
            SyncMsg::BlocksReply { bodies, .. } => 8 + 8 + bodies.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockHeader, Signature};
    use crate::ids::{NodeId, WorkerId};
    use crate::GENESIS_HASH;

    fn signed_header() -> SignedHeader {
        SignedHeader::new(
            BlockHeader::new(
                Round(3),
                WorkerId(0),
                NodeId(1),
                GENESIS_HASH,
                GENESIS_HASH,
                10,
                5120,
            ),
            Signature::from(vec![0u8; 64]),
        )
    }

    fn every_sync_msg() -> Vec<SyncMsg> {
        vec![
            SyncMsg::TipProbe { req: 7 },
            SyncMsg::TipReply {
                req: 7,
                definite: Round(4000),
            },
            SyncMsg::GetHeaders {
                req: 8,
                from: Round(10),
                to: Round(20),
            },
            SyncMsg::HeadersReply {
                req: 8,
                from: Round(10),
                headers: vec![signed_header(); 2],
            },
            SyncMsg::GetBlocks {
                req: 9,
                from: Round(10),
                to: Round(12),
            },
            SyncMsg::BlocksReply {
                req: 9,
                from: Round(10),
                bodies: vec![
                    vec![Transaction::zeroed(1, 0, 64)],
                    vec![Transaction::new(2, 1, vec![7, 8])],
                ],
            },
        ]
    }

    #[test]
    fn codec_roundtrips_every_sync_msg_variant() {
        for msg in every_sync_msg() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len(), "{msg:?}");
            assert_eq!(SyncMsg::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn codec_rejects_unknown_sync_discriminants() {
        assert!(matches!(
            SyncMsg::decode(&[0xEE]),
            Err(CodecError::BadTag {
                what: "SyncMsg",
                ..
            })
        ));
    }

    #[test]
    fn truncating_any_prefix_never_panics() {
        for msg in every_sync_msg() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let _ = SyncMsg::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn requests_are_tiny_and_replies_scale_with_content() {
        let get = SyncMsg::GetHeaders {
            req: 1,
            from: Round(0),
            to: Round(512),
        };
        assert!(
            get.wire_size() < 32,
            "range requests must stay constant-size"
        );
        let reply = SyncMsg::HeadersReply {
            req: 1,
            from: Round(0),
            headers: vec![signed_header(); 8],
        };
        assert!(reply.wire_size() > 8 * signed_header().wire_size());
    }
}
