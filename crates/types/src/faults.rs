//! Declarative, runtime-agnostic fault injection.
//!
//! A [`FaultPlan`] is a plain value describing *everything adverse that
//! happens to a cluster's network and nodes* during a run: link faults
//! (drop / delay / reorder / duplicate), network partitions (split at an
//! offset, heal at a later one), and node faults (crash, or crash followed
//! by recovery). The same value is compiled into a per-runtime interceptor —
//! the simulator's `PlanAdversary`, the threaded runtime's link shim, and
//! the TCP runtime's frame interceptor — so one plan exercises all three
//! runtimes identically (see `docs/SCENARIOS.md` for the catalog of
//! supported plans).
//!
//! ## Determinism
//!
//! Every random choice a plan makes is drawn from a **per-link**
//! deterministic RNG seeded from `(plan seed, from, to)`. Two consequences:
//!
//! * on the deterministic simulator, the same `(scenario seed, plan)` pair
//!   reproduces the exact same faulty execution, byte for byte;
//! * on the real-time runtimes, the *decision sequence per link* is a pure
//!   function of the plan seed and the number of messages the link carried —
//!   independent of thread scheduling on other links.
//!
//! ## Time base
//!
//! All offsets are [`Duration`]s from the start of the run — simulated time
//! on the simulator, wall-clock time on the real-time runtimes, exactly like
//! the offsets of scenario-level crash events.

use crate::ids::NodeId;
use crate::rng::DetRng;
use std::collections::HashMap;
use std::time::Duration;

/// Which links a [`LinkFault`] applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every directed link of the cluster.
    All,
    /// Every link whose sender is the given node.
    From(NodeId),
    /// Every link whose receiver is the given node.
    To(NodeId),
    /// Both directions between the two given nodes.
    Between(NodeId, NodeId),
}

impl LinkSelector {
    /// True when the directed link `from → to` is selected.
    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            LinkSelector::All => true,
            LinkSelector::From(n) => from == *n,
            LinkSelector::To(n) => to == *n,
            LinkSelector::Between(a, b) => (from == *a && to == *b) || (from == *b && to == *a),
        }
    }
}

/// The time window during which a fault is active: `[from, until)`, offsets
/// from the start of the run. `until = None` keeps the fault active for the
/// rest of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Start of the window (inclusive).
    pub from: Duration,
    /// End of the window (exclusive); `None` = until the end of the run.
    pub until: Option<Duration>,
}

impl FaultWindow {
    /// The whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        from: Duration::ZERO,
        until: None,
    };

    /// A bounded window `[from, until)`.
    pub fn between(from: Duration, until: Duration) -> Self {
        FaultWindow {
            from,
            until: Some(until),
        }
    }

    /// A window open from `from` to the end of the run.
    pub fn starting_at(from: Duration) -> Self {
        FaultWindow { from, until: None }
    }

    /// True when offset `at` falls inside the window.
    pub fn contains(&self, at: Duration) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }
}

/// The adverse behaviour a [`LinkFault`] injects on each selected message.
///
/// Exactly one kind fires per fault per message (evaluated with one RNG draw
/// against the kind's probability); a plan composes kinds by listing several
/// faults.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkFaultKind {
    /// Silently drop the message with the given probability.
    Drop {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// Add an extra delay, uniform in `[min, max]`, to every message.
    /// Per-link FIFO order is preserved: a delayed message never overtakes,
    /// and is never overtaken on the simulator's modelled links.
    Delay {
        /// Minimal extra delay.
        min: Duration,
        /// Maximal extra delay.
        max: Duration,
    },
    /// With the given probability, hold the message back for an extra delay
    /// uniform in `[min, max]` **and let later messages overtake it** — the
    /// reordering fault. (On real links the held message bypasses the
    /// per-peer FIFO queue; on the simulator it is exempted from the
    /// per-link FIFO clamp.)
    Reorder {
        /// Per-message reorder probability in `[0, 1]`.
        prob: f64,
        /// Minimal hold-back.
        min: Duration,
        /// Maximal hold-back.
        max: Duration,
    },
    /// With the given probability, deliver the message twice: once normally
    /// and once more after an extra delay uniform in `[min, max]`.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
        /// Minimal delay of the duplicate copy.
        min: Duration,
        /// Maximal delay of the duplicate copy.
        max: Duration,
    },
}

/// One scheduled link fault: a [`LinkFaultKind`] applied to the messages of
/// the selected links during a time window.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    /// The links the fault applies to.
    pub links: LinkSelector,
    /// When the fault is active.
    pub window: FaultWindow,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

/// A network partition: the cluster splits into groups at `at`; messages
/// crossing group boundaries are cut until `heal`. Nodes not listed in any
/// group form an implicit extra group of singletons — each unlisted node is
/// isolated from everyone.
///
/// ## Healing semantics: buffered, not lost
///
/// The paper's link model (§3.1) — and any TCP deployment — has *reliable*
/// links: a partition stalls traffic, it does not destroy it; retransmission
/// delivers everything once the route heals. A healing partition therefore
/// **buffers** cross-boundary messages and releases them at `heal` (the
/// engine turns them into a delay of `heal − now`), which is what lets
/// quorum-starved rounds resolve and commits resume after the split — the
/// stall/recovery shape the run-report timeline metrics measure. A
/// partition with `heal = None` is permanent and *drops*: there is no
/// future instant to deliver at.
///
/// ## Lossy partitions: heal the route, lose the traffic
///
/// A **lossy** partition (`lossy = true`) restores connectivity at `heal`
/// but *drops* everything sent across the boundary while it was up — the
/// shape of a routing outage where senders gave up and connections were
/// torn down. Nothing is replayed at heal, so a minority stranded behind a
/// lossy split can only rejoin by actively re-fetching what it missed
/// (the state-sync protocol), never by waiting for buffered retransmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// The side(s) of the split.
    pub groups: Vec<Vec<NodeId>>,
    /// When the split starts (offset from the start of the run).
    pub at: Duration,
    /// When the split heals (`None` = never).
    pub heal: Option<Duration>,
    /// True when cross-boundary traffic sent during the split is lost
    /// outright instead of buffered until heal.
    pub lossy: bool,
}

impl Partition {
    /// True when `from → to` traffic is cut by this partition at offset
    /// `at`.
    pub fn cuts(&self, from: NodeId, to: NodeId, at: Duration) -> bool {
        if at < self.at || self.heal.is_some_and(|h| at >= h) {
            return false;
        }
        let group_of = |n: NodeId| self.groups.iter().position(|g| g.contains(&n));
        match (group_of(from), group_of(to)) {
            (Some(a), Some(b)) => a != b,
            // An unlisted node is isolated from everyone (including other
            // unlisted nodes).
            _ => from != to,
        }
    }
}

/// One node fault: the node stops participating at `crash_at` and — for the
/// crash-recover shape — resumes at `recover_at` with its protocol state
/// intact (an unreachability window: events addressed to it during the
/// window are lost, its timers fire into the void).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeFault {
    /// The faulty node.
    pub node: NodeId,
    /// When it stops (offset from the start of the run).
    pub crash_at: Duration,
    /// When it resumes (`None` = a permanent crash).
    pub recover_at: Option<Duration>,
}

impl NodeFault {
    /// True when the node is down at offset `at`.
    pub fn down(&self, at: Duration) -> bool {
        at >= self.crash_at && self.recover_at.is_none_or(|r| at < r)
    }
}

/// A disk fault injected against a killed node's store directory between
/// its kill and its restart — so restart-from-disk recovery is exercised
/// against damaged media, not just the happy path. What each fault does to
/// the files is implemented by `fireledger-store`'s `inject` module; this
/// type is only the declarative description a [`FaultPlan`] carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// A write that only partially reached the disk: the active block-log
    /// segment loses its last `cut` bytes.
    TornWrite {
        /// Bytes chopped off the end of the active segment.
        cut: u64,
    },
    /// Silent media corruption: one bit of the log's tail record flips.
    CorruptTail,
    /// The volume fills up: appends fail after `after_bytes` more payload
    /// bytes, while reads keep working.
    DiskFull {
        /// Payload bytes the post-restart session may still write.
        after_bytes: u64,
    },
}

/// One kill-restart node fault: at `kill_at` the node's **process state is
/// destroyed** — threads torn down, every in-memory structure discarded —
/// and at `restart_at` the node is rebuilt *solely from its durable store*
/// and rejoins the cluster. Distinct from [`NodeFault`] with a recovery,
/// which merely pauses the node and resumes it with its state intact: a
/// `KillFault` is only survivable when the cluster was built with a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillFault {
    /// The node to kill.
    pub node: NodeId,
    /// When the process dies (offset from the start of the run).
    pub kill_at: Duration,
    /// When it is restarted from disk (`None` = never).
    pub restart_at: Option<Duration>,
    /// Damage applied to the node's store directory while it is down.
    pub disk_fault: Option<DiskFault>,
}

impl KillFault {
    /// True when the node is down (killed, not yet restarted) at offset
    /// `at`.
    pub fn down(&self, at: Duration) -> bool {
        at >= self.kill_at && self.restart_at.is_none_or(|r| at < r)
    }
}

/// A complete declarative fault schedule — see the module docs.
///
/// Plans are built fluently:
///
/// ```
/// use fireledger_types::faults::{FaultPlan, LinkSelector, FaultWindow};
/// use fireledger_types::NodeId;
/// use std::time::Duration;
///
/// let plan = FaultPlan::named("demo")
///     .with_seed(7)
///     .drop(LinkSelector::All,
///           FaultWindow::between(Duration::from_millis(200), Duration::from_millis(600)),
///           0.10)
///     .partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
///                Duration::from_millis(800), Some(Duration::from_millis(1200)))
///     .crash_recover(NodeId(3), Duration::from_millis(1400), Duration::from_millis(1600));
/// assert_eq!(plan.name, "demo");
/// assert_eq!(plan.link_faults.len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Human-readable plan name (recorded in run reports).
    pub name: String,
    /// Seed of the per-link fault RNGs (independent of the scenario seed, so
    /// the same adversity can be replayed against different workloads).
    pub seed: u64,
    /// Scheduled link faults, evaluated in order per message (the first
    /// fault whose probability draw fires decides the message's fate).
    pub link_faults: Vec<LinkFault>,
    /// Network partitions. A message crossing an active partition boundary
    /// is buffered until the heal (dropped when the partition never heals)
    /// before link faults are even consulted — see [`Partition`].
    pub partitions: Vec<Partition>,
    /// Node crash / crash-recover faults.
    pub node_faults: Vec<NodeFault>,
    /// Kill-restart faults: process state destroyed, node rebuilt from its
    /// durable store (optionally with damage injected against the store
    /// while the node is down).
    pub kill_faults: Vec<KillFault>,
}

impl FaultPlan {
    /// An empty plan with the given name and seed 1.
    pub fn named(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            seed: 1,
            ..Default::default()
        }
    }

    /// Sets the fault RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a probabilistic message-drop fault.
    pub fn drop(mut self, links: LinkSelector, window: FaultWindow, prob: f64) -> Self {
        self.link_faults.push(LinkFault {
            links,
            window,
            kind: LinkFaultKind::Drop { prob },
        });
        self
    }

    /// Adds a uniform extra-delay fault (FIFO-preserving).
    pub fn delay(
        mut self,
        links: LinkSelector,
        window: FaultWindow,
        min: Duration,
        max: Duration,
    ) -> Self {
        self.link_faults.push(LinkFault {
            links,
            window,
            kind: LinkFaultKind::Delay { min, max },
        });
        self
    }

    /// Adds a probabilistic reordering fault (held-back messages are
    /// overtaken by later ones).
    pub fn reorder(
        mut self,
        links: LinkSelector,
        window: FaultWindow,
        prob: f64,
        min: Duration,
        max: Duration,
    ) -> Self {
        self.link_faults.push(LinkFault {
            links,
            window,
            kind: LinkFaultKind::Reorder { prob, min, max },
        });
        self
    }

    /// Adds a probabilistic duplication fault.
    pub fn duplicate(
        mut self,
        links: LinkSelector,
        window: FaultWindow,
        prob: f64,
        min: Duration,
        max: Duration,
    ) -> Self {
        self.link_faults.push(LinkFault {
            links,
            window,
            kind: LinkFaultKind::Duplicate { prob, min, max },
        });
        self
    }

    /// Adds a partition that splits the cluster into `groups` at `at` and
    /// heals at `heal` (`None` = never). Cross-boundary traffic is buffered
    /// until the heal — or lost when there is none (see [`Partition`]).
    pub fn partition(
        mut self,
        groups: Vec<Vec<NodeId>>,
        at: Duration,
        heal: Option<Duration>,
    ) -> Self {
        self.partitions.push(Partition {
            groups,
            at,
            heal,
            lossy: false,
        });
        self
    }

    /// Adds a **lossy** partition: the split heals at `heal` like
    /// [`FaultPlan::partition`], but cross-boundary traffic sent during the
    /// split is *dropped*, not buffered — the stranded side must re-fetch
    /// what it missed through state sync (see [`Partition`]).
    pub fn partition_lossy(
        mut self,
        groups: Vec<Vec<NodeId>>,
        at: Duration,
        heal: Option<Duration>,
    ) -> Self {
        self.partitions.push(Partition {
            groups,
            at,
            heal,
            lossy: true,
        });
        self
    }

    /// Adds a permanent crash of `node` at `at`.
    pub fn crash(mut self, node: NodeId, at: Duration) -> Self {
        self.node_faults.push(NodeFault {
            node,
            crash_at: at,
            recover_at: None,
        });
        self
    }

    /// Adds a crash of `node` at `at` followed by a recovery at `recover`.
    pub fn crash_recover(mut self, node: NodeId, at: Duration, recover: Duration) -> Self {
        self.node_faults.push(NodeFault {
            node,
            crash_at: at,
            recover_at: Some(recover),
        });
        self
    }

    /// Adds a kill of `node` at `at` with no restart: the process dies and
    /// stays dead (its store, if any, survives on disk).
    pub fn kill(mut self, node: NodeId, at: Duration) -> Self {
        self.kill_faults.push(KillFault {
            node,
            kill_at: at,
            restart_at: None,
            disk_fault: None,
        });
        self
    }

    /// Adds a kill of `node` at `kill_at` followed by a restart-from-disk
    /// at `restart`: the node's process state is destroyed and rebuilt from
    /// its durable store alone.
    pub fn kill_restart(mut self, node: NodeId, kill_at: Duration, restart: Duration) -> Self {
        self.kill_faults.push(KillFault {
            node,
            kill_at,
            restart_at: Some(restart),
            disk_fault: None,
        });
        self
    }

    /// Like [`FaultPlan::kill_restart`], additionally damaging the node's
    /// store directory with `disk` while the node is down — replay must
    /// then recover the longest valid prefix.
    pub fn kill_restart_injecting(
        mut self,
        node: NodeId,
        kill_at: Duration,
        restart: Duration,
        disk: DiskFault,
    ) -> Self {
        self.kill_faults.push(KillFault {
            node,
            kill_at,
            restart_at: Some(restart),
            disk_fault: Some(disk),
        });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty()
            && self.partitions.is_empty()
            && self.node_faults.is_empty()
            && self.kill_faults.is_empty()
    }

    /// True when `node` is down (crashed or killed, not yet recovered or
    /// restarted) at offset `at`. Kill windows count as downtime exactly
    /// like crash windows, so every runtime's traffic suppression and the
    /// simulator's event suppression cover them for free.
    pub fn node_down(&self, node: NodeId, at: Duration) -> bool {
        self.node_faults
            .iter()
            .any(|f| f.node == node && f.down(at))
            || self
                .kill_faults
                .iter()
                .any(|f| f.node == node && f.down(at))
    }

    /// The nodes with any node fault (crashed or killed at any point, even
    /// if they recover) — the set run reports exclude from rate averages.
    pub fn faulted_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.node_faults.iter().map(|f| f.node).collect();
        nodes.extend(self.kill_faults.iter().map(|f| f.node));
        nodes.sort_by_key(|n| n.0);
        nodes.dedup();
        nodes
    }

    /// True when `from → to` traffic is cut by an active partition at `at`.
    pub fn partitioned(&self, from: NodeId, to: NodeId, at: Duration) -> bool {
        self.partitions.iter().any(|p| p.cuts(from, to, at))
    }

    /// How an active partition treats `from → to` traffic at `at`:
    /// `None` when no partition cuts the link, `Some(None)` when a
    /// permanent **or lossy** partition drops it, `Some(Some(heal))` when
    /// the traffic is buffered until the latest heal instant of the
    /// partitions cutting it.
    pub fn partition_cut(
        &self,
        from: NodeId,
        to: NodeId,
        at: Duration,
    ) -> Option<Option<Duration>> {
        let mut release: Option<Option<Duration>> = None;
        for p in &self.partitions {
            if !p.cuts(from, to, at) {
                continue;
            }
            // A lossy partition loses the traffic even though it heals;
            // a permanent partition has no heal instant to deliver at.
            let heal = if p.lossy { None } else { p.heal };
            release = match (release, heal) {
                // Any dropping partition wins: the message is gone.
                (_, None) | (Some(None), _) => Some(None),
                (Some(Some(prev)), Some(h)) => Some(Some(prev.max(h))),
                (None, Some(h)) => Some(Some(h)),
            };
        }
        release
    }

    /// The latest point at which this plan changes anything (last window
    /// edge, heal, crash or recovery) — useful for sizing run durations.
    pub fn last_event_at(&self) -> Duration {
        let mut last = Duration::ZERO;
        for f in &self.link_faults {
            last = last.max(f.window.until.unwrap_or(f.window.from));
        }
        for p in &self.partitions {
            last = last.max(p.heal.unwrap_or(p.at));
        }
        for nf in &self.node_faults {
            last = last.max(nf.recover_at.unwrap_or(nf.crash_at));
        }
        for kf in &self.kill_faults {
            last = last.max(kf.restart_at.unwrap_or(kf.kill_at));
        }
        last
    }
}

/// The fate the fault engine assigns to one message on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkDecision {
    /// Deliver normally.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver after an extra delay, preserving per-link FIFO order.
    Delay(Duration),
    /// Deliver after an extra delay, allowing later messages to overtake.
    Reorder(Duration),
    /// Deliver normally **and** deliver a second copy after the extra delay.
    Duplicate(Duration),
}

/// Mixes the plan seed with a link's endpoints into the link's RNG seed.
fn link_seed(seed: u64, from: NodeId, to: NodeId) -> u64 {
    // SplitMix-style finalizer over (seed, from, to): cheap, and adjacent
    // links get statistically independent streams.
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + from.0 as u64))
        .wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(1 + to.0 as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(rng: &mut DetRng, min: Duration, max: Duration) -> Duration {
    if max <= min {
        return min;
    }
    let span = (max - min).as_nanos().min(u64::MAX as u128) as u64;
    min + Duration::from_nanos(rng.gen_range_inclusive(0, span))
}

/// The shared decision engine: a [`FaultPlan`] plus one deterministic RNG
/// per directed link. All three runtime interceptors delegate here, so the
/// drop/delay/reorder/duplicate semantics (and their determinism) are
/// defined exactly once.
#[derive(Clone, Debug)]
pub struct LinkFaultEngine {
    plan: FaultPlan,
    links: HashMap<(u32, u32), DetRng>,
}

impl LinkFaultEngine {
    /// Builds the engine for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        LinkFaultEngine {
            plan,
            links: HashMap::new(),
        }
    }

    /// The plan driving this engine.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one message on the directed link `from → to` at
    /// offset `at` from the start of the run.
    ///
    /// Partitions and node downtime are checked first (both drop); then the
    /// plan's link faults are evaluated in order, each consuming exactly one
    /// RNG draw from the link's stream whenever its selector and window
    /// match, so the decision sequence per link is deterministic in the plan
    /// seed and the per-link message count alone.
    pub fn decide(&mut self, from: NodeId, to: NodeId, at: Duration) -> LinkDecision {
        // A down node loses its traffic outright (the process is dead);
        // a healing partition only stalls traffic (reliable links — see
        // [`Partition`]): the message is buffered and released at heal.
        if self.plan.node_down(from, at) || self.plan.node_down(to, at) {
            return LinkDecision::Drop;
        }
        match self.plan.partition_cut(from, to, at) {
            Some(None) => return LinkDecision::Drop,
            Some(Some(heal)) => {
                return LinkDecision::Delay(heal.saturating_sub(at));
            }
            None => {}
        }
        let mut decision = LinkDecision::Deliver;
        let seed = self.plan.seed;
        let rng = self
            .links
            .entry((from.0, to.0))
            .or_insert_with(|| DetRng::seed_from_u64(link_seed(seed, from, to)));
        for fault in &self.plan.link_faults {
            if !fault.links.matches(from, to) || !fault.window.contains(at) {
                continue;
            }
            // Every matching fault consumes its draws even after a decision
            // fired, so one fault's outcome never perturbs another fault's
            // stream.
            match &fault.kind {
                LinkFaultKind::Drop { prob } => {
                    let fire = rng.gen_f64() < *prob;
                    if fire && decision == LinkDecision::Deliver {
                        decision = LinkDecision::Drop;
                    }
                }
                LinkFaultKind::Delay { min, max } => {
                    let d = uniform(rng, *min, *max);
                    if decision == LinkDecision::Deliver {
                        decision = LinkDecision::Delay(d);
                    }
                }
                LinkFaultKind::Reorder { prob, min, max } => {
                    let fire = rng.gen_f64() < *prob;
                    let d = uniform(rng, *min, *max);
                    if fire && decision == LinkDecision::Deliver {
                        decision = LinkDecision::Reorder(d);
                    }
                }
                LinkFaultKind::Duplicate { prob, min, max } => {
                    let fire = rng.gen_f64() < *prob;
                    let d = uniform(rng, *min, *max);
                    if fire && decision == LinkDecision::Deliver {
                        decision = LinkDecision::Duplicate(d);
                    }
                }
            }
        }
        decision
    }

    /// True when `node` is down at offset `at` (see [`FaultPlan::node_down`]).
    pub fn node_down(&self, node: NodeId, at: Duration) -> bool {
        self.plan.node_down(node, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn selectors_match_the_right_links() {
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(LinkSelector::All.matches(a, b));
        assert!(LinkSelector::From(a).matches(a, b));
        assert!(!LinkSelector::From(a).matches(b, a));
        assert!(LinkSelector::To(b).matches(a, b));
        assert!(!LinkSelector::To(b).matches(b, c));
        assert!(LinkSelector::Between(a, b).matches(a, b));
        assert!(LinkSelector::Between(a, b).matches(b, a));
        assert!(!LinkSelector::Between(a, b).matches(a, c));
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::between(ms(100), ms(200));
        assert!(!w.contains(ms(99)));
        assert!(w.contains(ms(100)));
        assert!(w.contains(ms(199)));
        assert!(!w.contains(ms(200)));
        assert!(FaultWindow::ALWAYS.contains(Duration::ZERO));
        assert!(FaultWindow::starting_at(ms(50)).contains(ms(1000)));
        assert!(!FaultWindow::starting_at(ms(50)).contains(ms(49)));
    }

    #[test]
    fn partitions_cut_cross_group_traffic_until_heal() {
        let p = Partition {
            groups: vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
            at: ms(100),
            heal: Some(ms(200)),
            lossy: false,
        };
        // Before the split and after the heal everything flows.
        assert!(!p.cuts(NodeId(0), NodeId(2), ms(99)));
        assert!(!p.cuts(NodeId(0), NodeId(2), ms(200)));
        // During the split, cross-group traffic is cut, intra-group is not.
        assert!(p.cuts(NodeId(0), NodeId(2), ms(150)));
        assert!(p.cuts(NodeId(3), NodeId(1), ms(100)));
        assert!(!p.cuts(NodeId(0), NodeId(1), ms(150)));
        assert!(!p.cuts(NodeId(2), NodeId(3), ms(150)));
        // Unlisted nodes are isolated from everyone.
        assert!(p.cuts(NodeId(4), NodeId(0), ms(150)));
        assert!(p.cuts(NodeId(4), NodeId(5), ms(150)));
    }

    #[test]
    fn node_faults_cover_crash_and_crash_recover() {
        let plan = FaultPlan::named("nf")
            .crash(NodeId(1), ms(100))
            .crash_recover(NodeId(2), ms(100), ms(300));
        assert!(!plan.node_down(NodeId(1), ms(99)));
        assert!(plan.node_down(NodeId(1), ms(100)));
        assert!(plan.node_down(NodeId(1), ms(100_000)));
        assert!(plan.node_down(NodeId(2), ms(200)));
        assert!(!plan.node_down(NodeId(2), ms(300)));
        assert_eq!(plan.faulted_nodes(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(plan.last_event_at(), ms(300));
    }

    #[test]
    fn engine_decisions_are_deterministic_per_link_seed() {
        let plan =
            FaultPlan::named("det")
                .with_seed(9)
                .drop(LinkSelector::All, FaultWindow::ALWAYS, 0.3);
        let decide_n = |n: usize| {
            let mut e = LinkFaultEngine::new(plan.clone());
            (0..n)
                .map(|_| e.decide(NodeId(0), NodeId(1), ms(10)))
                .collect::<Vec<_>>()
        };
        assert_eq!(decide_n(64), decide_n(64));
        // A different seed gives a different decision stream.
        let mut other = LinkFaultEngine::new(plan.clone().with_seed(10));
        let stream: Vec<_> = (0..64)
            .map(|_| other.decide(NodeId(0), NodeId(1), ms(10)))
            .collect();
        assert_ne!(stream, decide_n(64));
        // Around 30% of messages drop.
        let drops = decide_n(1000)
            .iter()
            .filter(|d| **d == LinkDecision::Drop)
            .count();
        assert!((200..400).contains(&drops), "drop rate off: {drops}/1000");
    }

    #[test]
    fn per_link_streams_are_independent() {
        // Interleaving traffic on link (0,1) must not change the decisions
        // taken on link (2,3).
        let plan =
            FaultPlan::named("ind")
                .with_seed(4)
                .drop(LinkSelector::All, FaultWindow::ALWAYS, 0.5);
        let mut quiet = LinkFaultEngine::new(plan.clone());
        let alone: Vec<_> = (0..32)
            .map(|_| quiet.decide(NodeId(2), NodeId(3), ms(1)))
            .collect();
        let mut noisy = LinkFaultEngine::new(plan);
        let mut interleaved = Vec::new();
        for _ in 0..32 {
            noisy.decide(NodeId(0), NodeId(1), ms(1));
            interleaved.push(noisy.decide(NodeId(2), NodeId(3), ms(1)));
        }
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn delays_stay_inside_their_bounds() {
        let plan =
            FaultPlan::named("delay").delay(LinkSelector::All, FaultWindow::ALWAYS, ms(2), ms(5));
        let mut e = LinkFaultEngine::new(plan);
        for _ in 0..200 {
            match e.decide(NodeId(0), NodeId(1), ms(1)) {
                LinkDecision::Delay(d) => assert!(d >= ms(2) && d <= ms(5), "{d:?}"),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn faults_outside_their_window_or_links_do_nothing() {
        let plan = FaultPlan::named("scoped").drop(
            LinkSelector::From(NodeId(7)),
            FaultWindow::between(ms(100), ms(200)),
            1.0,
        );
        let mut e = LinkFaultEngine::new(plan);
        // Wrong link.
        assert_eq!(
            e.decide(NodeId(0), NodeId(1), ms(150)),
            LinkDecision::Deliver
        );
        // Right link, wrong time.
        assert_eq!(
            e.decide(NodeId(7), NodeId(1), ms(50)),
            LinkDecision::Deliver
        );
        // Right link, right time: prob 1.0 always drops.
        assert_eq!(e.decide(NodeId(7), NodeId(1), ms(150)), LinkDecision::Drop);
    }

    #[test]
    fn partition_and_node_downtime_beat_link_faults() {
        let plan = FaultPlan::named("p")
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(100)))
            .crash_recover(NodeId(2), ms(0), ms(100))
            .duplicate(LinkSelector::All, FaultWindow::ALWAYS, 1.0, ms(1), ms(1));
        let mut e = LinkFaultEngine::new(plan);
        // A healing partition buffers: the message is delayed to the heal
        // instant, not lost.
        assert_eq!(
            e.decide(NodeId(0), NodeId(1), ms(50)),
            LinkDecision::Delay(ms(50))
        );
        // A down endpoint loses the message outright.
        assert_eq!(e.decide(NodeId(3), NodeId(2), ms(50)), LinkDecision::Drop);
        // After heal/recovery the duplicate fault takes over.
        assert!(matches!(
            e.decide(NodeId(0), NodeId(1), ms(150)),
            LinkDecision::Duplicate(_)
        ));
    }

    #[test]
    fn permanent_partitions_drop_and_overlaps_release_latest() {
        let forever = FaultPlan::named("forever").partition(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            ms(0),
            None,
        );
        let mut e = LinkFaultEngine::new(forever);
        assert_eq!(e.decide(NodeId(0), NodeId(1), ms(10)), LinkDecision::Drop);

        // Two overlapping healing partitions: buffered until the later heal.
        let overlap = FaultPlan::named("overlap")
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(100)))
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(300)));
        assert_eq!(
            overlap.partition_cut(NodeId(0), NodeId(1), ms(10)),
            Some(Some(ms(300)))
        );
        // Permanent + healing = permanent.
        let mixed = FaultPlan::named("mixed")
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(100)))
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), None);
        assert_eq!(
            mixed.partition_cut(NodeId(0), NodeId(1), ms(10)),
            Some(None)
        );
    }

    #[test]
    fn lossy_partitions_heal_the_route_but_drop_the_traffic() {
        let plan = FaultPlan::named("lossy").partition_lossy(
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            ms(0),
            Some(ms(100)),
        );
        // During the split the message is lost, not buffered to the heal.
        assert_eq!(plan.partition_cut(NodeId(0), NodeId(1), ms(50)), Some(None));
        let mut e = LinkFaultEngine::new(plan.clone());
        assert_eq!(e.decide(NodeId(0), NodeId(1), ms(50)), LinkDecision::Drop);
        // After the heal the route works again.
        assert_eq!(
            e.decide(NodeId(0), NodeId(1), ms(150)),
            LinkDecision::Deliver
        );
        assert!(!plan.partitioned(NodeId(0), NodeId(1), ms(150)));
        // A lossy split overlapping a buffering one still loses the message.
        let mixed = FaultPlan::named("mixed")
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(80)))
            .partition_lossy(vec![vec![NodeId(0)], vec![NodeId(1)]], ms(0), Some(ms(100)));
        assert_eq!(
            mixed.partition_cut(NodeId(0), NodeId(1), ms(10)),
            Some(None)
        );
    }

    #[test]
    fn first_firing_fault_wins_but_streams_stay_stable() {
        // A plan with a drop fault before a duplicate fault: when the drop
        // fires the message is dropped; when it does not, the duplicate's
        // own (independent) draw decides. Removing neither fault perturbs
        // the message count ↔ draw alignment.
        let plan = FaultPlan::named("compose")
            .drop(LinkSelector::All, FaultWindow::ALWAYS, 0.5)
            .duplicate(LinkSelector::All, FaultWindow::ALWAYS, 1.0, ms(1), ms(2));
        let mut e = LinkFaultEngine::new(plan);
        let outcomes: Vec<_> = (0..100)
            .map(|_| e.decide(NodeId(0), NodeId(1), ms(1)))
            .collect();
        assert!(outcomes.contains(&LinkDecision::Drop));
        assert!(outcomes
            .iter()
            .any(|d| matches!(d, LinkDecision::Duplicate(_))));
        assert!(!outcomes.contains(&LinkDecision::Deliver));
    }
}
