//! Blocks, block headers, hashes and signatures.
//!
//! FireLedger separates the *data path* from the *consensus path* (§6.1.1 of
//! the paper): full [`Block`]s — a batch of transactions — are disseminated
//! asynchronously, while only the much smaller signed [`BlockHeader`]s pass
//! through the WRB/OBBC consensus layer. A header carries the hash of its
//! predecessor header, which is the authentication data the recovery procedure
//! relies on to detect equivocation by Byzantine proposers.
//!
//! The [`struct@Hash`] and [`Signature`] types here are plain carriers; the
//! actual SHA-256 / signature operations live in `fireledger-crypto` so that
//! this crate stays dependency-free.

use crate::bytes::Bytes;
use crate::ids::{NodeId, Round, WorkerId};
use crate::transaction::Transaction;
use crate::wire::WireSize;
use std::fmt;
use std::sync::OnceLock;

/// A 32-byte digest (SHA-256 in the reference implementation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash(pub [u8; 32]);

/// The hash every chain starts from: the parent of the block at round 0.
pub const GENESIS_HASH: Hash = Hash([0u8; 32]);

/// Lower-case hex encoding of a byte slice (log / display helper).
fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0x0F) as usize] as char);
    }
    out
}

impl Hash {
    /// Builds a hash from raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash(bytes)
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// True for the all-zero genesis parent hash.
    pub fn is_genesis(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Short hex prefix, used in logs and debug output.
    pub fn short_hex(&self) -> String {
        hex_encode(&self.0[..6])
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.short_hex())
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", hex_encode(&self.0))
    }
}

impl WireSize for Hash {
    fn wire_size(&self) -> usize {
        32
    }
}

/// An opaque signature (ECDSA secp256k1 DER bytes in the reference
/// implementation, §7.1 of the paper).
///
/// Storage is the workspace's Arc-backed [`Bytes`]: signatures are cloned
/// into chain entries, piggybacked headers and re-broadcast evidence many
/// times per decided block, and each of those clones is a reference-count
/// bump instead of a heap copy.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Signature(pub Bytes);

impl Signature {
    /// An empty placeholder signature, used by tests and by simulated
    /// lightweight signing modes.
    pub fn empty() -> Self {
        Signature(Bytes::new())
    }

    /// Raw signature bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Whether the signature carries any bytes at all.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Signature {
    fn from(v: Vec<u8>) -> Self {
        Signature(Bytes::from(v))
    }
}

impl From<&[u8]> for Signature {
    fn from(v: &[u8]) -> Self {
        Signature(Bytes::copy_from_slice(v))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            write!(f, "sig(∅)")
        } else {
            write!(f, "sig({}B)", self.0.len())
        }
    }
}

impl WireSize for Signature {
    fn wire_size(&self) -> usize {
        // A fixed-size (compact) ECDSA signature is 64 bytes; we charge the
        // nominal size even for empty test signatures so that simulated wire
        // costs do not depend on whether real crypto is enabled.
        64
    }
}

/// A thread-safe compute-once cache for a digest derived from the value it
/// sits on (see [`BlockHeader::hash_cache`] / [`Block::payload_root_cache`]).
///
/// The memo is deliberately **invisible to value semantics**: two values
/// that differ only in cache state compare equal, hash identically, and
/// `Clone` hands back an *empty* cache. The clone-resets rule is what makes
/// the cache safe next to public fields — the codebase's mutation idiom is
/// clone-then-mutate (equivocating proposers, test tampering), and a clone
/// that inherited the original's digest would serve a stale hash after the
/// mutation. The price is one recompute per cloned lineage, which is exactly
/// what the code paid before memoization existed.
///
/// Mutating a value **in place** after its digest was computed would leave
/// the memo stale; in-place field mutation of an already-hashed header is
/// not something any workspace code does (and `reset` exists for code that
/// must).
#[derive(Default)]
pub struct HashMemo(OnceLock<Hash>);

impl HashMemo {
    /// An empty (not yet computed) memo.
    pub fn new() -> Self {
        HashMemo(OnceLock::new())
    }

    /// The cached digest, computing and storing it on first use.
    pub fn get_or_init(&self, compute: impl FnOnce() -> Hash) -> Hash {
        *self.0.get_or_init(compute)
    }

    /// The cached digest, if one was computed.
    pub fn get(&self) -> Option<Hash> {
        self.0.get().copied()
    }

    /// Clears the cache (for code that mutates a value in place after its
    /// digest was computed).
    pub fn reset(&mut self) {
        self.0 = OnceLock::new();
    }
}

impl Clone for HashMemo {
    /// Clones are *empty*: the clone may be mutated before it is hashed, so
    /// it must not inherit the original's digest.
    fn clone(&self) -> Self {
        HashMemo::new()
    }
}

/// Cache state never participates in equality.
impl PartialEq for HashMemo {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for HashMemo {}

/// Cache state never participates in hashing.
impl std::hash::Hash for HashMemo {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl fmt::Debug for HashMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.get() {
            Some(h) => write!(f, "memo({h:?})"),
            None => write!(f, "memo(∅)"),
        }
    }
}

/// A thread-safe compute-once cache for a *boolean* fact derived from the
/// value it sits on — the signature-validity analogue of [`HashMemo`] (see
/// [`SignedHeader::sig_cache`]).
///
/// The semantics mirror [`HashMemo`] exactly: invisible to equality and
/// hashing, and `Clone` hands back an empty cache, so the clone-then-mutate
/// idiom can never serve a stale verdict. The memo is what lets a runtime
/// verify a header's signature *off* the consensus loop (on a reader or
/// pre-verify thread) and have the loop read the verdict instead of paying
/// the verification again: the verified value is *moved* into the loop, and
/// moves preserve the cache.
#[derive(Default)]
pub struct SigMemo(OnceLock<bool>);

impl SigMemo {
    /// An empty (not yet computed) memo.
    pub fn new() -> Self {
        SigMemo(OnceLock::new())
    }

    /// The cached verdict, computing and storing it on first use.
    pub fn get_or_init(&self, compute: impl FnOnce() -> bool) -> bool {
        *self.0.get_or_init(compute)
    }

    /// The cached verdict, if one was computed.
    pub fn get(&self) -> Option<bool> {
        self.0.get().copied()
    }

    /// Clears the cache (for code that mutates a value in place after the
    /// verdict was computed).
    pub fn reset(&mut self) {
        self.0 = OnceLock::new();
    }
}

impl Clone for SigMemo {
    /// Clones are *empty*: the clone may be mutated before it is verified,
    /// so it must not inherit the original's verdict.
    fn clone(&self) -> Self {
        SigMemo::new()
    }
}

/// Cache state never participates in equality.
impl PartialEq for SigMemo {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for SigMemo {}

/// Cache state never participates in hashing.
impl std::hash::Hash for SigMemo {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl fmt::Debug for SigMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.get() {
            Some(v) => write!(f, "memo({v})"),
            None => write!(f, "memo(∅)"),
        }
    }
}

/// The consensus-path representation of a block (§6.1.1).
///
/// Headers are what WRB-broadcast / OBBC operate on; the body (the
/// transactions) travels separately on the data path and is referenced by
/// `payload_hash`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BlockHeader {
    /// Round in which this block is proposed.
    pub round: Round,
    /// FLO worker instance this block belongs to.
    pub worker: WorkerId,
    /// Node that created and signed this block.
    pub proposer: NodeId,
    /// Hash of the predecessor block's header (the chain authentication data).
    pub parent: Hash,
    /// Merkle root / digest of the block body (its transactions).
    pub payload_hash: Hash,
    /// Number of transactions in the body.
    pub tx_count: u32,
    /// Total payload bytes of the body.
    pub payload_bytes: u64,
    /// Lagged execution state root (WIRE_FORMAT.md §12): the canonical root
    /// of this worker's executed ledger prefix at the moment the header was
    /// built — execution pipelined one block behind the commit frontier,
    /// Overlord's scheme adapted to BBFC(f+1) finality. `None` on clusters
    /// that run without the execution stage (and on all baseline protocols),
    /// encoded behind a presence byte so the two populations stay
    /// wire-compatible with each other.
    pub exec_root: Option<Hash>,
    /// Compute-once cache for this header's digest (`hash_header`); private
    /// so struct literals outside this crate cannot bypass [`HashMemo`]'s
    /// clone-resets discipline.
    hash_cache: HashMemo,
}

/// The canonical (signing / wire) encoding of a [`BlockHeader`], returned on
/// the stack: 92 fixed bytes, one exec-root presence byte, and 32 root bytes
/// when present (93 or 125 bytes total). Derefs to `&[u8]`, so call sites
/// that used to receive a fixed array keep compiling unchanged.
pub struct CanonicalBytes {
    buf: [u8; BlockHeader::CANONICAL_MAX],
    len: usize,
}

impl CanonicalBytes {
    /// The encoded bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Number of encoded bytes (93 without an exec root, 125 with one).
    #[inline]
    #[allow(clippy::len_without_is_empty)] // never empty: ≥ 93 bytes
    pub fn len(&self) -> usize {
        self.len
    }
}

impl std::ops::Deref for CanonicalBytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for CanonicalBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for CanonicalBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CanonicalBytes {}

impl fmt::Debug for CanonicalBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CanonicalBytes({})", hex_encode(self.as_slice()))
    }
}

impl BlockHeader {
    /// Creates a header (without an execution root; see
    /// [`BlockHeader::with_exec_root`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        round: Round,
        worker: WorkerId,
        proposer: NodeId,
        parent: Hash,
        payload_hash: Hash,
        tx_count: u32,
        payload_bytes: u64,
    ) -> Self {
        BlockHeader {
            round,
            worker,
            proposer,
            parent,
            payload_hash,
            tx_count,
            payload_bytes,
            exec_root: None,
            hash_cache: HashMemo::new(),
        }
    }

    /// Returns this header carrying `root` as its lagged execution state
    /// root. Must be applied **before** the header is signed or hashed — the
    /// root is part of the canonical bytes.
    pub fn with_exec_root(mut self, root: Hash) -> Self {
        self.exec_root = Some(root);
        self
    }

    /// Size in bytes of the fixed leading portion of
    /// [`BlockHeader::canonical_bytes`] (everything up to the exec-root
    /// presence byte).
    pub const CANONICAL_LEN: usize = 8 + 4 + 4 + 32 + 32 + 4 + 8;

    /// Maximum size of [`BlockHeader::canonical_bytes`]: the fixed fields,
    /// the exec-root presence byte, and the root itself.
    pub const CANONICAL_MAX: usize = Self::CANONICAL_LEN + 1 + 32;

    /// A canonical byte encoding used as the pre-image for hashing and
    /// signing — and byte-identical to the wire encoding, so a receiver
    /// verifies signatures over exactly the bytes it received. The encoding
    /// is explicit (not serde-derived) so that it is stable across versions
    /// and platforms, and it is returned on the stack — the sign/verify hot
    /// path pays no allocation for its pre-image.
    pub fn canonical_bytes(&self) -> CanonicalBytes {
        let mut buf = [0u8; Self::CANONICAL_MAX];
        buf[0..8].copy_from_slice(&self.round.0.to_be_bytes());
        buf[8..12].copy_from_slice(&self.worker.0.to_be_bytes());
        buf[12..16].copy_from_slice(&self.proposer.0.to_be_bytes());
        buf[16..48].copy_from_slice(self.parent.as_bytes());
        buf[48..80].copy_from_slice(self.payload_hash.as_bytes());
        buf[80..84].copy_from_slice(&self.tx_count.to_be_bytes());
        buf[84..92].copy_from_slice(&self.payload_bytes.to_be_bytes());
        let len = match &self.exec_root {
            None => {
                buf[92] = 0;
                Self::CANONICAL_LEN + 1
            }
            Some(root) => {
                buf[92] = 1;
                buf[93..125].copy_from_slice(root.as_bytes());
                Self::CANONICAL_MAX
            }
        };
        CanonicalBytes { buf, len }
    }

    /// The compute-once cache for this header's digest. `fireledger-crypto`'s
    /// `hash_header` goes through this so repeated hashing of a *stored*
    /// header (chain tips, parent links) is a cache read.
    pub fn hash_cache(&self) -> &HashMemo {
        &self.hash_cache
    }

    /// True when the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.tx_count == 0
    }
}

impl fmt::Debug for BlockHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Header({} {} by {}, parent={:?}, {} txs)",
            self.worker, self.round, self.proposer, self.parent, self.tx_count
        )
    }
}

impl WireSize for BlockHeader {
    fn wire_size(&self) -> usize {
        // Headers without an exec root are charged the 92 bytes they cost
        // before the field existed: the codec's always-present presence byte
        // is deliberately not modeled, so simulated runs that don't enable
        // execution keep reproducing the committed bench rows byte-for-byte
        // (the same nominal-size divergence `Signature` documents). A carried
        // root is charged in full (presence byte + 32 root bytes).
        8 + 4 + 4 + 32 + 32 + 4 + 8 + self.exec_root.map_or(0, |_| 1 + 32)
    }
}

/// A header together with its proposer's signature — the unit that flows
/// through WRB and that constitutes `evidence(1)` for OBBC (§A.5).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SignedHeader {
    /// The header being signed.
    pub header: BlockHeader,
    /// The proposer's signature over [`BlockHeader::canonical_bytes`].
    pub signature: Signature,
    /// Compute-once cache for the signature check; private so struct
    /// literals outside this crate cannot bypass [`SigMemo`]'s clone-resets
    /// discipline.
    sig_cache: SigMemo,
}

impl SignedHeader {
    /// Creates a signed header from parts.
    pub fn new(header: BlockHeader, signature: Signature) -> Self {
        SignedHeader {
            header,
            signature,
            sig_cache: SigMemo::new(),
        }
    }

    /// The compute-once cache for this header's signature check.
    /// `fireledger-crypto`'s `verify_header_cached` goes through this, which
    /// is what lets a pre-verify stage pay the verification off the node
    /// loop and the loop read the verdict for free (moves keep the cache;
    /// clones reset it).
    pub fn sig_cache(&self) -> &SigMemo {
        &self.sig_cache
    }

    /// The round the header belongs to.
    pub fn round(&self) -> Round {
        self.header.round
    }

    /// The node that proposed (and signed) the header.
    pub fn proposer(&self) -> NodeId {
        self.header.proposer
    }
}

impl fmt::Debug for SignedHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signed{:?}", self.header)
    }
}

impl WireSize for SignedHeader {
    fn wire_size(&self) -> usize {
        self.header.wire_size() + self.signature.wire_size()
    }
}

/// A full block: a header plus its transaction batch (the data path payload).
#[derive(Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// The transaction batch (β transactions in the paper's notation).
    pub txs: Vec<Transaction>,
    /// Compute-once cache for the body's merkle root (see
    /// [`Block::payload_root_cache`]).
    payload_root_cache: HashMemo,
}

impl Block {
    /// Creates a block from a header and its transactions.
    pub fn new(header: BlockHeader, txs: Vec<Transaction>) -> Self {
        Block {
            header,
            txs,
            payload_root_cache: HashMemo::new(),
        }
    }

    /// The compute-once cache for the merkle root of `txs`.
    /// `fireledger-crypto`'s `block_payload_root` goes through this so
    /// validating the same `Block` value twice hashes its transactions once.
    pub fn payload_root_cache(&self) -> &HashMemo {
        &self.payload_root_cache
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True when the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Total payload bytes across all transactions.
    pub fn payload_bytes(&self) -> u64 {
        self.txs.iter().map(|t| t.payload.len() as u64).sum()
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({} {} by {}, {} txs, {}B)",
            self.header.worker,
            self.header.round,
            self.header.proposer,
            self.txs.len(),
            self.payload_bytes()
        )
    }
}

impl WireSize for Block {
    fn wire_size(&self) -> usize {
        self.header.wire_size() + 4 + self.txs.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(round: u64, proposer: u32) -> BlockHeader {
        BlockHeader::new(
            Round(round),
            WorkerId(0),
            NodeId(proposer),
            GENESIS_HASH,
            Hash([7u8; 32]),
            3,
            1536,
        )
    }

    #[test]
    fn genesis_hash_is_zero() {
        assert!(GENESIS_HASH.is_genesis());
        assert!(!Hash([1u8; 32]).is_genesis());
    }

    #[test]
    fn canonical_bytes_are_stable_and_unique() {
        let a = header(1, 0);
        let b = header(1, 0);
        let c = header(2, 0);
        let d = header(1, 1);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
        assert_ne!(a.canonical_bytes(), d.canonical_bytes());
        // Canonical bytes always carry the exec-root presence byte; the
        // modeled wire size only charges it when a root is present.
        assert_eq!(a.canonical_bytes().len(), BlockHeader::CANONICAL_LEN + 1);
        assert_eq!(a.wire_size(), BlockHeader::CANONICAL_LEN);
    }

    #[test]
    fn exec_root_changes_canonical_bytes_and_wire_size() {
        let plain = header(1, 0);
        let rooted = header(1, 0).with_exec_root(Hash([3u8; 32]));
        assert_ne!(plain.canonical_bytes(), rooted.canonical_bytes());
        assert_eq!(rooted.canonical_bytes().len(), BlockHeader::CANONICAL_MAX);
        assert_eq!(rooted.canonical_bytes().len(), rooted.wire_size());
        assert_eq!(
            rooted.canonical_bytes().as_slice()[BlockHeader::CANONICAL_LEN],
            1
        );
        assert_eq!(
            &rooted.canonical_bytes()[BlockHeader::CANONICAL_LEN + 1..],
            &[3u8; 32]
        );
        // Two different roots encode differently.
        let other = header(1, 0).with_exec_root(Hash([4u8; 32]));
        assert_ne!(rooted.canonical_bytes(), other.canonical_bytes());
    }

    #[test]
    fn block_payload_accounting() {
        let txs = vec![
            Transaction::zeroed(0, 0, 512),
            Transaction::zeroed(0, 1, 512),
        ];
        let block = Block::new(header(0, 0), txs);
        assert_eq!(block.len(), 2);
        assert!(!block.is_empty());
        assert_eq!(block.payload_bytes(), 1024);
        assert!(block.wire_size() > 1024);
    }

    #[test]
    fn empty_block() {
        let block = Block::new(header(0, 0), vec![]);
        assert!(block.is_empty());
        assert_eq!(block.payload_bytes(), 0);
    }

    #[test]
    fn signed_header_accessors() {
        let sh = SignedHeader::new(header(9, 2), Signature::from(vec![1, 2, 3]));
        assert_eq!(sh.round(), Round(9));
        assert_eq!(sh.proposer(), NodeId(2));
        assert_eq!(sh.wire_size(), sh.header.wire_size() + 64);
    }

    #[test]
    fn hash_display_and_debug() {
        let h = Hash([0xab; 32]);
        assert_eq!(h.short_hex(), "abababababab");
        assert!(h.to_string().starts_with("abab"));
        assert_eq!(format!("{h:?}"), "#abababababab");
    }

    #[test]
    fn signature_debug() {
        assert_eq!(format!("{:?}", Signature::empty()), "sig(∅)");
        assert_eq!(format!("{:?}", Signature::from(vec![0; 64])), "sig(64B)");
    }

    #[test]
    fn signature_clones_share_storage() {
        let a = Signature::from(vec![7u8; 64]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_bytes().as_ptr(), b.as_bytes().as_ptr()));
    }

    #[test]
    fn hash_memo_computes_once_and_is_invisible_to_value_semantics() {
        let memo = HashMemo::new();
        assert_eq!(memo.get(), None);
        let first = memo.get_or_init(|| Hash([1u8; 32]));
        // A second init closure is never invoked.
        let second = memo.get_or_init(|| unreachable!("memo must be cached"));
        assert_eq!(first, second);
        assert_eq!(memo.get(), Some(Hash([1u8; 32])));
        // Clones start empty (clone-then-mutate safety).
        assert_eq!(memo.clone().get(), None);
        // Equality and hashing ignore cache state.
        assert_eq!(memo, HashMemo::new());
        let mut memo = memo;
        memo.reset();
        assert_eq!(memo.get(), None);
    }

    #[test]
    fn sig_memo_computes_once_and_is_invisible_to_value_semantics() {
        let memo = SigMemo::new();
        assert_eq!(memo.get(), None);
        assert!(!memo.get_or_init(|| false));
        // A second init closure is never invoked.
        assert!(!memo.get_or_init(|| unreachable!("memo must be cached")));
        assert_eq!(memo.get(), Some(false));
        assert_eq!(memo.clone().get(), None, "clones must re-verify");
        assert_eq!(memo, SigMemo::new());
        let mut memo = memo;
        memo.reset();
        assert_eq!(memo.get(), None);
    }

    #[test]
    fn signed_header_sig_cache_does_not_leak_through_clone_or_eq() {
        let a = SignedHeader::new(header(1, 0), Signature::from(vec![1, 2, 3]));
        a.sig_cache().get_or_init(|| true);
        let b = a.clone();
        assert_eq!(a, b, "cache state must not affect equality");
        assert_eq!(b.sig_cache().get(), None, "clones must re-verify");
        assert_eq!(a.sig_cache().get(), Some(true));
    }

    #[test]
    fn header_hash_cache_does_not_leak_through_clone_or_eq() {
        let a = header(1, 0);
        a.hash_cache().get_or_init(|| Hash([9u8; 32]));
        let b = a.clone();
        assert_eq!(a, b, "cache state must not affect equality");
        assert_eq!(b.hash_cache().get(), None, "clones must recompute");
        let block = Block::new(a, vec![]);
        block.payload_root_cache().get_or_init(|| Hash([8u8; 32]));
        assert_eq!(block.clone().payload_root_cache().get(), None);
    }
}
