//! Client transactions.
//!
//! In a blockchain, clients submit transactions to the nodes and decided
//! values are blocks of transactions (§3.3). The paper's evaluation uses
//! randomly generated transactions of σ ∈ {512, 1K, 4K} bytes (Table 2); the
//! workload generator in `fireledger-sim` produces exactly that shape, but any
//! application payload (e.g. the insurance-consortium example) fits in the
//! same type.

use crate::bytes::Bytes;
use crate::wire::WireSize;
use std::fmt;

/// A client transaction: an opaque payload plus bookkeeping identifiers.
///
/// The protocol itself never interprets the payload; interpretation is the job
/// of the external validity predicate (`fireledger::validity`) and of the
/// application layered on top.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    /// Client that submitted the transaction (an arbitrary application-level
    /// identifier, not necessarily a replica).
    pub client: u64,
    /// Client-local sequence number; `(client, seq)` uniquely identifies a
    /// transaction.
    pub seq: u64,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Transaction {
    /// Creates a new transaction.
    pub fn new(client: u64, seq: u64, payload: impl Into<Bytes>) -> Self {
        Transaction {
            client,
            seq,
            payload: payload.into(),
        }
    }

    /// Creates a transaction whose payload is `size` zero bytes — handy in
    /// tests that only care about sizes.
    pub fn zeroed(client: u64, seq: u64, size: usize) -> Self {
        Transaction::new(client, seq, vec![0u8; size])
    }

    /// A globally unique identifier for the transaction.
    #[inline]
    pub fn id(&self) -> (u64, u64) {
        (self.client, self.seq)
    }

    /// Payload length in bytes (σ in the paper's notation).
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tx(client={}, seq={}, {}B)",
            self.client,
            self.seq,
            self.payload.len()
        )
    }
}

impl WireSize for Transaction {
    fn wire_size(&self) -> usize {
        // client + seq + length prefix + payload
        8 + 8 + 4 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_client_and_seq() {
        let tx = Transaction::new(7, 42, vec![1, 2, 3]);
        assert_eq!(tx.id(), (7, 42));
        assert_eq!(tx.payload_len(), 3);
    }

    #[test]
    fn zeroed_has_requested_size() {
        let tx = Transaction::zeroed(1, 1, 512);
        assert_eq!(tx.payload_len(), 512);
        assert!(tx.payload.iter().all(|b| *b == 0));
    }

    #[test]
    fn wire_size_includes_overhead() {
        let tx = Transaction::zeroed(1, 1, 512);
        assert_eq!(tx.wire_size(), 512 + 20);
    }

    #[test]
    fn equality_and_hash_by_value() {
        let a = Transaction::new(1, 2, vec![9]);
        let b = Transaction::new(1, 2, vec![9]);
        let c = Transaction::new(1, 3, vec![9]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn debug_is_compact() {
        let tx = Transaction::zeroed(3, 4, 10);
        assert_eq!(format!("{tx:?}"), "Tx(client=3, seq=4, 10B)");
    }
}
