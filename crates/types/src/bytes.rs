//! A cheaply cloneable, immutable byte buffer.
//!
//! Transaction payloads are copied between blocks, pools and messages many
//! times per simulated second; an `Arc`-backed buffer makes those copies
//! reference bumps instead of allocations. The type intentionally mirrors the
//! small part of the `bytes::Bytes` API the workspace uses, so the workspace
//! stays free of external dependencies.
//!
//! A `Bytes` can also be a **view** — an `(offset, len)` window into a
//! shared backing buffer ([`Bytes::slice`]). Views are what make zero-copy
//! decoding possible: the TCP reader wraps a whole received frame in one
//! `Bytes` and every payload decoded from it is a window, not a copy. A view
//! keeps its entire backing buffer alive; in this codebase views are cut
//! from message frames whose dominant content is the payload itself, so the
//! retained overhead is a few dozen bytes of framing.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (possibly a view into a
/// larger shared buffer).
///
/// Equality and hashing are by **content** — a view compares equal to a
/// standalone buffer holding the same bytes.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            buf: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            len: data.len(),
            buf: Arc::from(data),
            off: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// A zero-copy sub-window of this buffer: shares the backing allocation
    /// (reference bump, no copy).
    ///
    /// # Panics
    /// Panics if `off + len` exceeds [`Bytes::len`].
    pub fn slice(&self, off: usize, len: usize) -> Bytes {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "slice of {len} bytes at {off} exceeds buffer of {}",
            self.len
        );
        Bytes {
            buf: self.buf.clone(),
            off: self.off + off,
            len,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            off: 0,
            len: v.len(),
            buf: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({}B)", self.len)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_slice(), b.as_ref());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_ne!(Bytes::from(vec![1u8]), Bytes::from(vec![2u8]));
        assert_eq!(Bytes::from("ab"), Bytes::from(vec![b'a', b'b']));
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let parent = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let view = parent.slice(2, 3);
        assert_eq!(view.len(), 3);
        assert_eq!(view.as_slice(), &[2, 3, 4]);
        // Shares the backing allocation.
        assert!(std::ptr::eq(
            view.as_slice().as_ptr(),
            parent.as_slice()[2..].as_ptr()
        ));
        // Content equality with a standalone buffer.
        assert_eq!(view, Bytes::from(vec![2u8, 3, 4]));
        // Hash agrees with content equality.
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(view.clone());
        assert!(set.contains(&Bytes::from(vec![2u8, 3, 4])));
        // Sub-slicing a view stays within the view's window.
        let inner = view.slice(1, 2);
        assert_eq!(inner.as_slice(), &[3, 4]);
        // Empty and full windows work.
        assert!(parent.slice(8, 0).is_empty());
        assert_eq!(parent.slice(0, 8), parent);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn out_of_range_slice_panics() {
        let _ = Bytes::from(vec![1u8, 2, 3]).slice(2, 2);
    }
}
