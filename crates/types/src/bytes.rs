//! A cheaply cloneable, immutable byte buffer.
//!
//! Transaction payloads are copied between blocks, pools and messages many
//! times per simulated second; an `Arc`-backed buffer makes those copies
//! reference bumps instead of allocations. The type intentionally mirrors the
//! small part of the `bytes::Bytes` API the workspace uses, so the workspace
//! stays free of external dependencies.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({}B)", self.0.len())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.as_slice(), b.as_ref());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_ne!(Bytes::from(vec![1u8]), Bytes::from(vec![2u8]));
        assert_eq!(Bytes::from("ab"), Bytes::from(vec![b'a', b'b']));
    }
}
