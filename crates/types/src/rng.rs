//! A small deterministic random number generator.
//!
//! Everything random in the workspace — link jitter, workload payloads, key
//! derivation, rotation reshuffles — must be reproducible from a seed so that
//! the discrete-event simulator produces bit-identical executions for equal
//! seeds. [`DetRng`] implements xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through splitmix64; it is not cryptographically
//! secure and is not used for key material that needs to resist an attacker —
//! simulated clusters run every node in one process.

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator from 32 seed bytes (e.g. a block hash).
    pub fn from_seed_bytes(seed: &[u8; 32]) -> Self {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            u64::from_be_bytes(b)
        };
        let mut s = [word(0), word(1), word(2), word(3)];
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = DetRng::seed_from_u64(0).s;
        }
        DetRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut c = DetRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut rng = DetRng::seed_from_u64(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
        assert_eq!(rng.gen_below(0), 0);
    }

    #[test]
    fn gen_range_inclusive_covers_endpoints() {
        let mut rng = DetRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(rng.gen_range_inclusive(9, 9), 9);
        assert_eq!(rng.gen_range_inclusive(9, 3), 9);
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = DetRng::seed_from_u64(4);
        for len in [0usize, 1, 7, 8, 9, 31, 32, 100] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|b| *b != 0), "len={len}");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let base: Vec<u32> = (0..20).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        DetRng::seed_from_u64(5).shuffle(&mut a);
        DetRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, base);
        let mut c = base.clone();
        DetRng::seed_from_u64(6).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn seed_bytes_variant_is_deterministic() {
        let seed = [0xAB; 32];
        let mut a = DetRng::from_seed_bytes(&seed);
        let mut b = DetRng::from_seed_bytes(&seed);
        assert_eq!(a.next_u64(), b.next_u64());
        // The all-zero seed is remapped, not a panic or a degenerate stream.
        let mut z = DetRng::from_seed_bytes(&[0u8; 32]);
        assert_ne!(z.next_u64(), 0);
    }
}
