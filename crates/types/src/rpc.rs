//! Client RPC messages: the ingress sub-protocol spoken between external
//! clients and a node's client listener.
//!
//! This is the only way *into* the ledger from outside the replica set. A
//! client opens a connection to any node's client port (a real TCP socket
//! under the TCP runtime, a channel-backed port under the threaded runtime
//! and the simulator) and exchanges [`RpcMsg`] frames through the same
//! 9-byte §3 frame header the inter-node links use:
//!
//! * [`RpcMsg::Submit`] / [`RpcMsg::SubmitAck`] — submit one transaction on
//!   a priority [`Lane`]; the ack carries a typed [`SubmitStatus`]. **Every**
//!   outcome is client-visible: admission never sheds silently, it answers
//!   [`SubmitStatus::Busy`], [`SubmitStatus::Duplicate`],
//!   [`SubmitStatus::RateLimited`] or [`SubmitStatus::Syncing`] so the
//!   client can back off, skip, or fail over to another node.
//! * [`RpcMsg::Query`] / [`RpcMsg::QueryReply`] — read the node's definite
//!   (committed) tip.
//! * [`RpcMsg::Subscribe`] / [`RpcMsg::Event`] — commit notifications: after
//!   a subscribe, the server pushes one event per newly definite round.
//! * [`RpcMsg::Reject`] — the server's last word on a protocol violation
//!   (bad magic, oversized frame, undecodable payload) before it closes the
//!   connection, so a buggy client sees *why* instead of a silent hangup.
//!
//! The admission pipeline behind these verbs lives in `fireledger-core`'s
//! `admission` module; this module only defines the wire vocabulary
//! (WIRE_FORMAT.md §11) so every runtime shares one set of codecs.

use crate::codec::{CodecError, Reader, WireCodec};
use crate::ids::Round;
use crate::wire::WireSize;

/// Hard cap on one [`RpcMsg::Submit`] payload. Far below the §3 frame cap:
/// a single client must not be able to park a 32 MiB allocation on a node
/// by opening a socket.
pub const MAX_RPC_PAYLOAD: usize = 1 << 20;

/// Priority lane a submission rides on. Under overload the admission
/// pipeline sheds lanes asymmetrically: bulk first, normal next, probe
/// last — so liveness probes still land while bulk traffic is pushed back.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency probes and health checks: tiny, rare, shed last.
    Probe,
    /// Interactive traffic: the default lane.
    Normal,
    /// Batch/backfill traffic: shed first under pressure.
    Bulk,
}

impl Lane {
    /// All lanes, in shed order (shed-last first).
    pub const ALL: [Lane; 3] = [Lane::Probe, Lane::Normal, Lane::Bulk];

    /// Stable index (0 = probe, 1 = normal, 2 = bulk) for per-lane tables.
    pub fn index(self) -> usize {
        match self {
            Lane::Probe => 0,
            Lane::Normal => 1,
            Lane::Bulk => 2,
        }
    }

    /// Lane name as it appears in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Probe => "probe",
            Lane::Normal => "normal",
            Lane::Bulk => "bulk",
        }
    }
}

/// Outcome of one submission, carried by [`RpcMsg::SubmitAck`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitStatus {
    /// Admitted into the pool; `ticket` is the node-local admission ticket
    /// (monotonic per node, for debugging — commitment is observed through
    /// [`RpcMsg::Event`] / [`RpcMsg::Query`], not the ticket).
    Accepted {
        /// Node-local admission ticket.
        ticket: u64,
    },
    /// The node's admission queue is full (or the node is past its fault
    /// budget): retry after the hinted delay, with jitter.
    Busy {
        /// Server back-off hint in milliseconds.
        retry_after_ms: u32,
    },
    /// This `(client, seq)` was recently admitted or committed — the
    /// submission is a duplicate and needs no retry.
    Duplicate,
    /// The client exceeded its token-bucket rate: retry after the hinted
    /// delay.
    RateLimited {
        /// Server back-off hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The node is catching up (state sync in progress) and will not accept
    /// work it could lose; submit to another node or retry later.
    Syncing,
}

impl SubmitStatus {
    /// True when the submission was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitStatus::Accepted { .. })
    }

    /// True when retrying the *same* submission can succeed later
    /// (`Busy`/`RateLimited`/`Syncing`); `Duplicate` is terminal.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SubmitStatus::Busy { .. } | SubmitStatus::RateLimited { .. } | SubmitStatus::Syncing
        )
    }

    /// The server's back-off hint, when the status carries one.
    pub fn retry_after_ms(&self) -> Option<u32> {
        match self {
            SubmitStatus::Busy { retry_after_ms }
            | SubmitStatus::RateLimited { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// Why a connection is being rejected (the payload of [`RpcMsg::Reject`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The frame header was malformed: wrong magic or wrong wire version.
    BadFrame,
    /// The frame length exceeded the cap ([`crate::MAX_FRAME_LEN`] on the
    /// link, [`MAX_RPC_PAYLOAD`] for a submit payload).
    Oversized,
    /// The frame payload failed to decode as an [`RpcMsg`].
    BadMessage,
    /// The listener's connection pool is full: the connection was refused
    /// at accept, before any request was read. Unlike the other reasons
    /// this one is not the client's fault — reconnecting after a back-off
    /// is the right response.
    Busy,
}

impl RejectReason {
    fn tag(self) -> u8 {
        match self {
            RejectReason::BadFrame => 1,
            RejectReason::Oversized => 2,
            RejectReason::BadMessage => 3,
            RejectReason::Busy => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            1 => Ok(RejectReason::BadFrame),
            2 => Ok(RejectReason::Oversized),
            3 => Ok(RejectReason::BadMessage),
            4 => Ok(RejectReason::Busy),
            tag => Err(CodecError::BadTag {
                what: "RejectReason",
                tag,
            }),
        }
    }
}

/// A client RPC message (WIRE_FORMAT.md §11).
#[derive(Clone, Debug, PartialEq)]
pub enum RpcMsg {
    /// Submit one transaction. `(client, seq)` is the client-assigned
    /// identity ([`crate::Transaction::id`]); resubmitting the same pair is
    /// idempotent (the dedup window answers [`SubmitStatus::Duplicate`]).
    Submit {
        /// Client identifier.
        client: u64,
        /// Client-local sequence number.
        seq: u64,
        /// Priority lane.
        lane: Lane,
        /// Opaque transaction payload (at most [`MAX_RPC_PAYLOAD`] bytes).
        payload: Vec<u8>,
    },
    /// The admission verdict for the `(client, seq)` submission.
    SubmitAck {
        /// Echo of the submission's client identifier.
        client: u64,
        /// Echo of the submission's sequence number.
        seq: u64,
        /// Typed admission outcome.
        status: SubmitStatus,
    },
    /// "How far does your definite prefix reach?"
    Query {
        /// Request nonce, echoed by [`RpcMsg::QueryReply`].
        req: u64,
    },
    /// Reply to [`RpcMsg::Query`].
    QueryReply {
        /// The query's nonce.
        req: u64,
        /// Number of definite (committed) rounds at this node.
        definite: Round,
    },
    /// Ask for commit notifications for rounds `>= from`.
    Subscribe {
        /// First round of interest.
        from: Round,
    },
    /// One commit notification: round `round` became definite carrying
    /// `tx_count` transactions.
    Event {
        /// The newly definite round.
        round: Round,
        /// Number of transactions in that round's block.
        tx_count: u32,
    },
    /// Typed protocol-violation notice, sent before the server closes the
    /// connection (never in reply to a well-formed message).
    Reject {
        /// Why the connection is being closed.
        reason: RejectReason,
    },
}

impl WireSize for RpcMsg {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

fn encode_status(status: &SubmitStatus, out: &mut Vec<u8>) {
    match status {
        SubmitStatus::Accepted { ticket } => {
            out.push(1);
            ticket.encode_to(out);
        }
        SubmitStatus::Busy { retry_after_ms } => {
            out.push(2);
            retry_after_ms.encode_to(out);
        }
        SubmitStatus::Duplicate => out.push(3),
        SubmitStatus::RateLimited { retry_after_ms } => {
            out.push(4);
            retry_after_ms.encode_to(out);
        }
        SubmitStatus::Syncing => out.push(5),
    }
}

fn decode_status(r: &mut Reader<'_>) -> Result<SubmitStatus, CodecError> {
    match r.u8()? {
        1 => Ok(SubmitStatus::Accepted { ticket: r.u64()? }),
        2 => Ok(SubmitStatus::Busy {
            retry_after_ms: r.u32()?,
        }),
        3 => Ok(SubmitStatus::Duplicate),
        4 => Ok(SubmitStatus::RateLimited {
            retry_after_ms: r.u32()?,
        }),
        5 => Ok(SubmitStatus::Syncing),
        tag => Err(CodecError::BadTag {
            what: "SubmitStatus",
            tag,
        }),
    }
}

fn status_len(status: &SubmitStatus) -> usize {
    1 + match status {
        SubmitStatus::Accepted { .. } => 8,
        SubmitStatus::Busy { .. } | SubmitStatus::RateLimited { .. } => 4,
        SubmitStatus::Duplicate | SubmitStatus::Syncing => 0,
    }
}

/// Layout per WIRE_FORMAT.md §11: a discriminant byte (`0x01` Submit through
/// `0x07` Reject) followed by the variant's fields in declaration order.
/// Lanes, statuses and reject reasons are one-byte sub-discriminants starting
/// at `0x01` (`0x00` stays reserved, like every enum in the format).
impl WireCodec for RpcMsg {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            RpcMsg::Submit {
                client,
                seq,
                lane,
                payload,
            } => {
                out.push(1);
                client.encode_to(out);
                seq.encode_to(out);
                out.push(lane.index() as u8 + 1);
                (payload.len() as u32).encode_to(out);
                out.extend_from_slice(payload);
            }
            RpcMsg::SubmitAck {
                client,
                seq,
                status,
            } => {
                out.push(2);
                client.encode_to(out);
                seq.encode_to(out);
                encode_status(status, out);
            }
            RpcMsg::Query { req } => {
                out.push(3);
                req.encode_to(out);
            }
            RpcMsg::QueryReply { req, definite } => {
                out.push(4);
                req.encode_to(out);
                definite.encode_to(out);
            }
            RpcMsg::Subscribe { from } => {
                out.push(5);
                from.encode_to(out);
            }
            RpcMsg::Event { round, tx_count } => {
                out.push(6);
                round.encode_to(out);
                tx_count.encode_to(out);
            }
            RpcMsg::Reject { reason } => {
                out.push(7);
                out.push(reason.tag());
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            1 => {
                let client = r.u64()?;
                let seq = r.u64()?;
                let lane = match r.u8()? {
                    1 => Lane::Probe,
                    2 => Lane::Normal,
                    3 => Lane::Bulk,
                    tag => return Err(CodecError::BadTag { what: "Lane", tag }),
                };
                let len = r.seq_len("RpcMsg::Submit payload")?;
                if len > MAX_RPC_PAYLOAD {
                    return Err(CodecError::BadLength {
                        what: "RpcMsg::Submit payload",
                        claimed: len as u64,
                        remaining: MAX_RPC_PAYLOAD,
                    });
                }
                let payload = r.take_bytes(len)?.as_slice().to_vec();
                Ok(RpcMsg::Submit {
                    client,
                    seq,
                    lane,
                    payload,
                })
            }
            2 => Ok(RpcMsg::SubmitAck {
                client: r.u64()?,
                seq: r.u64()?,
                status: decode_status(r)?,
            }),
            3 => Ok(RpcMsg::Query { req: r.u64()? }),
            4 => Ok(RpcMsg::QueryReply {
                req: r.u64()?,
                definite: Round::decode_from(r)?,
            }),
            5 => Ok(RpcMsg::Subscribe {
                from: Round::decode_from(r)?,
            }),
            6 => Ok(RpcMsg::Event {
                round: Round::decode_from(r)?,
                tx_count: r.u32()?,
            }),
            7 => Ok(RpcMsg::Reject {
                reason: RejectReason::from_tag(r.u8()?)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "RpcMsg",
                tag,
            }),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            RpcMsg::Submit { payload, .. } => 8 + 8 + 1 + 4 + payload.len(),
            RpcMsg::SubmitAck { status, .. } => 8 + 8 + status_len(status),
            RpcMsg::Query { .. } => 8,
            RpcMsg::QueryReply { .. } => 8 + 8,
            RpcMsg::Subscribe { .. } => 8,
            RpcMsg::Event { .. } => 8 + 4,
            RpcMsg::Reject { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_rpc_msg() -> Vec<RpcMsg> {
        vec![
            RpcMsg::Submit {
                client: 7,
                seq: 1,
                lane: Lane::Normal,
                payload: vec![0xAA, 0xBB],
            },
            RpcMsg::Submit {
                client: 7,
                seq: 2,
                lane: Lane::Probe,
                payload: vec![],
            },
            RpcMsg::Submit {
                client: 7,
                seq: 3,
                lane: Lane::Bulk,
                payload: vec![1; 64],
            },
            RpcMsg::SubmitAck {
                client: 7,
                seq: 1,
                status: SubmitStatus::Accepted { ticket: 99 },
            },
            RpcMsg::SubmitAck {
                client: 7,
                seq: 2,
                status: SubmitStatus::Busy { retry_after_ms: 25 },
            },
            RpcMsg::SubmitAck {
                client: 7,
                seq: 3,
                status: SubmitStatus::Duplicate,
            },
            RpcMsg::SubmitAck {
                client: 7,
                seq: 4,
                status: SubmitStatus::RateLimited { retry_after_ms: 50 },
            },
            RpcMsg::SubmitAck {
                client: 7,
                seq: 5,
                status: SubmitStatus::Syncing,
            },
            RpcMsg::Query { req: 11 },
            RpcMsg::QueryReply {
                req: 11,
                definite: Round(4096),
            },
            RpcMsg::Subscribe { from: Round(10) },
            RpcMsg::Event {
                round: Round(10),
                tx_count: 3,
            },
            RpcMsg::Reject {
                reason: RejectReason::BadFrame,
            },
            RpcMsg::Reject {
                reason: RejectReason::Oversized,
            },
            RpcMsg::Reject {
                reason: RejectReason::BadMessage,
            },
        ]
    }

    #[test]
    fn codec_roundtrips_every_rpc_msg_variant() {
        for msg in every_rpc_msg() {
            let bytes = msg.encode();
            assert_eq!(bytes.len(), msg.encoded_len(), "{msg:?}");
            assert_eq!(RpcMsg::decode(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn codec_rejects_unknown_discriminants() {
        assert!(matches!(
            RpcMsg::decode(&[0xEE]),
            Err(CodecError::BadTag { what: "RpcMsg", .. })
        ));
        // Unknown lane inside an otherwise well-formed submit.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(9); // no such lane
        assert!(matches!(
            RpcMsg::decode(&bytes),
            Err(CodecError::BadTag { what: "Lane", .. })
        ));
        // Unknown status inside an ack.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(0);
        assert!(matches!(
            RpcMsg::decode(&bytes),
            Err(CodecError::BadTag {
                what: "SubmitStatus",
                ..
            })
        ));
    }

    #[test]
    fn truncating_any_prefix_never_panics() {
        for msg in every_rpc_msg() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    RpcMsg::decode(&bytes[..cut]).is_err(),
                    "a {cut}-byte prefix of {msg:?} decoded"
                );
            }
        }
    }

    #[test]
    fn oversized_submit_payload_is_rejected_before_allocation() {
        // Claim a payload one byte past the cap; the decoder must refuse on
        // the declared length, not trust it and allocate.
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.extend_from_slice(&1u64.to_be_bytes());
        bytes.push(2);
        bytes.extend_from_slice(&((MAX_RPC_PAYLOAD as u32 + 1).to_be_bytes()));
        // Even with the bytes actually present, the cap must hold.
        bytes.resize(bytes.len() + MAX_RPC_PAYLOAD + 1, 0);
        assert!(matches!(
            RpcMsg::decode(&bytes),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn status_helpers_classify_outcomes() {
        assert!(SubmitStatus::Accepted { ticket: 1 }.is_accepted());
        assert!(!SubmitStatus::Duplicate.is_accepted());
        assert!(SubmitStatus::Busy { retry_after_ms: 5 }.is_retryable());
        assert!(SubmitStatus::RateLimited { retry_after_ms: 5 }.is_retryable());
        assert!(SubmitStatus::Syncing.is_retryable());
        assert!(!SubmitStatus::Duplicate.is_retryable());
        assert_eq!(
            SubmitStatus::Busy { retry_after_ms: 5 }.retry_after_ms(),
            Some(5)
        );
        assert_eq!(SubmitStatus::Syncing.retry_after_ms(), None);
    }

    #[test]
    fn lane_indices_are_stable_and_distinct() {
        let idx: Vec<usize> = Lane::ALL.iter().map(|l| l.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        assert_eq!(Lane::Probe.name(), "probe");
        assert_eq!(Lane::Normal.name(), "normal");
        assert_eq!(Lane::Bulk.name(), "bulk");
    }
}
