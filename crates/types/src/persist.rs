//! Payload encodings for the durable store (`fireledger-store`).
//!
//! The store frames everything as `(kind u8, payload bytes)` records
//! (docs/WIRE_FORMAT.md §9); this module defines what goes *inside* those
//! payloads, reusing the [`crate::codec::WireCodec`] rules so the on-disk
//! encoding shares the wire format's canonicality guarantees: fixed-width
//! big-endian integers, `u32`-counted sequences, no varints.
//!
//! Two payload families exist:
//!
//! * [`StoredBlock`] — one definite (BBFC-final) block of one worker ledger,
//!   written to the **block log** with kind `0x01`
//!   (`fireledger-store::REC_BLOCK`). The block log is the node's committed
//!   chain; replaying it rebuilds every worker's definite prefix.
//! * [`WalRecord`] — not-yet-committed protocol state written to the
//!   **consensus WAL**: the active round ([`WalRecord::Round`], kind
//!   [`WAL_ROUND`]), a cast vote ([`WalRecord::Vote`], kind [`WAL_VOTE`]),
//!   and a locked header hash ([`WalRecord::Locked`], kind [`WAL_LOCKED`]).
//!   Votes are persisted **before** they are broadcast, so a restarted node
//!   can never equivocate against its pre-kill self: replaying the WAL
//!   restores every vote it already sent.
//!
//! The record `kind` byte lives in the store's framing, not in the payload —
//! so [`WalRecord`] encodes only its fields and is decoded *given* the kind.

use crate::block::{Hash, SignedHeader};
use crate::codec::{CodecError, Reader, WireCodec};
use crate::ids::{NodeId, Round, WorkerId};
use crate::transaction::Transaction;

/// Store record kind of a WAL round entry (WIRE_FORMAT.md §9.3).
pub const WAL_ROUND: u8 = 0x10;
/// Store record kind of a WAL vote entry (WIRE_FORMAT.md §9.3).
pub const WAL_VOTE: u8 = 0x11;
/// Store record kind of a WAL locked-value entry (WIRE_FORMAT.md §9.3).
pub const WAL_LOCKED: u8 = 0x12;

/// One definite block as persisted to the block log (WIRE_FORMAT.md §9.2):
/// the worker ledger it extends, the signed header exactly as agreed, and
/// the transaction body. Everything a recovering node needs to rebuild its
/// chain entry — including re-verifying the proposer's signature over the
/// header's canonical bytes, since the header encoding *is* the signing
/// pre-image.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredBlock {
    /// The worker ledger this block belongs to.
    pub worker: WorkerId,
    /// The proposer-signed header, byte-identical to the wire form.
    pub signed_header: SignedHeader,
    /// The block body.
    pub txs: Vec<Transaction>,
}

impl WireCodec for StoredBlock {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.worker.encode_to(out);
        self.signed_header.encode_to(out);
        self.txs.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StoredBlock {
            worker: WorkerId::decode_from(r)?,
            signed_header: SignedHeader::decode_from(r)?,
            txs: Vec::<Transaction>::decode_from(r)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.worker.encoded_len() + self.signed_header.encoded_len() + self.txs.encoded_len()
    }
}

/// One consensus-WAL entry (WIRE_FORMAT.md §9.3). The variant is carried by
/// the store record's `kind` byte ([`WAL_ROUND`] / [`WAL_VOTE`] /
/// [`WAL_LOCKED`]), so the payload encodes only the fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A worker entered `round` with `proposer` as its candidate.
    Round {
        /// The worker ledger.
        worker: WorkerId,
        /// The round entered.
        round: Round,
        /// The round's candidate proposer.
        proposer: NodeId,
    },
    /// A worker cast `vote` on `proposer`'s block in `round`. Written (and
    /// on [`crate::faults::DiskFault`]-free stores, synced per the fsync
    /// policy) before the vote is broadcast.
    Vote {
        /// The worker ledger.
        worker: WorkerId,
        /// The round voted in.
        round: Round,
        /// The proposer voted on.
        proposer: NodeId,
        /// The vote value.
        vote: bool,
    },
    /// A worker locked `header_hash` by voting *true* on it in `round` — the
    /// header the node must keep preferring after a restart.
    Locked {
        /// The worker ledger.
        worker: WorkerId,
        /// The round the lock was taken in.
        round: Round,
        /// Hash of the locked header.
        header_hash: Hash,
    },
}

impl WalRecord {
    /// The store record kind this entry is framed with.
    pub fn kind(&self) -> u8 {
        match self {
            WalRecord::Round { .. } => WAL_ROUND,
            WalRecord::Vote { .. } => WAL_VOTE,
            WalRecord::Locked { .. } => WAL_LOCKED,
        }
    }

    /// This entry's payload bytes (the kind byte is *not* included — it
    /// lives in the store's record framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Round {
                worker,
                round,
                proposer,
            } => {
                worker.encode_to(&mut out);
                round.encode_to(&mut out);
                proposer.encode_to(&mut out);
            }
            WalRecord::Vote {
                worker,
                round,
                proposer,
                vote,
            } => {
                worker.encode_to(&mut out);
                round.encode_to(&mut out);
                proposer.encode_to(&mut out);
                vote.encode_to(&mut out);
            }
            WalRecord::Locked {
                worker,
                round,
                header_hash,
            } => {
                worker.encode_to(&mut out);
                round.encode_to(&mut out);
                header_hash.encode_to(&mut out);
            }
        }
        out
    }

    /// Decodes one WAL entry from a store record's `(kind, payload)` pair.
    /// An unknown kind is a [`CodecError::BadTag`] — replay treats it as
    /// corruption.
    pub fn decode_record(kind: u8, payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let entry = match kind {
            WAL_ROUND => WalRecord::Round {
                worker: WorkerId::decode_from(&mut r)?,
                round: Round::decode_from(&mut r)?,
                proposer: NodeId::decode_from(&mut r)?,
            },
            WAL_VOTE => WalRecord::Vote {
                worker: WorkerId::decode_from(&mut r)?,
                round: Round::decode_from(&mut r)?,
                proposer: NodeId::decode_from(&mut r)?,
                vote: bool::decode_from(&mut r)?,
            },
            WAL_LOCKED => WalRecord::Locked {
                worker: WorkerId::decode_from(&mut r)?,
                round: Round::decode_from(&mut r)?,
                header_hash: Hash::decode_from(&mut r)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "WalRecord",
                    tag,
                })
            }
        };
        if !r.is_empty() {
            return Err(CodecError::Trailing {
                remaining: r.remaining(),
            });
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockHeader, Signature, GENESIS_HASH};
    use crate::bytes::Bytes;

    fn sample_header() -> SignedHeader {
        let header = BlockHeader::new(
            Round(3),
            WorkerId(1),
            NodeId(2),
            GENESIS_HASH,
            Hash([0x11; 32]),
            2,
            7,
        );
        SignedHeader::new(header, Signature(Bytes::copy_from_slice(b"sig")))
    }

    #[test]
    fn stored_block_roundtrips() {
        let block = StoredBlock {
            worker: WorkerId(1),
            signed_header: sample_header(),
            txs: vec![
                Transaction::new(9, 0, Bytes::copy_from_slice(b"tx-a")),
                Transaction::new(9, 1, Bytes::copy_from_slice(b"tx-b")),
            ],
        };
        let bytes = block.encode();
        assert_eq!(bytes.len(), block.encoded_len());
        assert_eq!(StoredBlock::decode(&bytes).unwrap(), block);
    }

    #[test]
    fn wal_records_roundtrip_via_kind_and_payload() {
        let entries = [
            WalRecord::Round {
                worker: WorkerId(0),
                round: Round(5),
                proposer: NodeId(3),
            },
            WalRecord::Vote {
                worker: WorkerId(1),
                round: Round(6),
                proposer: NodeId(0),
                vote: true,
            },
            WalRecord::Locked {
                worker: WorkerId(1),
                round: Round(6),
                header_hash: Hash([0xAB; 32]),
            },
        ];
        for entry in entries {
            let decoded = WalRecord::decode_record(entry.kind(), &entry.encode_payload()).unwrap();
            assert_eq!(decoded, entry);
        }
    }

    #[test]
    fn unknown_wal_kind_is_rejected() {
        let err = WalRecord::decode_record(0x7F, &[]).unwrap_err();
        assert!(matches!(err, CodecError::BadTag { tag: 0x7F, .. }));
    }

    #[test]
    fn trailing_wal_payload_bytes_are_rejected() {
        let entry = WalRecord::Round {
            worker: WorkerId(0),
            round: Round(1),
            proposer: NodeId(2),
        };
        let mut payload = entry.encode_payload();
        payload.push(0x00);
        let err = WalRecord::decode_record(entry.kind(), &payload).unwrap_err();
        assert!(matches!(err, CodecError::Trailing { remaining: 1 }));
    }
}
