//! The runtime-agnostic protocol abstraction.
//!
//! Every protocol in this workspace (FireLedger, WRB/OBBC, PBFT, Bracha RB,
//! HotStuff, the BFT-SMaRt-style ordering baseline) is written as a *sans-IO
//! state machine*: it never performs I/O or looks at a clock. Instead it
//! reacts to events — an incoming message, an expired timer, a client
//! transaction — and records the effects it wants (send a message, arm a
//! timer, deliver a block, charge CPU time) into an [`Outbox`].
//!
//! Two runtimes drive these state machines:
//! * the discrete-event simulator in `fireledger-sim`, which also models link
//!   latency, per-node bandwidth, and CPU cost, and
//! * the threaded in-process runtime in `fireledger-net`, which uses real
//!   channels, threads, and wall-clock timers.
//!
//! Keeping protocols free of I/O makes them unit-testable deterministically
//! and lets a single implementation back both the correctness tests and every
//! performance experiment.

use crate::block::Block;
use crate::ids::{NodeId, Round, WorkerId};
use crate::transaction::Transaction;
use std::fmt;
use std::time::Duration;

/// A protocol-scoped timer identifier.
///
/// Protocols encode whatever they need (round number, purpose) into the `u64`;
/// the runtime treats it as opaque. Re-arming a timer with an id that is
/// already armed replaces the previous deadline.
///
/// # Bit layout
///
/// The 64 bits are split into three *disjoint* fields so that composing a
/// timer can never alias another field (an earlier revision let the FLO
/// worker index spill into the sequence bits):
///
/// ```text
///   63       56 55       48 47                               0
///  +-----------+-----------+----------------------------------+
///  |   kind    |  worker   |             sequence             |
///  +-----------+-----------+----------------------------------+
/// ```
///
/// * `kind` — the protocol-level purpose tag passed to [`TimerId::compose`];
/// * `worker` — the FLO worker instance, set only through
///   [`TimerId::with_worker`] (0 for single-instance protocols);
/// * `sequence` — a 48-bit protocol counter (round number, generation, ...).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

impl TimerId {
    /// Number of bits available for the sequence field.
    pub const SEQ_BITS: u32 = 48;
    /// Mask of the sequence field.
    pub const SEQ_MASK: u64 = (1 << Self::SEQ_BITS) - 1;
    /// Bit offset of the worker field.
    pub const WORKER_SHIFT: u32 = 48;
    /// Bit offset of the kind field.
    pub const KIND_SHIFT: u32 = 56;
    /// Exclusive upper bound on worker indices a timer id can carry, and hence
    /// on the number of FLO workers per node.
    pub const MAX_WORKERS: usize = 256;

    /// Packs a `kind` tag and a sequence number (for example a round) into one
    /// timer id. The worker field is left at zero; multi-instance protocols
    /// tag it afterwards with [`TimerId::with_worker`].
    ///
    /// # Panics
    /// Panics if `seq` does not fit the 48-bit sequence field — a silent mask
    /// would let two distinct protocol timers collide.
    pub fn compose(kind: u8, seq: u64) -> TimerId {
        assert!(
            seq <= Self::SEQ_MASK,
            "timer sequence {seq} exceeds the 48-bit field"
        );
        TimerId(((kind as u64) << Self::KIND_SHIFT) | seq)
    }

    /// Reverses [`TimerId::compose`]: the `(kind, sequence)` pair. The worker
    /// field is *not* part of the sequence; use [`TimerId::worker`] for it.
    pub fn decompose(self) -> (u8, u64) {
        ((self.0 >> Self::KIND_SHIFT) as u8, self.0 & Self::SEQ_MASK)
    }

    /// Returns this id with the worker field set to `worker`.
    ///
    /// # Panics
    /// Panics if `worker` does not fit the 8-bit worker field.
    pub fn with_worker(self, worker: WorkerId) -> TimerId {
        assert!(
            (worker.as_usize()) < Self::MAX_WORKERS,
            "worker index {worker} exceeds the timer id worker field"
        );
        let cleared = self.0 & !(0xFF << Self::WORKER_SHIFT);
        TimerId(cleared | ((worker.0 as u64) << Self::WORKER_SHIFT))
    }

    /// The worker field (0 when the timer was never tagged).
    pub fn worker(self) -> WorkerId {
        WorkerId(((self.0 >> Self::WORKER_SHIFT) & 0xFF) as u32)
    }

    /// Returns this id with the worker field cleared — the id as the worker
    /// that armed it originally composed it.
    pub fn without_worker(self) -> TimerId {
        TimerId(self.0 & !(0xFF << Self::WORKER_SHIFT))
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, seq) = self.decompose();
        let worker = self.worker();
        if worker.0 == 0 {
            write!(f, "Timer({kind}:{seq})")
        } else {
            write!(f, "Timer({kind}:{worker}:{seq})")
        }
    }
}

/// A block delivered definitively (totally ordered) to the application.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Worker instance the block belongs to.
    pub worker: WorkerId,
    /// Round in which the block was proposed.
    pub round: Round,
    /// The node that proposed the block.
    pub proposer: NodeId,
    /// The block itself.
    pub block: Block,
}

/// CPU work to be charged to the node by the simulator's CPU model.
///
/// Protocols report *what* cryptographic work they performed; the simulator
/// translates it into time using a calibrated cost model (`fireledger-crypto`
/// measures real signing / verification / hashing rates). The threaded runtime
/// ignores these charges because it pays the real CPU cost directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuCharge {
    /// Number of ECDSA signatures produced.
    pub signs: u32,
    /// Number of ECDSA signature verifications performed.
    pub verifies: u32,
    /// Number of payload bytes hashed (block bodies, merkle leaves, ...).
    pub hashed_bytes: u64,
}

impl CpuCharge {
    /// A charge for a single signature over `bytes` hashed bytes.
    pub fn sign(bytes: u64) -> Self {
        CpuCharge {
            signs: 1,
            verifies: 0,
            hashed_bytes: bytes,
        }
    }

    /// A charge for a single verification over `bytes` hashed bytes.
    pub fn verify(bytes: u64) -> Self {
        CpuCharge {
            signs: 0,
            verifies: 1,
            hashed_bytes: bytes,
        }
    }

    /// A charge for hashing `bytes` bytes.
    pub fn hash(bytes: u64) -> Self {
        CpuCharge {
            signs: 0,
            verifies: 0,
            hashed_bytes: bytes,
        }
    }

    /// Merges two charges.
    pub fn merge(self, other: CpuCharge) -> CpuCharge {
        CpuCharge {
            signs: self.signs + other.signs,
            verifies: self.verifies + other.verifies,
            hashed_bytes: self.hashed_bytes + other.hashed_bytes,
        }
    }

    /// True when no work is recorded.
    pub fn is_zero(&self) -> bool {
        self.signs == 0 && self.verifies == 0 && self.hashed_bytes == 0
    }
}

/// Protocol-level observations used by the experiment harness for metrics.
///
/// The five lettered events correspond to Figure 9 of the paper: (A) block
/// proposal, (B) header proposal, (C) tentative decision, (D) definite
/// decision, (E) delivery by FLO.
#[derive(Clone, Debug, PartialEq)]
pub enum Observation {
    /// (A) A proposer assembled and disseminated a block body.
    BlockProposed {
        /// Worker instance.
        worker: WorkerId,
        /// Round of the block.
        round: Round,
        /// Number of transactions in the block.
        tx_count: u32,
        /// Payload bytes in the block.
        payload_bytes: u64,
    },
    /// (B) A proposer sent the block's header through the consensus path.
    HeaderProposed {
        /// Worker instance.
        worker: WorkerId,
        /// Round of the header.
        round: Round,
    },
    /// (C) The block of `round` was tentatively appended to the local chain.
    TentativeDecision {
        /// Worker instance.
        worker: WorkerId,
        /// Round of the block.
        round: Round,
    },
    /// (D) The block of `round` became definite (depth `f + 2`).
    DefiniteDecision {
        /// Worker instance.
        worker: WorkerId,
        /// Round of the block.
        round: Round,
        /// Number of transactions in the block.
        tx_count: u32,
        /// Payload bytes in the block.
        payload_bytes: u64,
    },
    /// (E) FLO's client manager delivered the block to the application in
    /// round-robin order across workers.
    FloDelivery {
        /// Worker instance.
        worker: WorkerId,
        /// Round of the block.
        round: Round,
    },
    /// The optimistic fast path failed and the OBBC fallback was invoked.
    FallbackInvoked {
        /// Worker instance.
        worker: WorkerId,
        /// Round for which the fallback ran.
        round: Round,
    },
    /// A node detected a chain inconsistency and started the recovery
    /// procedure (Algorithm 3).
    RecoveryStarted {
        /// Worker instance.
        worker: WorkerId,
        /// Round the recovery targets.
        round: Round,
    },
    /// The recovery procedure finished and a version was adopted.
    RecoveryFinished {
        /// Worker instance.
        worker: WorkerId,
        /// Round the recovery targeted.
        round: Round,
        /// Number of blocks in the adopted version suffix.
        adopted_len: usize,
    },
    /// A proof of Byzantine behaviour was generated against `culprit`.
    ByzantineDetected {
        /// The node the proof incriminates.
        culprit: NodeId,
    },
    /// A WRB delivery returned `nil` (the proposer was skipped).
    NilDelivery {
        /// Worker instance.
        worker: WorkerId,
        /// Round that returned nil.
        round: Round,
    },
    /// A delivered header's claimed (lagged) execution state root diverged
    /// from this node's own execution of the same committed prefix — a
    /// typed, counted execution fault (WIRE_FORMAT.md §12).
    ExecRootMismatch {
        /// Worker instance whose delivery stream carried the bad claim.
        worker: WorkerId,
        /// Round of the header carrying the mismatching root.
        round: Round,
    },
    /// A state-sync cycle completed and the worker resumed normal consensus.
    SyncCompleted {
        /// Worker instance.
        worker: WorkerId,
        /// The round the worker resumed at (its post-sync tip).
        round: Round,
        /// Cumulative rounds this worker has fetched through state sync.
        fetched: u64,
    },
}

/// An effect requested by a protocol state machine.
//
// `Deliver` dwarfs the other variants (the header now carries the lagged
// execution state root), but boxing it would cost an allocation per
// delivered block on the hot path for a value that is consumed immediately.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` to a single peer.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Send `msg` to every other node in the cluster (excluding self).
    Broadcast {
        /// The message.
        msg: M,
    },
    /// Arm (or re-arm) a timer that will fire after `delay`.
    SetTimer {
        /// Timer identity (protocol-scoped).
        id: TimerId,
        /// Delay until expiry.
        delay: Duration,
    },
    /// Cancel a previously armed timer; a no-op if it is not armed.
    CancelTimer {
        /// Timer identity.
        id: TimerId,
    },
    /// Deliver a definitively decided block to the application.
    Deliver(Delivery),
    /// Charge CPU work to the node (simulated runtimes only).
    Cpu(CpuCharge),
    /// Report a protocol-level observation for metrics collection.
    Observe(Observation),
}

/// Collects the [`Action`]s produced while handling a single event.
#[derive(Debug)]
pub struct Outbox<M> {
    actions: Vec<Action<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox {
            actions: Vec::new(),
        }
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a unicast message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a broadcast to all other nodes.
    pub fn broadcast(&mut self, msg: M) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, id: TimerId, delay: Duration) {
        self.actions.push(Action::SetTimer { id, delay });
    }

    /// Cancels a timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Delivers a block to the application.
    pub fn deliver(&mut self, delivery: Delivery) {
        self.actions.push(Action::Deliver(delivery));
    }

    /// Charges CPU work (ignored by non-simulated runtimes).
    pub fn cpu(&mut self, charge: CpuCharge) {
        if !charge.is_zero() {
            self.actions.push(Action::Cpu(charge));
        }
    }

    /// Records an observation for metrics.
    pub fn observe(&mut self, obs: Observation) {
        self.actions.push(Action::Observe(obs));
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Drains the queued actions in FIFO order.
    pub fn drain(&mut self) -> impl Iterator<Item = Action<M>> + '_ {
        self.actions.drain(..)
    }

    /// Consumes the outbox and returns its actions.
    pub fn into_actions(self) -> Vec<Action<M>> {
        self.actions
    }

    /// Appends all actions of `other` (used when a parent protocol wraps a
    /// sub-protocol's outbox).
    pub fn extend(&mut self, other: Outbox<M>) {
        self.actions.extend(other.actions);
    }

    /// Maps the message type, wrapping every queued message with `f`. This is
    /// how composite protocols (e.g. FireLedger embedding PBFT) lift the
    /// sub-protocol's messages into their own message enum.
    pub fn map_msgs<N>(self, mut f: impl FnMut(M) -> N) -> Outbox<N> {
        let actions = self
            .actions
            .into_iter()
            .map(|a| match a {
                Action::Send { to, msg } => Action::Send { to, msg: f(msg) },
                Action::Broadcast { msg } => Action::Broadcast { msg: f(msg) },
                Action::SetTimer { id, delay } => Action::SetTimer { id, delay },
                Action::CancelTimer { id } => Action::CancelTimer { id },
                Action::Deliver(d) => Action::Deliver(d),
                Action::Cpu(c) => Action::Cpu(c),
                Action::Observe(o) => Action::Observe(o),
            })
            .collect();
        Outbox { actions }
    }
}

/// A sans-IO protocol state machine.
///
/// The runtime guarantees that calls into a single protocol instance are
/// serialized (no concurrent calls), that messages between a pair of correct
/// nodes are neither lost, duplicated nor reordered (reliable FIFO links, the
/// paper's §3.1 link model), and that an armed timer eventually fires unless
/// cancelled or re-armed.
pub trait Protocol {
    /// The protocol's wire message type.
    type Msg: Clone + fmt::Debug;

    /// The node this instance runs on.
    fn node_id(&self) -> NodeId;

    /// Called once before any other event is delivered.
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Called when the timer `timer` fires.
    fn on_timer(&mut self, timer: TimerId, out: &mut Outbox<Self::Msg>);

    /// Called when a client submits a transaction to this node. The default
    /// implementation ignores client traffic (some sub-protocols never see
    /// clients).
    fn on_transaction(&mut self, _tx: Transaction, _out: &mut Outbox<Self::Msg>) {}

    /// True while the node is catching up through state sync and must not
    /// accept client work it could lose. Ingress admission mirrors this into
    /// a `Syncing` backpressure signal. Protocols without a sync phase keep
    /// the default.
    fn is_syncing(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockHeader, GENESIS_HASH};
    use crate::ids::{NodeId, Round, WorkerId};

    #[test]
    fn timer_id_compose_roundtrip() {
        let t = TimerId::compose(3, 123_456);
        assert_eq!(t.decompose(), (3, 123_456));
        let t = TimerId::compose(255, 0);
        assert_eq!(t.decompose(), (255, 0));
        let t = TimerId::compose(7, TimerId::SEQ_MASK);
        assert_eq!(t.decompose(), (7, TimerId::SEQ_MASK));
    }

    #[test]
    fn timer_id_worker_field_is_disjoint_from_kind_and_seq() {
        // The regression this layout fixes: tagging a worker must never change
        // the kind or the sequence, for any worker index the field admits.
        for worker in [0u32, 1, 7, 255] {
            let t = TimerId::compose(0xAB, 0x1234_5678_9ABC).with_worker(WorkerId(worker));
            assert_eq!(t.decompose(), (0xAB, 0x1234_5678_9ABC), "worker {worker}");
            assert_eq!(t.worker(), WorkerId(worker));
            assert_eq!(t.without_worker(), TimerId::compose(0xAB, 0x1234_5678_9ABC));
        }
    }

    #[test]
    fn timer_id_retagging_replaces_the_worker() {
        let t = TimerId::compose(1, 42).with_worker(WorkerId(200));
        let r = t.with_worker(WorkerId(3));
        assert_eq!(r.worker(), WorkerId(3));
        assert_eq!(r.decompose(), (1, 42));
    }

    #[test]
    fn timer_ids_differ_across_any_field() {
        let base = TimerId::compose(1, 1).with_worker(WorkerId(1));
        assert_ne!(base, TimerId::compose(2, 1).with_worker(WorkerId(1)));
        assert_ne!(base, TimerId::compose(1, 2).with_worker(WorkerId(1)));
        assert_ne!(base, TimerId::compose(1, 1).with_worker(WorkerId(2)));
    }

    #[test]
    #[should_panic(expected = "exceeds the 48-bit field")]
    fn timer_id_rejects_oversized_sequences() {
        let _ = TimerId::compose(0, TimerId::SEQ_MASK + 1);
    }

    #[test]
    #[should_panic(expected = "worker field")]
    fn timer_id_rejects_oversized_worker_indices() {
        let _ = TimerId::compose(0, 0).with_worker(WorkerId(256));
    }

    #[test]
    fn cpu_charge_merge_and_zero() {
        let a = CpuCharge::sign(100);
        let b = CpuCharge::verify(50);
        let m = a.merge(b).merge(CpuCharge::hash(10));
        assert_eq!(m.signs, 1);
        assert_eq!(m.verifies, 1);
        assert_eq!(m.hashed_bytes, 160);
        assert!(!m.is_zero());
        assert!(CpuCharge::default().is_zero());
    }

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(1), 10);
        out.broadcast(20);
        out.set_timer(TimerId(5), Duration::from_millis(1));
        out.cancel_timer(TimerId(5));
        out.cpu(CpuCharge::sign(1));
        out.cpu(CpuCharge::default()); // zero charge is dropped
        assert_eq!(out.len(), 5);
        let kinds: Vec<_> = out
            .drain()
            .map(|a| match a {
                Action::Send { .. } => "send",
                Action::Broadcast { .. } => "bcast",
                Action::SetTimer { .. } => "set",
                Action::CancelTimer { .. } => "cancel",
                Action::Cpu(_) => "cpu",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["send", "bcast", "set", "cancel", "cpu"]);
        assert!(out.is_empty());
    }

    #[test]
    fn outbox_map_msgs_wraps_messages_only() {
        let mut out: Outbox<u32> = Outbox::new();
        out.send(NodeId(0), 1);
        out.set_timer(TimerId(1), Duration::from_secs(1));
        out.broadcast(2);
        let mapped: Outbox<String> = out.map_msgs(|m| format!("m{m}"));
        let actions = mapped.into_actions();
        assert_eq!(actions.len(), 3);
        match &actions[0] {
            Action::Send { msg, .. } => assert_eq!(msg, "m1"),
            other => panic!("unexpected {other:?}"),
        }
        match &actions[2] {
            Action::Broadcast { msg } => assert_eq!(msg, "m2"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn outbox_deliver_and_observe() {
        let header = BlockHeader::new(
            Round(1),
            WorkerId(0),
            NodeId(0),
            GENESIS_HASH,
            GENESIS_HASH,
            0,
            0,
        );
        let mut out: Outbox<u32> = Outbox::new();
        out.deliver(Delivery {
            worker: WorkerId(0),
            round: Round(1),
            proposer: NodeId(0),
            block: Block::new(header, vec![]),
        });
        out.observe(Observation::TentativeDecision {
            worker: WorkerId(0),
            round: Round(1),
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn outbox_extend_concatenates() {
        let mut a: Outbox<u32> = Outbox::new();
        a.broadcast(1);
        let mut b: Outbox<u32> = Outbox::new();
        b.broadcast(2);
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
