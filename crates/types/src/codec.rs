//! The binary wire codec: [`WireCodec`] and the versioned frame header.
//!
//! This module implements the byte-level encoding specified normatively in
//! `docs/WIRE_FORMAT.md` (repository root) — the spec is the source of truth
//! and this file cites its section numbers; a change to either must change
//! both. The codec is what the TCP runtime (`fireledger-net`) puts on real
//! sockets, whereas [`crate::wire::WireSize`] merely *models* byte costs for
//! the simulator.
//!
//! Core rules (WIRE_FORMAT.md §2):
//!
//! * all multi-byte integers are **fixed-width big-endian** (network byte
//!   order) — the format deliberately uses no varints, so that encoded sizes
//!   are input-independent and decoding is branch-free;
//! * `bool` is one byte, `0x00` or `0x01`; anything else is rejected;
//! * `Option<T>` is a one-byte presence tag (`0x00` absent / `0x01` present)
//!   followed by the payload when present;
//! * sequences are a `u32` element count followed by the elements; a count
//!   exceeding the bytes remaining in the buffer is rejected before any
//!   allocation happens, and decoded elements are accumulated incrementally
//!   so memory grows with the *input actually consumed*, never with the
//!   claimed count;
//! * enums are a one-byte discriminant followed by the variant's fields;
//!   unknown discriminants are rejected.

use crate::block::{Block, BlockHeader, Hash, Signature, SignedHeader};
use crate::bytes::Bytes;
use crate::ids::{NodeId, Round, WorkerId};
use crate::transaction::Transaction;
use std::fmt;

/// Magic bytes opening every frame (WIRE_FORMAT.md §3): ASCII `FLGR`.
pub const FRAME_MAGIC: [u8; 4] = *b"FLGR";

/// The wire-format version this implementation speaks (WIRE_FORMAT.md §1).
///
/// Bumped on any incompatible change to the frame header or to a message
/// layout; a receiver rejects frames whose version byte differs.
///
/// Version 2 extended [`BlockHeader`] with the lagged execution state root
/// (WIRE_FORMAT.md §12): canonical header bytes gained a trailing
/// `Option<Hash>` presence byte, shifting every layout that embeds a header.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on a frame's payload length in bytes (WIRE_FORMAT.md §3).
///
/// 32 MiB comfortably holds the largest legitimate message (a block of
/// β = 1000 transactions of σ = 4096 bytes is ≈ 4 MiB) while bounding the
/// memory an adversarial or corrupt length prefix can make a receiver
/// allocate.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// Size in bytes of the encoded [`FrameHeader`]: magic + version + length.
pub const FRAME_HEADER_LEN: usize = 9;

/// A decoding failure.
///
/// Every variant names the reason precisely so framing tests can assert the
/// exact rejection; the [`fmt::Display`] form is what reaches logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a fixed-size field could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum discriminant byte had no defined meaning.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending discriminant.
        tag: u8,
    },
    /// A boolean byte was neither `0x00` nor `0x01`.
    BadBool(u8),
    /// A sequence claimed more elements than the buffer can possibly hold.
    BadLength {
        /// The type being decoded.
        what: &'static str,
        /// The claimed element count.
        claimed: u64,
        /// Bytes that were left to satisfy it.
        remaining: usize,
    },
    /// A frame did not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// A frame carried an unsupported [`WIRE_VERSION`].
    BadVersion(u8),
    /// A frame's payload length exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Decoding finished with unconsumed input left over.
    Trailing {
        /// Bytes left after the value was decoded.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::BadTag { what, tag } => {
                write!(f, "unknown {what} discriminant 0x{tag:02x}")
            }
            CodecError::BadBool(b) => write!(f, "invalid boolean byte 0x{b:02x}"),
            CodecError::BadLength {
                what,
                claimed,
                remaining,
            } => write!(
                f,
                "{what} claims {claimed} elements but only {remaining} bytes remain"
            ),
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            CodecError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            CodecError::Oversized(len) => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            CodecError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for crate::error::Error {
    fn from(e: CodecError) -> Self {
        crate::error::Error::Codec(e.to_string())
    }
}

/// A cursor over a byte buffer being decoded.
///
/// All reads consume from the front and fail with
/// [`CodecError::Truncated`] instead of panicking; a reader that is not
/// [`Reader::is_empty`] after [`WireCodec::decode`] is a protocol error.
///
/// A reader started with [`Reader::new_shared`] additionally carries the
/// `Arc`-backed [`Bytes`] the input lives in; [`Reader::take_bytes`] then
/// hands out zero-copy *views* into that backing instead of copying
/// payloads out — the wire format is identical either way.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    /// The shared buffer `buf` is a suffix of, when decoding zero-copy.
    shared: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Starts reading `buf` from its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, shared: None }
    }

    /// Starts reading `bytes` from its first byte, remembering the shared
    /// backing so byte-payload fields decode as zero-copy views.
    pub fn new_shared(bytes: &'a Bytes) -> Self {
        Reader {
            buf: bytes.as_slice(),
            shared: Some(bytes),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consumes a fixed-size byte array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take_array()?))
    }

    /// Consumes a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Consumes a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Consumes `n` bytes as an owned [`Bytes`] buffer.
    ///
    /// On a [`Reader::new_shared`] reader this is a zero-copy view into the
    /// shared backing (a reference bump); otherwise the bytes are copied
    /// into a fresh buffer. Decoded values are identical either way.
    pub fn take_bytes(&mut self, n: usize) -> Result<Bytes, CodecError> {
        match self.shared {
            Some(parent) => {
                // Offset of the cursor within the backing: the backing's
                // length minus what is still unread.
                let off = parent.len() - self.buf.len();
                self.take(n)?;
                Ok(parent.slice(off, n))
            }
            None => Ok(Bytes::copy_from_slice(self.take(n)?)),
        }
    }

    /// Consumes a sequence count (`u32` big-endian, WIRE_FORMAT.md §2.4) and
    /// validates it against the bytes remaining: every element encodes to at
    /// least one byte, so a count above [`Reader::remaining`] is corrupt and
    /// is rejected *before* any allocation sized by it.
    pub fn seq_len(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let claimed = self.u32()? as u64;
        if claimed > self.remaining() as u64 {
            return Err(CodecError::BadLength {
                what,
                claimed,
                remaining: self.remaining(),
            });
        }
        Ok(claimed as usize)
    }
}

/// Types with a self-contained binary encoding (WIRE_FORMAT.md).
///
/// `decode_from(encode_to(v)) == v` must hold for every value, and the
/// encoding must be canonical: equal values produce identical bytes. The
/// trait is deliberately allocation-light — encoding appends to a caller-owned
/// buffer and decoding borrows from the input.
///
/// ## Size hints and buffer reuse
///
/// [`WireCodec::encoded_len`] must return *exactly* the number of bytes
/// [`WireCodec::encode_to`] appends (the `codec_api` integration tests
/// enforce this for every protocol message). The exact hint is what makes
/// the two convenience entry points allocation-disciplined:
///
/// * [`WireCodec::encode`] allocates its buffer once, at the right size —
///   no growth reallocations mid-encode;
/// * [`WireCodec::encode_into`] reuses a caller-owned buffer, so
///   steady-state encoding (the same scratch buffer fed back every message)
///   performs **zero** allocations once the buffer has grown to the
///   high-water mark.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_to(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `r`, consuming exactly the bytes
    /// of its encoding.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Exact size in bytes of this value's encoding — the number of bytes
    /// [`WireCodec::encode_to`] will append.
    fn encoded_len(&self) -> usize;

    /// This value's encoding as a fresh buffer, allocated once at exactly
    /// [`WireCodec::encoded_len`] bytes.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_to(&mut out);
        debug_assert_eq!(
            out.len(),
            self.encoded_len(),
            "encoded_len must match the bytes encode_to appends"
        );
        out
    }

    /// This value's encoding written into a reused buffer: `buf` is cleared,
    /// grown to at least [`WireCodec::encoded_len`] bytes once, and filled.
    /// Feeding the same buffer back for every message makes steady-state
    /// encoding allocation-free.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.encoded_len());
        self.encode_to(buf);
        debug_assert_eq!(
            buf.len(),
            self.encoded_len(),
            "encoded_len must match the bytes encode_to appends"
        );
    }

    /// Decodes a value that must span `bytes` exactly; trailing bytes are a
    /// [`CodecError::Trailing`] error.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Trailing {
                remaining: r.remaining(),
            });
        }
        Ok(value)
    }

    /// Like [`WireCodec::decode`], but decodes zero-copy: byte-payload
    /// fields ([`Bytes`], [`Signature`]) become views into `bytes`' shared
    /// backing instead of fresh copies. The decoded value is equal to what
    /// [`WireCodec::decode`] produces; only the storage strategy differs.
    /// This is what the TCP reader threads use — one `Bytes` per received
    /// frame, every transaction payload a window into it.
    fn decode_shared(bytes: &Bytes) -> Result<Self, CodecError> {
        let mut r = Reader::new_shared(bytes);
        let value = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Trailing {
                remaining: r.remaining(),
            });
        }
        Ok(value)
    }
}

/// The versioned header opening every frame (WIRE_FORMAT.md §3):
/// `FLGR | version u8 | payload length u32`, 9 bytes total.
///
/// The header is defined here, next to the codec, so every transport
/// (today's TCP mesh, tomorrow's QUIC or sharded gossip backends) frames
/// messages identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes (at most [`MAX_FRAME_LEN`]).
    pub len: u32,
}

impl FrameHeader {
    /// A header for a payload of `len` bytes.
    ///
    /// # Panics
    /// Panics if `len` exceeds [`MAX_FRAME_LEN`] — a sender producing an
    /// oversized frame is a local logic error, not a peer's misbehaviour.
    pub fn new(len: usize) -> Self {
        assert!(
            len as u64 <= MAX_FRAME_LEN as u64,
            "frame payload of {len} bytes exceeds MAX_FRAME_LEN"
        );
        FrameHeader { len: len as u32 }
    }

    /// Encodes the header into its 9-byte wire form.
    pub fn encode(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut out = [0u8; FRAME_HEADER_LEN];
        out[..4].copy_from_slice(&FRAME_MAGIC);
        out[4] = WIRE_VERSION;
        out[5..9].copy_from_slice(&self.len.to_be_bytes());
        out
    }

    /// Decodes and validates a 9-byte header: magic, version, and the
    /// [`MAX_FRAME_LEN`] bound, in that order.
    pub fn decode(bytes: &[u8; FRAME_HEADER_LEN]) -> Result<Self, CodecError> {
        let magic: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        if bytes[4] != WIRE_VERSION {
            return Err(CodecError::BadVersion(bytes[4]));
        }
        let len = u32::from_be_bytes(bytes[5..9].try_into().expect("4-byte slice"));
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversized(len));
        }
        Ok(FrameHeader { len })
    }
}

// --- primitive encodings (WIRE_FORMAT.md §2.1–§2.4) ---

impl WireCodec for u8 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl WireCodec for u16 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u16()
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl WireCodec for u32 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireCodec for u64 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireCodec for bool {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::BadBool(b)),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_to(out);
            }
        }
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, WireCodec::encoded_len)
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        for item in self {
            item.encode_to(out);
        }
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.seq_len("Vec")?;
        // Cap the up-front reservation: `len` is attacker-controlled and an
        // element's in-memory size can exceed its (≥ 1 byte) encoded size, so
        // reserving `len` elements could allocate far more than the input
        // justifies. Growth beyond the cap is paid only as elements actually
        // decode — i.e. proportionally to input consumed.
        const MAX_PREALLOC_ELEMS: usize = 1024;
        let mut items = Vec::with_capacity(len.min(MAX_PREALLOC_ELEMS));
        for _ in 0..len {
            items.push(T::decode_from(r)?);
        }
        Ok(items)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(WireCodec::encoded_len).sum::<usize>()
    }
}

impl<T: WireCodec> WireCodec for Box<T> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.as_ref().encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Box::new(T::decode_from(r)?))
    }
    fn encoded_len(&self) -> usize {
        self.as_ref().encoded_len()
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
        self.1.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl WireCodec for Bytes {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode_to(out);
        out.extend_from_slice(self.as_slice());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.seq_len("Bytes")?;
        r.take_bytes(len)
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

// --- workspace types (WIRE_FORMAT.md §4) ---

impl WireCodec for NodeId {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(r.u32()?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireCodec for WorkerId {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WorkerId(r.u32()?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl WireCodec for Round {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Round(r.u64()?))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireCodec for Hash {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Hash(r.take_array()?))
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl WireCodec for Signature {
    fn encode_to(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode_to(out);
        out.extend_from_slice(&self.0);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.seq_len("Signature")?;
        // Arc-backed storage: zero-copy on a shared reader, one copy out of
        // the receive buffer otherwise — and every downstream clone of the
        // signature is a reference-count bump either way.
        Ok(Signature(r.take_bytes(len)?))
    }
    fn encoded_len(&self) -> usize {
        4 + self.0.len()
    }
}

impl WireCodec for Transaction {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.client.encode_to(out);
        self.seq.encode_to(out);
        self.payload.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Transaction {
            client: r.u64()?,
            seq: r.u64()?,
            payload: Bytes::decode_from(r)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + self.payload.encoded_len()
    }
}

/// The header layout is byte-identical to
/// [`BlockHeader::canonical_bytes`] — the hashing/signing pre-image *is* the
/// wire form, so a receiver verifies signatures over exactly the bytes it
/// received (WIRE_FORMAT.md §4.5).
impl WireCodec for BlockHeader {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.canonical_bytes());
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let header = BlockHeader::new(
            Round(r.u64()?),
            WorkerId(r.u32()?),
            NodeId(r.u32()?),
            Hash::decode_from(r)?,
            Hash::decode_from(r)?,
            r.u32()?,
            r.u64()?,
        );
        Ok(match Option::<Hash>::decode_from(r)? {
            Some(root) => header.with_exec_root(root),
            None => header,
        })
    }
    fn encoded_len(&self) -> usize {
        Self::CANONICAL_LEN + 1 + if self.exec_root.is_some() { 32 } else { 0 }
    }
}

impl WireCodec for SignedHeader {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.header.encode_to(out);
        self.signature.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SignedHeader::new(
            BlockHeader::decode_from(r)?,
            Signature::decode_from(r)?,
        ))
    }
    fn encoded_len(&self) -> usize {
        self.header.encoded_len() + self.signature.encoded_len()
    }
}

impl WireCodec for Block {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.header.encode_to(out);
        self.txs.encode_to(out);
    }
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Block::new(
            BlockHeader::decode_from(r)?,
            Vec::<Transaction>::decode_from(r)?,
        ))
    }
    fn encoded_len(&self) -> usize {
        self.header.encoded_len() + self.txs.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::GENESIS_HASH;

    fn roundtrip<T: WireCodec + PartialEq + fmt::Debug>(value: T) {
        let bytes = value.encode();
        assert_eq!(
            bytes.len(),
            value.encoded_len(),
            "encoded_len must match encode()"
        );
        // The buffer-reuse path must produce identical bytes even when the
        // scratch buffer arrives dirty.
        let mut scratch = vec![0xAA; 3];
        value.encode_into(&mut scratch);
        assert_eq!(scratch, bytes, "encode_into must equal encode");
        let back = T::decode(&bytes).expect("decode must succeed");
        assert_eq!(back, value);
    }

    fn header() -> BlockHeader {
        BlockHeader::new(
            Round(7),
            WorkerId(2),
            NodeId(3),
            Hash([0xAA; 32]),
            Hash([0xBB; 32]),
            5,
            2560,
        )
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(0xFFu8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(Some(42u64));
        roundtrip(None::<u64>);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Box::new(9u64));
        roundtrip((3u32, 4u64));
    }

    #[test]
    fn integers_are_big_endian() {
        assert_eq!(0x0102_0304u32.encode(), vec![1, 2, 3, 4]);
        assert_eq!(0x0102u16.encode(), vec![1, 2]);
        assert_eq!(1u64.encode(), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn workspace_types_roundtrip() {
        roundtrip(NodeId(9));
        roundtrip(WorkerId(3));
        roundtrip(Round(u64::MAX));
        roundtrip(Hash([7u8; 32]));
        roundtrip(GENESIS_HASH);
        roundtrip(Signature::empty());
        roundtrip(Signature::from(vec![1, 2, 3]));
        roundtrip(Bytes::from(vec![5u8; 100]));
        roundtrip(Transaction::new(1, 2, vec![9u8, 8, 7]));
        roundtrip(Transaction::zeroed(0, 0, 0));
        roundtrip(header());
        roundtrip(header().with_exec_root(Hash([0xCC; 32])));
        roundtrip(SignedHeader::new(header(), Signature::from(vec![0x55; 64])));
        roundtrip(SignedHeader::new(
            header().with_exec_root(Hash([0xCD; 32])),
            Signature::from(vec![0x55; 64]),
        ));
        roundtrip(Block::new(
            header(),
            vec![Transaction::zeroed(1, 0, 16), Transaction::zeroed(1, 1, 16)],
        ));
    }

    #[test]
    fn header_encoding_is_the_signing_preimage() {
        let h = header();
        assert_eq!(h.encode(), h.canonical_bytes().as_slice());
        let rooted = header().with_exec_root(Hash([0x42; 32]));
        assert_eq!(rooted.encode(), rooted.canonical_bytes().as_slice());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = header().encode();
        for cut in 0..bytes.len() {
            let err = BlockHeader::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Round(5).encode();
        bytes.push(0);
        assert_eq!(
            Round::decode(&bytes),
            Err(CodecError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        assert!(matches!(
            Option::<u64>::decode(&[2]),
            Err(CodecError::BadTag { what: "Option", .. })
        ));
        assert_eq!(bool::decode(&[9]), Err(CodecError::BadBool(9)));
    }

    #[test]
    fn absurd_sequence_counts_are_rejected_before_allocation() {
        // A Vec claiming u32::MAX elements with a 4-byte body.
        let mut bytes = u32::MAX.encode();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            Vec::<u64>::decode(&bytes),
            Err(CodecError::BadLength { what: "Vec", .. })
        ));
        let mut bytes = 1000u32.encode();
        bytes.push(0);
        assert!(matches!(
            Bytes::decode(&bytes),
            Err(CodecError::BadLength { what: "Bytes", .. })
        ));
    }

    #[test]
    fn frame_header_roundtrip_and_layout() {
        let h = FrameHeader::new(0x0102_0304);
        let bytes = h.encode();
        assert_eq!(&bytes[..4], b"FLGR");
        assert_eq!(bytes[4], WIRE_VERSION);
        assert_eq!(&bytes[5..], &[1, 2, 3, 4]);
        assert_eq!(FrameHeader::decode(&bytes), Ok(h));
    }

    #[test]
    fn frame_header_rejections() {
        let good = FrameHeader::new(10).encode();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(
            FrameHeader::decode(&bad_magic),
            Err(CodecError::BadMagic(_))
        ));

        let mut bad_version = good;
        bad_version[4] = WIRE_VERSION + 1;
        assert_eq!(
            FrameHeader::decode(&bad_version),
            Err(CodecError::BadVersion(WIRE_VERSION + 1))
        );

        let mut oversized = good;
        oversized[5..].copy_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert_eq!(
            FrameHeader::decode(&oversized),
            Err(CodecError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_LEN")]
    fn oversized_frames_cannot_be_constructed() {
        let _ = FrameHeader::new(MAX_FRAME_LEN as usize + 1);
    }

    #[test]
    fn codec_error_converts_to_workspace_error() {
        let e: crate::error::Error = CodecError::BadBool(7).into();
        assert!(e.to_string().contains("invalid boolean byte"));
    }
}
