//! Identifier newtypes: nodes, FLO workers and protocol rounds.
//!
//! All identifiers are small, `Copy`, and totally ordered so they can be used
//! as map keys and sorted deterministically — determinism matters because the
//! discrete-event simulator must produce identical executions for identical
//! seeds.

use std::fmt;

/// Identity of a replica (a "node" in the paper's terminology).
///
/// Nodes are numbered `0..n` inside a cluster. The round-robin proposer
/// rotation of FireLedger (Algorithm 2, lines b1–b3) as well as the leader
/// rotation of PBFT and HotStuff are all expressed in terms of the node index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node index as a `usize`, convenient for indexing vectors.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the node that follows `self` in the round-robin order of a
    /// cluster of `n` nodes.
    #[inline]
    pub fn next(self, n: usize) -> NodeId {
        NodeId(((self.0 as usize + 1) % n) as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

/// Identity of a FLO worker (§6.2 of the paper).
///
/// A FLO node runs `ω` independent FireLedger instances, one per worker.
/// Worker `w` of node `i` only ever exchanges messages with worker `w` of the
/// other nodes; deliveries from different workers are merged in round-robin
/// order by the FLO client manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Returns the worker index as a `usize`.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A FireLedger protocol round.
///
/// One block is (tentatively) decided per round in the optimistic case. Rounds
/// are also used as sequence numbers for the recovery procedure and as the
/// per-instance tag of OBBC invocations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Round(pub u64);

impl Round {
    /// The first round of the protocol.
    pub const ZERO: Round = Round(0);

    /// Returns the next round.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns the previous round, saturating at zero.
    #[inline]
    pub fn prev(self) -> Round {
        Round(self.0.saturating_sub(1))
    }

    /// Returns `self + k`.
    #[inline]
    pub fn plus(self, k: u64) -> Round {
        Round(self.0 + k)
    }

    /// Returns `self - k`, saturating at zero.
    #[inline]
    pub fn minus(self, k: u64) -> Round {
        Round(self.0.saturating_sub(k))
    }

    /// The depth of a block decided in round `self` as seen from `current`:
    /// `d(v^r_p) = r' - r` in the paper's notation (§3.3).
    #[inline]
    pub fn depth_from(self, current: Round) -> u64 {
        current.0.saturating_sub(self.0)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_next_wraps_around() {
        assert_eq!(NodeId(0).next(4), NodeId(1));
        assert_eq!(NodeId(3).next(4), NodeId(0));
        assert_eq!(NodeId(6).next(7), NodeId(0));
    }

    #[test]
    fn node_ordering_is_by_index() {
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2), NodeId(0)];
        v.sort();
        assert_eq!(v, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn round_arithmetic() {
        let r = Round(10);
        assert_eq!(r.next(), Round(11));
        assert_eq!(r.prev(), Round(9));
        assert_eq!(r.plus(5), Round(15));
        assert_eq!(r.minus(20), Round(0));
        assert_eq!(Round::ZERO.prev(), Round(0));
    }

    #[test]
    fn round_depth() {
        assert_eq!(Round(5).depth_from(Round(9)), 4);
        assert_eq!(Round(9).depth_from(Round(5)), 0);
        assert_eq!(Round(7).depth_from(Round(7)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "p2");
        assert_eq!(WorkerId(4).to_string(), "w4");
        assert_eq!(Round(17).to_string(), "r17");
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(NodeId::from(3usize), NodeId(3));
        assert_eq!(Round::from(9u64), Round(9));
        assert_eq!(NodeId(7).as_usize(), 7);
        assert_eq!(WorkerId(2).as_usize(), 2);
    }
}
