//! Cluster and protocol configuration.
//!
//! The parameters mirror Table 2 of the paper: cluster size `n` (which fixes
//! `f = ⌊(n-1)/3⌋`), number of FLO workers `ω`, transaction size `σ` and batch
//! size `β`, plus the timing knobs of the optimistic path (base timeout, EMA
//! window) and the flow-control limit on in-flight blocks (§7.2).

use crate::ids::NodeId;
use std::time::Duration;

/// Static description of a cluster: its size and the derived fault threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of replicas `n`.
    pub n: usize,
    /// Maximum number of Byzantine replicas tolerated, `f < n/3`.
    pub f: usize,
}

impl ClusterConfig {
    /// Creates a cluster of `n` nodes with the maximal tolerated
    /// `f = ⌊(n-1)/3⌋`.
    ///
    /// # Panics
    /// Panics if `n < 4` (the smallest cluster that tolerates one fault).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "a BFT cluster needs at least 4 nodes, got {n}");
        ClusterConfig { n, f: (n - 1) / 3 }
    }

    /// Creates a cluster with an explicit `f`.
    ///
    /// # Panics
    /// Panics unless `3f < n`.
    pub fn with_f(n: usize, f: usize) -> Self {
        assert!(3 * f < n, "requires 3f < n (got n={n}, f={f})");
        ClusterConfig { n, f }
    }

    /// Quorum size `n - f`: the number of votes / versions a node waits for.
    #[inline]
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Byzantine-intersection quorum `2f + 1` used by PBFT-style phases.
    #[inline]
    pub fn bft_quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Iterator over all node ids in the cluster.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId)
    }

    /// The depth at which a block becomes definite: `f + 2`
    /// (FireLedger implements BBFC(f+1), and Algorithm 2 line b11 decides the
    /// block at depth `f + 2`).
    #[inline]
    pub fn finality_depth(&self) -> u64 {
        self.f as u64 + 2
    }
}

/// Profile for *executable* filler transactions (see
/// [`ProtocolParams::fill_ops`]).
///
/// The default filler pads blocks with opaque zeroed payloads — ordered and
/// counted but invisible to the execution state machine. With a `FillOps`
/// profile the filler emits deterministic account/KV operations instead
/// (`TxOp` payloads, WIRE_FORMAT.md §12.1), so saturated benchmarks and the
/// cross-runtime identity matrices exercise real state transitions while the
/// block contents stay a pure function of `(filler client, sequence)` — the
/// property that keeps saturated ledgers bit-identical across runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillOps {
    /// Accounts `0..accounts` the generated transfers draw from; should be
    /// covered by the execution genesis so debits can succeed.
    pub accounts: u64,
    /// Percentage (0–100) of generated ops that target a small hot key set —
    /// the conflict knob: `0` yields fully disjoint footprints (every
    /// conflict component is a single op), `100` collapses most of a block
    /// into one serial component.
    pub conflict_pct: u8,
}

/// All tunable protocol parameters of a FireLedger / FLO deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolParams {
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Number of FLO workers ω (independent FireLedger instances per node).
    pub workers: usize,
    /// Batch size β: maximal number of transactions per block.
    pub batch_size: usize,
    /// Transaction size σ in bytes (used by workload generators; the protocol
    /// itself accepts transactions of any size).
    pub tx_size: usize,
    /// Initial / base value of the WRB delivery timeout (Algorithm 1 line 1).
    pub base_timeout: Duration,
    /// Upper bound the adaptive timeout may grow to.
    pub max_timeout: Duration,
    /// Window length `N` of the exponential-moving-average timeout tuner
    /// (§6.1.1, "Dynamically Tuning the Timeout").
    pub ema_window: usize,
    /// Flow control: maximal number of blocks a proposer may have disseminated
    /// but not yet decided (§7.2).
    pub max_inflight_blocks: usize,
    /// Whether to pad proposed blocks with filler transactions up to
    /// `batch_size` when the pool runs dry (the paper's evaluation "simulates
    /// an intensive load by filling every block to its maximal size", §7.2).
    pub fill_blocks: bool,
    /// When set (and [`ProtocolParams::fill_blocks`] is on), filler
    /// transactions carry deterministic executable ops instead of opaque
    /// zeroed payloads — see [`FillOps`].
    pub fill_ops: Option<FillOps>,
    /// Whether the benign failure detector (§6.1.1) is enabled.
    pub failure_detector: bool,
    /// Threshold (as a multiple of the base timeout) after which the failure
    /// detector starts suspecting a silent node.
    pub fd_suspect_threshold: u32,
}

impl ProtocolParams {
    /// Reasonable defaults for an `n`-node cluster: ω = 1, β = 100, σ = 512 B,
    /// 50 ms base timeout.
    pub fn new(n: usize) -> Self {
        ProtocolParams {
            cluster: ClusterConfig::new(n),
            workers: 1,
            batch_size: 100,
            tx_size: 512,
            base_timeout: Duration::from_millis(50),
            max_timeout: Duration::from_secs(5),
            ema_window: 16,
            max_inflight_blocks: 8,
            fill_blocks: true,
            fill_ops: None,
            failure_detector: true,
            fd_suspect_threshold: 8,
        }
    }

    /// Builder-style setter for the number of workers ω.
    ///
    /// Clamped to `1..=TimerId::MAX_WORKERS`: the worker index must fit the
    /// 8-bit worker field of [`crate::runtime::TimerId`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.clamp(1, crate::runtime::TimerId::MAX_WORKERS);
        self
    }

    /// Builder-style setter for the batch size β.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Builder-style setter for the transaction size σ.
    pub fn with_tx_size(mut self, tx_size: usize) -> Self {
        self.tx_size = tx_size;
        self
    }

    /// Builder-style setter for the base timeout.
    pub fn with_base_timeout(mut self, timeout: Duration) -> Self {
        self.base_timeout = timeout;
        self
    }

    /// Builder-style setter for the fault threshold `f` (keeps `n`).
    pub fn with_f(mut self, f: usize) -> Self {
        self.cluster = ClusterConfig::with_f(self.cluster.n, f);
        self
    }

    /// Builder-style setter for block filling under light load.
    pub fn with_fill_blocks(mut self, fill: bool) -> Self {
        self.fill_blocks = fill;
        self
    }

    /// Builder-style setter for the executable-filler profile (implies
    /// nothing about [`ProtocolParams::fill_blocks`], which must still be
    /// on for any filler to be generated).
    pub fn with_fill_ops(mut self, ops: FillOps) -> Self {
        self.fill_ops = Some(ops);
        self
    }

    /// Convenience accessors mirroring the paper's notation.
    #[inline]
    pub fn n(&self) -> usize {
        self.cluster.n
    }

    /// The fault threshold `f`.
    #[inline]
    pub fn f(&self) -> usize {
        self.cluster.f
    }

    /// Quorum size `n - f`.
    #[inline]
    pub fn quorum(&self) -> usize {
        self.cluster.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_is_derived_from_n() {
        assert_eq!(ClusterConfig::new(4).f, 1);
        assert_eq!(ClusterConfig::new(7).f, 2);
        assert_eq!(ClusterConfig::new(10).f, 3);
        assert_eq!(ClusterConfig::new(100).f, 33);
    }

    #[test]
    fn quorums() {
        let c = ClusterConfig::new(10);
        assert_eq!(c.quorum(), 7);
        assert_eq!(c.bft_quorum(), 7);
        let c4 = ClusterConfig::new(4);
        assert_eq!(c4.quorum(), 3);
        assert_eq!(c4.bft_quorum(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn too_small_cluster_panics() {
        ClusterConfig::new(3);
    }

    #[test]
    #[should_panic(expected = "3f < n")]
    fn invalid_f_panics() {
        ClusterConfig::with_f(6, 2);
    }

    #[test]
    fn explicit_f_below_max_is_allowed() {
        // The HotStuff comparison (§7.6) runs with f = ⌊n/3⌋ - 1.
        let c = ClusterConfig::with_f(10, 2);
        assert_eq!(c.quorum(), 8);
        assert_eq!(c.finality_depth(), 4);
    }

    #[test]
    fn nodes_iterator_enumerates_all() {
        let c = ClusterConfig::new(4);
        let ids: Vec<_> = c.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn params_builders() {
        let p = ProtocolParams::new(7)
            .with_workers(5)
            .with_batch_size(1000)
            .with_tx_size(4096)
            .with_fill_blocks(false)
            .with_base_timeout(Duration::from_millis(10));
        assert_eq!(p.n(), 7);
        assert_eq!(p.f(), 2);
        assert_eq!(p.quorum(), 5);
        assert_eq!(p.workers, 5);
        assert_eq!(p.batch_size, 1000);
        assert_eq!(p.tx_size, 4096);
        assert!(!p.fill_blocks);
        assert_eq!(p.base_timeout, Duration::from_millis(10));
    }

    #[test]
    fn workers_and_batch_clamped_to_one() {
        let p = ProtocolParams::new(4).with_workers(0).with_batch_size(0);
        assert_eq!(p.workers, 1);
        assert_eq!(p.batch_size, 1);
    }

    #[test]
    fn workers_clamped_to_timer_id_capacity() {
        let p = ProtocolParams::new(4).with_workers(100_000);
        assert_eq!(p.workers, crate::runtime::TimerId::MAX_WORKERS);
    }

    #[test]
    fn finality_depth_is_f_plus_two() {
        assert_eq!(ClusterConfig::new(4).finality_depth(), 3);
        assert_eq!(ClusterConfig::new(10).finality_depth(), 5);
    }
}
