//! Executable transaction payloads and their receipts.
//!
//! FireLedger orders opaque byte payloads; the execution engine
//! (`fireledger-exec`) gives a *subset* of those payloads meaning. A payload
//! that begins with [`OP_MAGIC`] encodes one [`TxOp`] — an operation against
//! the deterministic account/KV state machine — in the binary layout pinned
//! normatively in `docs/WIRE_FORMAT.md` §12. Every other payload (including
//! the zero-filled filler transactions the synthetic workloads generate) is
//! *opaque*: ordered, charged for, and executed as a no-op.
//!
//! Executing one transaction yields exactly one [`Receipt`]. Receipts are
//! typed — insufficient funds, bad nonce, unknown account and friends are
//! deterministic *outcomes*, not errors: every correct replica derives the
//! identical receipt for the same transaction at the same position, which is
//! what lets the state root double as a commitment to the receipt history.

use crate::bytes::Bytes;
use crate::codec::{CodecError, Reader, WireCodec};

/// First payload byte marking an executable [`TxOp`] (WIRE_FORMAT.md §12.1).
///
/// `0xEC` ("EC" for *executable*) never collides with the workloads' opaque
/// payloads, which are either empty or zero-filled.
pub const OP_MAGIC: u8 = 0xEC;

/// Upper bound on a KV value's length in bytes (WIRE_FORMAT.md §12.1).
///
/// Bounds what a single op can make every replica store; longer values make
/// the op malformed (a deterministic no-op), not a protocol error.
pub const MAX_KV_VALUE: usize = 1024;

/// An operation against the deterministic account/KV state machine.
///
/// Account identifiers and KV keys are plain `u64`s in *separate*
/// namespaces; amounts and balances are `u64` units. The variants cover the
/// paper's permissioned-ledger workloads: asset transfers with per-account
/// nonces, raw KV writes, and a guarded compare-and-swap as the minimal
/// "contract-ish" conditional op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOp {
    /// Creates `account` with an initial balance; fails with
    /// [`Receipt::AccountExists`] if it already exists.
    CreateAccount {
        /// The account to create.
        account: u64,
        /// Its initial balance.
        balance: u64,
    },
    /// Moves `amount` from `from` to `to`, guarded by `from`'s nonce.
    ///
    /// Applies only when both accounts exist, `nonce` equals `from`'s
    /// current nonce, and `from`'s balance covers `amount`; an applied
    /// transfer increments `from`'s nonce. Zero-amount transfers are valid
    /// (they still consume the nonce).
    Transfer {
        /// The debited account.
        from: u64,
        /// The credited account.
        to: u64,
        /// Units to move.
        amount: u64,
        /// `from`'s expected current nonce (replay protection).
        nonce: u64,
    },
    /// Writes `value` under `key`, unconditionally.
    KvPut {
        /// The key to write.
        key: u64,
        /// The value to store (at most [`MAX_KV_VALUE`] bytes).
        value: Bytes,
    },
    /// Deletes `key`; deleting an absent key is still
    /// [`Receipt::Applied`] (the post-state is identical).
    KvDelete {
        /// The key to delete.
        key: u64,
    },
    /// Compare-and-swap on `key`: applies `swap` only when the current
    /// value equals `expect` (`None` = the key must be absent).
    Cas {
        /// The guarded key.
        key: u64,
        /// The expected current value (`None` = absent).
        expect: Option<Bytes>,
        /// The value written on a successful compare.
        swap: Bytes,
    },
}

/// The deterministic outcome of executing one transaction.
///
/// Exactly one receipt per ordered transaction; every variant is a valid
/// state transition (possibly the identity), never an error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Receipt {
    /// The op applied and mutated (or idempotently confirmed) the state.
    Applied,
    /// A transfer's debited account could not cover the amount.
    InsufficientFunds {
        /// The debited account's balance at execution time.
        balance: u64,
        /// The amount the transfer asked for.
        needed: u64,
    },
    /// A transfer carried a stale or future nonce.
    BadNonce {
        /// The nonce the account expected.
        expected: u64,
        /// The nonce the transfer carried.
        got: u64,
    },
    /// A transfer named an account that does not exist.
    UnknownAccount {
        /// The missing account.
        account: u64,
    },
    /// A create targeted an account that already exists.
    AccountExists {
        /// The pre-existing account.
        account: u64,
    },
    /// A compare-and-swap's guard did not match the current value.
    CasMismatch,
    /// The payload carried no [`OP_MAGIC`]: an opaque filler transaction,
    /// ordered and charged but executing as a no-op.
    Opaque,
    /// The payload started with [`OP_MAGIC`] but did not decode to a valid
    /// [`TxOp`]; rejected deterministically as a no-op.
    Malformed,
}

impl Receipt {
    /// Number of receipt variants (the width of a receipt histogram).
    pub const KINDS: usize = 8;

    /// A stable small index for histogram bucketing, in declaration order.
    pub fn kind_index(&self) -> usize {
        match self {
            Receipt::Applied => 0,
            Receipt::InsufficientFunds { .. } => 1,
            Receipt::BadNonce { .. } => 2,
            Receipt::UnknownAccount { .. } => 3,
            Receipt::AccountExists { .. } => 4,
            Receipt::CasMismatch => 5,
            Receipt::Opaque => 6,
            Receipt::Malformed => 7,
        }
    }

    /// Stable snake_case labels for the histogram buckets, index-aligned
    /// with [`Receipt::kind_index`].
    pub const KIND_LABELS: [&'static str; Receipt::KINDS] = [
        "applied",
        "insufficient_funds",
        "bad_nonce",
        "unknown_account",
        "account_exists",
        "cas_mismatch",
        "opaque",
        "malformed",
    ];
}

/// What a transaction payload decodes to (see [`TxOp::classify_payload`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodedOp {
    /// A well-formed executable operation.
    Op(TxOp),
    /// No [`OP_MAGIC`]: an opaque payload, executed as a no-op.
    Opaque,
    /// [`OP_MAGIC`] present but the body is invalid; executed as a no-op
    /// with a [`Receipt::Malformed`].
    Malformed,
}

impl TxOp {
    /// Encodes this op as a transaction payload: [`OP_MAGIC`] followed by
    /// the op's wire encoding (WIRE_FORMAT.md §12.1).
    pub fn encode_payload(&self) -> Bytes {
        let mut out = Vec::with_capacity(1 + self.encoded_len());
        out.push(OP_MAGIC);
        self.encode_to(&mut out);
        Bytes::from(out)
    }

    /// Classifies a transaction payload: opaque, malformed, or a decoded op.
    ///
    /// Total over all byte strings — classification is part of execution and
    /// must be deterministic, so invalid bytes map to
    /// [`DecodedOp::Malformed`] rather than an error. Trailing bytes after a
    /// valid op are malformed (the encoding is canonical).
    pub fn classify_payload(payload: &[u8]) -> DecodedOp {
        match payload.split_first() {
            Some((&OP_MAGIC, body)) => match TxOp::decode(body) {
                Ok(op) => DecodedOp::Op(op),
                Err(_) => DecodedOp::Malformed,
            },
            _ => DecodedOp::Opaque,
        }
    }
}

impl WireCodec for TxOp {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            TxOp::CreateAccount { account, balance } => {
                out.push(0);
                account.encode_to(out);
                balance.encode_to(out);
            }
            TxOp::Transfer {
                from,
                to,
                amount,
                nonce,
            } => {
                out.push(1);
                from.encode_to(out);
                to.encode_to(out);
                amount.encode_to(out);
                nonce.encode_to(out);
            }
            TxOp::KvPut { key, value } => {
                out.push(2);
                key.encode_to(out);
                value.encode_to(out);
            }
            TxOp::KvDelete { key } => {
                out.push(3);
                key.encode_to(out);
            }
            TxOp::Cas { key, expect, swap } => {
                out.push(4);
                key.encode_to(out);
                expect.encode_to(out);
                swap.encode_to(out);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let op = match r.u8()? {
            0 => TxOp::CreateAccount {
                account: r.u64()?,
                balance: r.u64()?,
            },
            1 => TxOp::Transfer {
                from: r.u64()?,
                to: r.u64()?,
                amount: r.u64()?,
                nonce: r.u64()?,
            },
            2 => TxOp::KvPut {
                key: r.u64()?,
                value: Bytes::decode_from(r)?,
            },
            3 => TxOp::KvDelete { key: r.u64()? },
            4 => TxOp::Cas {
                key: r.u64()?,
                expect: Option::<Bytes>::decode_from(r)?,
                swap: Bytes::decode_from(r)?,
            },
            tag => return Err(CodecError::BadTag { what: "TxOp", tag }),
        };
        // Oversized KV values are rejected at decode time so that a single
        // op cannot make every replica hold unbounded state.
        let value_len = match &op {
            TxOp::KvPut { value, .. } => value.len(),
            TxOp::Cas { swap, .. } => swap.len(),
            _ => 0,
        };
        if value_len > MAX_KV_VALUE {
            return Err(CodecError::BadLength {
                what: "TxOp value",
                claimed: value_len as u64,
                remaining: MAX_KV_VALUE,
            });
        }
        Ok(op)
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            TxOp::CreateAccount { .. } => 8 + 8,
            TxOp::Transfer { .. } => 8 + 8 + 8 + 8,
            TxOp::KvPut { value, .. } => 8 + value.encoded_len(),
            TxOp::KvDelete { .. } => 8,
            TxOp::Cas { expect, swap, .. } => 8 + expect.encoded_len() + swap.encoded_len(),
        }
    }
}

impl WireCodec for Receipt {
    fn encode_to(&self, out: &mut Vec<u8>) {
        match self {
            Receipt::Applied => out.push(0),
            Receipt::InsufficientFunds { balance, needed } => {
                out.push(1);
                balance.encode_to(out);
                needed.encode_to(out);
            }
            Receipt::BadNonce { expected, got } => {
                out.push(2);
                expected.encode_to(out);
                got.encode_to(out);
            }
            Receipt::UnknownAccount { account } => {
                out.push(3);
                account.encode_to(out);
            }
            Receipt::AccountExists { account } => {
                out.push(4);
                account.encode_to(out);
            }
            Receipt::CasMismatch => out.push(5),
            Receipt::Opaque => out.push(6),
            Receipt::Malformed => out.push(7),
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Receipt::Applied,
            1 => Receipt::InsufficientFunds {
                balance: r.u64()?,
                needed: r.u64()?,
            },
            2 => Receipt::BadNonce {
                expected: r.u64()?,
                got: r.u64()?,
            },
            3 => Receipt::UnknownAccount { account: r.u64()? },
            4 => Receipt::AccountExists { account: r.u64()? },
            5 => Receipt::CasMismatch,
            6 => Receipt::Opaque,
            7 => Receipt::Malformed,
            tag => {
                return Err(CodecError::BadTag {
                    what: "Receipt",
                    tag,
                })
            }
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Receipt::InsufficientFunds { .. } | Receipt::BadNonce { .. } => 16,
            Receipt::UnknownAccount { .. } | Receipt::AccountExists { .. } => 8,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<TxOp> {
        vec![
            TxOp::CreateAccount {
                account: 7,
                balance: 1000,
            },
            TxOp::Transfer {
                from: 7,
                to: 9,
                amount: 50,
                nonce: 0,
            },
            TxOp::KvPut {
                key: 3,
                value: Bytes::from(vec![1, 2, 3]),
            },
            TxOp::KvDelete { key: 3 },
            TxOp::Cas {
                key: 4,
                expect: None,
                swap: Bytes::from(vec![9]),
            },
            TxOp::Cas {
                key: 4,
                expect: Some(Bytes::from(vec![9])),
                swap: Bytes::from(vec![8, 8]),
            },
        ]
    }

    #[test]
    fn ops_roundtrip_through_payloads() {
        for op in ops() {
            let payload = op.encode_payload();
            assert_eq!(payload[0], OP_MAGIC);
            assert_eq!(
                TxOp::classify_payload(&payload),
                DecodedOp::Op(op.clone()),
                "payload roundtrip for {op:?}"
            );
            // WireCodec invariants.
            let bytes = op.encode();
            assert_eq!(bytes.len(), op.encoded_len());
            assert_eq!(TxOp::decode(&bytes), Ok(op));
        }
    }

    #[test]
    fn receipts_roundtrip() {
        let receipts = vec![
            Receipt::Applied,
            Receipt::InsufficientFunds {
                balance: 1,
                needed: 2,
            },
            Receipt::BadNonce {
                expected: 3,
                got: 4,
            },
            Receipt::UnknownAccount { account: 5 },
            Receipt::AccountExists { account: 6 },
            Receipt::CasMismatch,
            Receipt::Opaque,
            Receipt::Malformed,
        ];
        let mut seen = [false; Receipt::KINDS];
        for r in receipts {
            let bytes = r.encode();
            assert_eq!(bytes.len(), r.encoded_len());
            assert_eq!(Receipt::decode(&bytes), Ok(r.clone()));
            seen[r.kind_index()] = true;
        }
        assert!(seen.iter().all(|s| *s), "every kind index is distinct");
        assert_eq!(Receipt::KIND_LABELS.len(), Receipt::KINDS);
    }

    #[test]
    fn opaque_and_malformed_payloads_classify_deterministically() {
        assert_eq!(TxOp::classify_payload(&[]), DecodedOp::Opaque);
        assert_eq!(TxOp::classify_payload(&[0u8; 64]), DecodedOp::Opaque);
        assert_eq!(TxOp::classify_payload(&[0x01, 0xEC]), DecodedOp::Opaque);
        // Magic but empty body.
        assert_eq!(TxOp::classify_payload(&[OP_MAGIC]), DecodedOp::Malformed);
        // Magic but unknown tag.
        assert_eq!(
            TxOp::classify_payload(&[OP_MAGIC, 0xFF]),
            DecodedOp::Malformed
        );
        // Magic, valid op, trailing garbage: not canonical, malformed.
        let mut payload = TxOp::KvDelete { key: 1 }.encode_payload().to_vec();
        payload.push(0);
        assert_eq!(TxOp::classify_payload(&payload), DecodedOp::Malformed);
    }

    #[test]
    fn oversized_kv_values_are_rejected() {
        let op = TxOp::KvPut {
            key: 1,
            value: Bytes::from(vec![0u8; MAX_KV_VALUE + 1]),
        };
        let bytes = op.encode();
        assert!(matches!(
            TxOp::decode(&bytes),
            Err(CodecError::BadLength { .. })
        ));
        assert_eq!(
            TxOp::classify_payload(&op.encode_payload()),
            DecodedOp::Malformed
        );
        // At the bound it is accepted.
        let ok = TxOp::KvPut {
            key: 1,
            value: Bytes::from(vec![0u8; MAX_KV_VALUE]),
        };
        assert_eq!(TxOp::decode(&ok.encode()), Ok(ok));
    }
}
