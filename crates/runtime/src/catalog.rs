//! The canonical fault-plan catalog.
//!
//! One constructor per named adversity shape of `docs/SCENARIOS.md` — the
//! normative catalog document quotes exactly these builders, and every
//! doctest below is the compile-checked form of the corresponding catalog
//! snippet. All of them return a plain [`FaultPlan`]; attach one to a
//! [`Scenario`](crate::Scenario) with
//! [`Scenario::with_faults`](crate::Scenario::with_faults) and it drives
//! the simulator, the threaded runtime and the TCP runtime identically.
//!
//! Byzantine behaviours (equivocating / silent proposers) are *roles*, not
//! plans — they change what a node says, not what the network does — and
//! are assigned through
//! [`ClusterBuilder::with_role`](crate::ClusterBuilder::with_role); the
//! catalog document covers them alongside the plans.

use fireledger_types::{FaultPlan, FaultWindow, LinkSelector, NodeId};
use std::time::Duration;

/// **lossy-link** — every link drops each message with probability `prob`
/// during `[from, until)`. FLO's pull machinery and β-fallback keep the
/// ledger live and identical across runtimes (timeout decisions converge on
/// the proposer's block whenever any quorum member holds its header).
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::lossy_link(0.10, Duration::from_millis(100), Duration::from_millis(400));
/// let scenario = Scenario::new("lossy")
///     .ideal()
///     .run_for(Duration::from_millis(800))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert_eq!(report.fault_plan, "lossy-link");
/// assert!(report.tps > 0.0, "the cluster must stay live through 10% loss");
/// ```
pub fn lossy_link(prob: f64, from: Duration, until: Duration) -> FaultPlan {
    FaultPlan::named("lossy-link").drop(LinkSelector::All, FaultWindow::between(from, until), prob)
}

/// **delay-reorder** — every message gets an extra uniform delay in
/// `[min, max]`, and a `reorder_prob` fraction is additionally released out
/// of FIFO order. With delays well under the protocol timeout this is
/// content-preserving adversity: the ledger stays byte-identical to the
/// fault-free run's prefix on every runtime.
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::delay_reorder(Duration::from_millis(1), Duration::from_millis(4), 0.25);
/// let scenario = Scenario::new("jitter")
///     .ideal()
///     .run_for(Duration::from_millis(600))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert!(report.tps > 0.0);
/// ```
pub fn delay_reorder(min: Duration, max: Duration, reorder_prob: f64) -> FaultPlan {
    FaultPlan::named("delay-reorder")
        .delay(LinkSelector::All, FaultWindow::ALWAYS, min, max)
        .reorder(
            LinkSelector::All,
            FaultWindow::ALWAYS,
            reorder_prob,
            min,
            max,
        )
}

/// **duplicate-flood** — each message is delivered twice with probability
/// `prob`, the copy lagging up to `max_lag`. Exercises every protocol's
/// idempotence (votes, echoes and consensus messages must all dedupe).
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::duplicate_flood(0.5, Duration::from_millis(5));
/// let scenario = Scenario::new("dupes")
///     .ideal()
///     .run_for(Duration::from_millis(600))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert!(report.tps > 0.0);
/// ```
pub fn duplicate_flood(prob: f64, max_lag: Duration) -> FaultPlan {
    FaultPlan::named("duplicate-flood").duplicate(
        LinkSelector::All,
        FaultWindow::ALWAYS,
        prob,
        Duration::ZERO,
        max_lag,
    )
}

/// **partition-heal** — the cluster splits into two halves (`0..⌈n/2⌉` vs
/// the rest) at `at` and heals at `heal`. With an even split neither side
/// holds a quorum, so FLO's commits stall for the whole window — visible as
/// `max_gap_secs` spanning the split in the run report — and resume after
/// the heal (`last_delivery_secs > heal`).
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let split = Duration::from_millis(300);
/// let heal = Duration::from_millis(700);
/// let plan = catalog::partition_heal(4, split, heal);
/// let scenario = Scenario::new("split-brain")
///     .ideal()
///     .run_for(Duration::from_millis(1500))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// // Commit stall across the split, recovery after the heal.
/// assert!(report.per_node[0].max_gap_secs >= (heal - split).as_secs_f64() * 0.9);
/// assert!(report.per_node[0].last_delivery_secs > heal.as_secs_f64());
/// ```
pub fn partition_heal(n: usize, at: Duration, heal: Duration) -> FaultPlan {
    let mid = n.div_ceil(2);
    let left: Vec<NodeId> = (0..mid as u32).map(NodeId).collect();
    let right: Vec<NodeId> = (mid as u32..n as u32).map(NodeId).collect();
    FaultPlan::named("partition-heal").partition(vec![left, right], at, Some(heal))
}

/// **partition-lossy** — the last node is split off from the majority at
/// `at` and the *route* heals at `heal`, but unlike [`partition_heal`] the
/// traffic queued during the split is **lost**, never redelivered. The
/// isolated node cannot catch up from buffered history; once healed, its
/// lag detector notices votes far ahead of its round and it closes the gap
/// through the state-sync block fetch (ARCHITECTURE.md, "State sync").
/// The majority side holds a quorum throughout, so it never stalls.
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let split = Duration::from_millis(300);
/// let heal = Duration::from_millis(900);
/// let plan = catalog::partition_lossy_minority(4, split, heal);
/// let scenario = Scenario::new("lossy-split")
///     .ideal()
///     .run_for(Duration::from_millis(2500))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4)
///     .with_batch_size(8)
///     .with_tx_size(64)
///     .with_base_timeout(Duration::from_millis(20));
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert_eq!(report.fault_plan, "partition-lossy");
/// // The majority never stalled, and the re-synced minority node fetched
/// // its way back to the cluster's ledger.
/// assert!(report.per_node[0].blocks > 0);
/// assert!(report.per_node[3].blocks as f64 > report.per_node[0].blocks as f64 * 0.8);
/// ```
pub fn partition_lossy_minority(n: usize, at: Duration, heal: Duration) -> FaultPlan {
    let majority: Vec<NodeId> = (0..n as u32 - 1).map(NodeId).collect();
    let minority = vec![NodeId(n as u32 - 1)];
    FaultPlan::named("partition-lossy").partition_lossy(vec![majority, minority], at, Some(heal))
}

/// **crash-recover** — the last node of the cluster goes down at `at` and
/// comes back at `recover` with its protocol state intact (an
/// unreachability window). The cluster keeps deciding around it (it is
/// within the `f` budget) and the node rejoins afterwards.
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::crash_recover_last(4, Duration::from_millis(200), Duration::from_millis(500));
/// let scenario = Scenario::new("churn-1")
///     .ideal()
///     .run_for(Duration::from_millis(1000))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// // The three untouched nodes never stop delivering.
/// assert!(report.per_node[0].blocks > 0);
/// assert_eq!(report.fault_plan, "crash-recover");
/// ```
pub fn crash_recover_last(n: usize, at: Duration, recover: Duration) -> FaultPlan {
    FaultPlan::named("crash-recover").crash_recover(NodeId(n as u32 - 1), at, recover)
}

/// **kill-restart** — the last node of the cluster is killed -9 at `at`:
/// unlike the pause of [`crash_recover_last`], its protocol state is
/// destroyed outright, and at `restart` the node is rebuilt from its
/// durable store (configure one with
/// [`ClusterBuilder::with_store`](crate::ClusterBuilder::with_store) — a
/// kill without a disk is total amnesia). The restarted node re-emits its
/// recovered ledger prefix from round 0 and resumes consensus at the round
/// after it, while the other `n − 1` nodes never stop deciding.
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let dir = std::env::temp_dir().join(format!("fl-kill-restart-{}", std::process::id()));
/// std::fs::remove_dir_all(&dir).ok();
/// let plan = catalog::kill_restart_last(4, Duration::from_millis(300), Duration::from_millis(600));
/// let scenario = Scenario::new("kill-9")
///     .ideal()
///     .run_for(Duration::from_millis(1000))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let cluster = ClusterBuilder::<FloCluster>::new(params)
///     .with_store(&dir, FsyncPolicy::EveryN(8));
/// let report = Simulator.run(&cluster, &scenario).unwrap();
/// assert_eq!(report.fault_plan, "kill-restart");
/// assert_eq!(report.durability, "fsync-every8");
/// // The untouched nodes never stop; the killed node rebuilt its ledger
/// // from disk (its delivery log restarts from round 0 at the restart).
/// assert!(report.per_node[0].blocks > 0);
/// assert!(report.per_node[3].blocks > 0, "recovery re-emitted no prefix");
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn kill_restart_last(n: usize, at: Duration, restart: Duration) -> FaultPlan {
    FaultPlan::named("kill-restart").kill_restart(NodeId(n as u32 - 1), at, restart)
}

/// **churn** — `node` flaps: starting at `first_down`, it repeats `cycles`
/// rounds of `down` unreachable then `up` reachable. The rolling-restart /
/// flaky-machine shape of adversity.
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::churn(
///     NodeId(3),
///     Duration::from_millis(200), // first outage starts
///     Duration::from_millis(100), // each outage lasts
///     Duration::from_millis(150), // each recovery lasts
///     3,                          // outages
/// );
/// assert_eq!(plan.node_faults.len(), 3);
/// let scenario = Scenario::new("flappy")
///     .ideal()
///     .run_for(Duration::from_millis(1200))
///     .with_faults(plan);
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert!(report.per_node[0].blocks > 0);
/// ```
pub fn churn(
    node: NodeId,
    first_down: Duration,
    down: Duration,
    up: Duration,
    cycles: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::named("churn");
    let mut at = first_down;
    for _ in 0..cycles {
        plan = plan.crash_recover(node, at, at + down);
        at += down + up;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_heal_splits_evenly_and_heals() {
        let plan = partition_heal(4, Duration::from_millis(100), Duration::from_millis(200));
        assert!(plan.partitioned(NodeId(0), NodeId(2), Duration::from_millis(150)));
        assert!(!plan.partitioned(NodeId(0), NodeId(1), Duration::from_millis(150)));
        assert!(!plan.partitioned(NodeId(0), NodeId(2), Duration::from_millis(250)));
        // Odd n: the larger half is the first group.
        let odd = partition_heal(5, Duration::ZERO, Duration::from_millis(1));
        assert!(odd.partitioned(NodeId(2), NodeId(3), Duration::ZERO));
        assert!(!odd.partitioned(NodeId(1), NodeId(2), Duration::ZERO));
    }

    #[test]
    fn churn_cycles_alternate_down_and_up() {
        let plan = churn(
            NodeId(1),
            Duration::from_millis(100),
            Duration::from_millis(50),
            Duration::from_millis(50),
            2,
        );
        assert!(!plan.node_down(NodeId(1), Duration::from_millis(90)));
        assert!(plan.node_down(NodeId(1), Duration::from_millis(120))); // 1st outage
        assert!(!plan.node_down(NodeId(1), Duration::from_millis(160))); // recovered
        assert!(plan.node_down(NodeId(1), Duration::from_millis(220))); // 2nd outage
        assert!(!plan.node_down(NodeId(1), Duration::from_millis(260))); // done
    }

    #[test]
    fn catalog_names_are_stable() {
        // SCENARIOS.md and the fault-matrix CI job key off these names.
        assert_eq!(
            lossy_link(0.1, Duration::ZERO, Duration::from_secs(1)).name,
            "lossy-link"
        );
        assert_eq!(
            delay_reorder(Duration::ZERO, Duration::from_millis(1), 0.5).name,
            "delay-reorder"
        );
        assert_eq!(
            duplicate_flood(0.5, Duration::from_millis(1)).name,
            "duplicate-flood"
        );
        assert_eq!(
            partition_heal(4, Duration::ZERO, Duration::from_secs(1)).name,
            "partition-heal"
        );
        assert_eq!(
            partition_lossy_minority(4, Duration::ZERO, Duration::from_secs(1)).name,
            "partition-lossy"
        );
        assert_eq!(
            crash_recover_last(4, Duration::ZERO, Duration::from_secs(1)).name,
            "crash-recover"
        );
        assert_eq!(
            kill_restart_last(4, Duration::ZERO, Duration::from_secs(1)).name,
            "kill-restart"
        );
        assert_eq!(
            churn(
                NodeId(0),
                Duration::ZERO,
                Duration::from_millis(1),
                Duration::from_millis(1),
                1
            )
            .name,
            "churn"
        );
    }
}
