//! Scenario descriptions: topology × workload × fault schedule × duration.
//!
//! A [`Scenario`] is a plain value describing *what happens to a cluster* —
//! which network it runs on, how clients load it, which nodes crash when, and
//! for how long the experiment runs. The same value is consumed identically
//! by every [`crate::Runtime`], so one scenario definition drives both the
//! deterministic simulator and the threaded real-time cluster.

use fireledger_crypto::CostModel;
use fireledger_sim::{CrashSchedule, LatencyModel, SimConfig, SimTime, TxInjector};
use fireledger_types::{FaultPlan, NodeId, Transaction};
use std::time::Duration;

/// The network the cluster runs on.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Idealized unit-test network: 1 ms constant latency, free CPU.
    Ideal,
    /// Single data-center: ≈250 µs jittered links, 10 Gbps NICs, m5.xlarge
    /// CPU model (the paper's default deployment, §7).
    SingleDc,
    /// The ten-region geo-distributed deployment of §7.5.
    Geo,
    /// Any custom latency model — e.g. a bespoke region matrix.
    Custom(LatencyModel),
}

/// How clients load the cluster.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Saturated load: no explicit client traffic; proposers fill every block
    /// to β transactions (requires `ProtocolParams::fill_blocks`, the paper's
    /// §7.2 evaluation mode).
    Saturated,
    /// Open-loop injection at a fixed aggregate rate, round-robin across the
    /// nodes.
    OpenLoop {
        /// Aggregate transactions per second.
        rate_per_sec: f64,
        /// Payload size σ in bytes.
        tx_size: usize,
    },
    /// Closed-loop clients, approximated as an open loop at the equilibrium
    /// rate `clients / think_time` (exact closed-loop feedback would need the
    /// runtimes to report completions back into the workload generator).
    ClosedLoop {
        /// Number of clients.
        clients: usize,
        /// Per-client think time between requests.
        think_time: Duration,
        /// Payload size σ in bytes.
        tx_size: usize,
    },
}

/// One scheduled fault: `node` crashes `at` after the run starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The crashing node.
    pub node: NodeId,
    /// Absolute trigger time (offset from the start of the run).
    pub at: Duration,
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable scenario name (appears in reports).
    pub name: String,
    /// Network topology.
    pub topology: Topology,
    /// Client workload.
    pub workload: Workload,
    /// Crash-fault schedule with absolute trigger times.
    pub crashes: Vec<FaultEvent>,
    /// The declarative network/node adversity applied to the run: link
    /// faults, partitions and crash-recover node faults, compiled into the
    /// matching interceptor on every runtime (see `docs/SCENARIOS.md`).
    /// `None` runs fault-free (modulo [`Scenario::crashes`] and builder
    /// roles).
    pub faults: Option<FaultPlan>,
    /// Total run length.
    pub duration: Duration,
    /// Warm-up prefix excluded from rate metrics.
    pub warmup: Duration,
    /// True once `with_warmup` set the warm-up explicitly; `run_for` then
    /// leaves it alone instead of re-deriving 10% of the duration.
    warmup_explicit: bool,
    /// RNG seed (link jitter, workload payloads).
    pub seed: u64,
    /// Per-node egress bandwidth override (`Some(None)` = unlimited).
    bandwidth: Option<Option<u64>>,
    /// CPU cost-model override.
    cost: Option<CostModel>,
    /// Client ingress soak riding on the run: an open-loop RPC client fleet
    /// submitting through every node's admission gate, with per-lane
    /// accept/shed/commit-latency accounting in the report's `ingress`
    /// section. `None` (the default) leaves the run on the plain workload
    /// injection path.
    pub ingress: Option<crate::ingress::IngressLoad>,
}

impl Scenario {
    /// A new scenario: single data-center, saturated load, 2 simulated
    /// seconds, 10% warm-up.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            topology: Topology::SingleDc,
            workload: Workload::Saturated,
            crashes: Vec::new(),
            faults: None,
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(200),
            warmup_explicit: false,
            seed: 1,
            bandwidth: None,
            cost: None,
            ingress: None,
        }
    }

    /// Switches to the idealized unit-test network.
    pub fn ideal(mut self) -> Self {
        self.topology = Topology::Ideal;
        self
    }

    /// Switches to the single data-center model (the default).
    pub fn single_dc(mut self) -> Self {
        self.topology = Topology::SingleDc;
        self
    }

    /// Switches to the ten-region geo-distributed model.
    pub fn geo(mut self) -> Self {
        self.topology = Topology::Geo;
        self
    }

    /// Uses a custom latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.topology = Topology::Custom(latency);
        self
    }

    /// Saturated load (the default).
    pub fn saturated(mut self) -> Self {
        self.workload = Workload::Saturated;
        self
    }

    /// Open-loop injection at `rate_per_sec` transactions of `tx_size` bytes.
    pub fn open_loop(mut self, rate_per_sec: f64, tx_size: usize) -> Self {
        self.workload = Workload::OpenLoop {
            rate_per_sec,
            tx_size,
        };
        self
    }

    /// Closed-loop clients (see [`Workload::ClosedLoop`]).
    pub fn closed_loop(mut self, clients: usize, think_time: Duration, tx_size: usize) -> Self {
        self.workload = Workload::ClosedLoop {
            clients,
            think_time,
            tx_size,
        };
        self
    }

    /// Schedules `node` to crash `at` after the start.
    pub fn crash(mut self, node: NodeId, at: Duration) -> Self {
        self.crashes.push(FaultEvent { node, at });
        self
    }

    /// Attaches a declarative [`FaultPlan`] — link faults, partitions and
    /// crash-recover node faults, applied identically by every runtime.
    /// The canonical plans live in [`crate::catalog`]; the normative
    /// catalog with one snippet per plan is `docs/SCENARIOS.md`.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches an open-loop client-RPC ingress soak (see
    /// [`crate::ingress::IngressLoad`]): clients submit through the §11 RPC
    /// sub-protocol into per-node admission gates instead of the raw
    /// injection path, and the run report gains a populated `ingress`
    /// section with per-lane accepted/shed/lost counts and submit→commit
    /// latency percentiles.
    pub fn with_ingress(mut self, load: crate::ingress::IngressLoad) -> Self {
        self.ingress = Some(load);
        self
    }

    /// Schedules the last `f` of `n` nodes to crash at `at` — the shape of
    /// the benign-failure experiment (§7.4.1).
    pub fn crash_last_f(mut self, n: usize, f: usize, at: Duration) -> Self {
        for i in n.saturating_sub(f)..n {
            self.crashes.push(FaultEvent {
                node: NodeId(i as u32),
                at,
            });
        }
        self
    }

    /// Sets the run length; unless [`Scenario::with_warmup`] pinned it
    /// explicitly, the warm-up is re-derived as 10% of the duration.
    pub fn run_for(mut self, duration: Duration) -> Self {
        self.duration = duration;
        if !self.warmup_explicit {
            self.warmup = duration / 10;
        }
        self
    }

    /// Overrides the warm-up prefix excluded from rate metrics. The value
    /// sticks regardless of builder-call order with [`Scenario::run_for`].
    pub fn with_warmup(mut self, warmup: Duration) -> Self {
        self.warmup = warmup;
        self.warmup_explicit = true;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the CPU cost model (e.g. `CostModel::c5_4xlarge()` for the
    /// §7.6 comparison).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Overrides the per-node egress bandwidth (`None` = unlimited).
    pub fn with_bandwidth(mut self, bytes_per_sec: Option<u64>) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// A base timeout suited to this scenario's topology — geo links need
    /// hundreds of milliseconds where a data-center needs tens.
    pub fn recommended_timeout(&self) -> Duration {
        match self.topology {
            Topology::Geo => Duration::from_millis(400),
            Topology::Custom(ref latency) => {
                (latency.upper_bound() * 2).max(Duration::from_millis(20))
            }
            _ => Duration::from_millis(20),
        }
    }

    /// Short label of the topology for reports.
    pub fn network_label(&self) -> &'static str {
        match self.topology {
            Topology::Ideal => "ideal",
            Topology::SingleDc => "single-dc",
            Topology::Geo => "geo",
            Topology::Custom(_) => "custom",
        }
    }

    /// The simulator configuration this scenario describes.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = match &self.topology {
            Topology::Ideal => SimConfig::ideal(),
            Topology::SingleDc => SimConfig::single_dc(),
            Topology::Geo => SimConfig::geo_distributed(),
            Topology::Custom(latency) => SimConfig::single_dc().with_latency(latency.clone()),
        };
        cfg = cfg.with_seed(self.seed);
        if let Some(cost) = self.cost {
            cfg = cfg.with_cost(cost);
        }
        if let Some(bandwidth) = self.bandwidth {
            cfg = cfg.with_bandwidth(bandwidth);
        }
        cfg
    }

    /// The crash schedule over both this scenario's fault events and the
    /// builder-level `CrashAt` roles passed in by the runtime.
    pub fn crash_schedule(&self, extra: &[(NodeId, Duration)]) -> CrashSchedule {
        let mut schedule = CrashSchedule::new();
        for fault in &self.crashes {
            schedule = schedule.crash(fault.node, SimTime::ZERO + fault.at);
        }
        for (node, at) in extra {
            schedule = schedule.crash(*node, SimTime::ZERO + *at);
        }
        schedule
    }

    /// The nodes this scenario crashes (regardless of trigger time).
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashes.iter().map(|f| f.node).collect()
    }

    /// Every node this scenario faults at any point: scenario crash events
    /// plus the fault plan's node faults (crash-recover included — a node
    /// that was down for part of the window would bias rate averages).
    /// Run reports exclude these nodes from rate metrics.
    pub fn faulted_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.crashed_nodes();
        if let Some(plan) = &self.faults {
            nodes.extend(plan.faulted_nodes());
        }
        nodes.sort_by_key(|n| n.0);
        nodes.dedup();
        nodes
    }

    /// The fault-plan name recorded in run reports (`"none"` when the
    /// scenario carries no plan).
    pub fn fault_plan_name(&self) -> String {
        self.faults
            .as_ref()
            .map(|p| p.name.clone())
            .unwrap_or_else(|| "none".to_string())
    }

    /// The client-injection schedule for an `n`-node cluster, as
    /// `(time, target, transaction)` triples in time order. Empty for
    /// saturated load.
    pub fn injection_schedule(&self, n: usize) -> Vec<(SimTime, NodeId, Transaction)> {
        let (rate, tx_size) = match &self.workload {
            Workload::Saturated => return Vec::new(),
            Workload::OpenLoop {
                rate_per_sec,
                tx_size,
            } => (*rate_per_sec, *tx_size),
            Workload::ClosedLoop {
                clients,
                think_time,
                tx_size,
            } => {
                let think = think_time.as_secs_f64().max(1e-6);
                (*clients as f64 / think, *tx_size)
            }
        };
        TxInjector::new(rate, tx_size, n)
            .with_seed(self.seed)
            .schedule(SimTime::ZERO, SimTime::ZERO + self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_defaults() {
        let s = Scenario::new("x");
        assert_eq!(s.network_label(), "single-dc");
        assert!(matches!(s.workload, Workload::Saturated));
        assert!(s.injection_schedule(4).is_empty());
        assert_eq!(s.recommended_timeout(), Duration::from_millis(20));
    }

    #[test]
    fn geo_recommends_larger_timeouts() {
        assert!(Scenario::new("g").geo().recommended_timeout() >= Duration::from_millis(400));
    }

    #[test]
    fn open_loop_schedule_matches_rate() {
        let s = Scenario::new("w")
            .open_loop(100.0, 64)
            .run_for(Duration::from_secs(1));
        let sched = s.injection_schedule(4);
        assert_eq!(sched.len(), 100);
        assert!(sched.iter().all(|(_, _, tx)| tx.payload_len() == 64));
    }

    #[test]
    fn closed_loop_approximates_equilibrium_rate() {
        let s = Scenario::new("c")
            .closed_loop(10, Duration::from_millis(100), 32)
            .run_for(Duration::from_secs(1));
        // 10 clients thinking 100 ms each ⇒ ≈100 tx/s.
        assert_eq!(s.injection_schedule(4).len(), 100);
    }

    #[test]
    fn crash_helpers_fill_the_schedule() {
        let s = Scenario::new("f")
            .crash(NodeId(1), Duration::from_millis(50))
            .crash_last_f(7, 2, Duration::from_millis(100));
        assert_eq!(s.crashes.len(), 3);
        assert_eq!(s.crashed_nodes(), vec![NodeId(1), NodeId(5), NodeId(6)]);
        let schedule = s.crash_schedule(&[(NodeId(0), Duration::ZERO)]);
        assert_eq!(
            schedule.correct_nodes(7),
            vec![NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn explicit_warmup_survives_run_for_in_any_order() {
        let before = Scenario::new("w")
            .with_warmup(Duration::ZERO)
            .run_for(Duration::from_secs(2));
        assert_eq!(before.warmup, Duration::ZERO);
        let after = Scenario::new("w")
            .run_for(Duration::from_secs(2))
            .with_warmup(Duration::from_millis(5));
        assert_eq!(after.warmup, Duration::from_millis(5));
        let derived = Scenario::new("w").run_for(Duration::from_secs(2));
        assert_eq!(derived.warmup, Duration::from_millis(200));
    }

    #[test]
    fn fault_plan_rides_on_the_scenario() {
        use fireledger_types::FaultPlan;
        let bare = Scenario::new("bare");
        assert_eq!(bare.fault_plan_name(), "none");
        assert!(bare.faulted_nodes().is_empty());

        let plan = FaultPlan::named("adversity").crash_recover(
            NodeId(2),
            Duration::from_millis(10),
            Duration::from_millis(20),
        );
        let s = Scenario::new("s")
            .crash(NodeId(1), Duration::ZERO)
            .with_faults(plan);
        assert_eq!(s.fault_plan_name(), "adversity");
        // Scenario crashes and plan node faults merge, sorted and deduped.
        assert_eq!(s.faulted_nodes(), vec![NodeId(1), NodeId(2)]);
        // crashed_nodes keeps its pre-plan meaning.
        assert_eq!(s.crashed_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn sim_config_reflects_overrides() {
        let cfg = Scenario::new("o")
            .with_seed(9)
            .with_bandwidth(None)
            .with_cost(CostModel::free())
            .sim_config();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.bandwidth_bytes_per_sec, None);
        assert_eq!(cfg.cost, CostModel::free());
    }
}
