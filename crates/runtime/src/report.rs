//! The unified run report returned by every runtime.
//!
//! [`RunReport`] replaces the divergent metrics extraction that used to live
//! separately in `fireledger_sim::metrics` and the benchmark harness: all
//! runtimes hand back the same schema, so experiment code can compare a
//! simulated run against a threaded or TCP run field by field. Fields a
//! runtime cannot measure are zero/empty rather than absent — the schema
//! never changes shape.
//!
//! ## Units and time bases
//!
//! Every field documents its unit on the field itself. One subtlety is
//! worth stating once, centrally: **time-valued fields mean simulated
//! (virtual) time on the `"sim"` runtime and wall-clock time on the
//! `"threads"` and `"tcp"` runtimes.** A `duration_secs` of `1.8` from the
//! simulator is 1.8 simulated seconds (computed instantly); from a
//! real-time runtime it is 1.8 elapsed real seconds. Rates (`tps`, `bps`,
//! `recoveries_per_sec`) are per second of that same time base.

/// Per-node delivery counters.
///
/// Counts cover the node's **whole run** (warm-up included) — unlike the
/// rate fields of [`RunReport`], which cover only the measurement window.
/// This is deliberate: per-node counters exist to compare ledgers across
/// nodes and runs, where dropping a warm-up prefix would hide divergence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeDeliveries {
    /// The node's index (`0..n`). Unit: none (identifier).
    pub node: u32,
    /// Blocks delivered (in total order) at this node over the whole run.
    /// Unit: blocks (count).
    pub blocks: u64,
    /// Transactions contained in those blocks. Unit: transactions (count).
    pub txs: u64,
    /// Offset of the node's first delivery from the start of the run.
    /// Unit: seconds (simulated on `"sim"`, wall-clock otherwise); 0 when
    /// the node delivered nothing.
    pub first_delivery_secs: f64,
    /// Offset of the node's last delivery from the start of the run.
    /// Unit: seconds; 0 when the node delivered nothing.
    pub last_delivery_secs: f64,
    /// The longest gap between two *consecutive* deliveries at this node —
    /// the stall metric: under a partition it spans the split, and
    /// `last_delivery_secs` past the heal point shows the recovery.
    /// Unit: seconds; 0 with fewer than two deliveries.
    pub max_gap_secs: f64,
}

impl NodeDeliveries {
    /// Computes the delivery-timeline fields from the node's delivery
    /// offsets (seconds from the start of the run, in delivery order).
    pub fn timeline_from(mut self, times_secs: &[f64]) -> Self {
        self.first_delivery_secs = times_secs.first().copied().unwrap_or(0.0);
        self.last_delivery_secs = times_secs.last().copied().unwrap_or(0.0);
        self.max_gap_secs = times_secs
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0, f64::max);
        self
    }
}

/// Per-lane ingress counters of one run (see [`IngressReport`]).
///
/// The counts are the **client fleet's view**: `accepted` is acks the
/// clients received, `committed` is accepted transactions the clients later
/// observed in a delivered block, and `lost` is the difference when the run
/// closed — the accepted-then-lost count the ingress soak exists to pin at
/// zero. Latency percentiles are submit→commit, over this lane's committed
/// transactions (same time base as the rest of the report: simulated
/// seconds on `"sim"`, wall-clock on `"threads"`/`"tcp"`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IngressLaneReport {
    /// Submissions acked `Accepted`. Unit: transactions (count).
    pub accepted: u64,
    /// Accepted transactions observed committed. Unit: transactions.
    pub committed: u64,
    /// Accepted transactions never observed committed — must be 0 under
    /// the supported fault plans. Unit: transactions.
    pub lost: u64,
    /// Submissions shed `Busy` (lane full or node down). Unit: attempts.
    pub shed_busy: u64,
    /// Submissions shed `RateLimited`. Unit: attempts.
    pub shed_rate_limited: u64,
    /// Submissions refused `Syncing`. Unit: attempts.
    pub rejected_syncing: u64,
    /// Submissions acked `Duplicate`. Unit: attempts.
    pub duplicate: u64,
    /// Median submit→commit latency. Unit: seconds (0 = no commits).
    pub p50_latency_secs: f64,
    /// 95th-percentile submit→commit latency. Unit: seconds.
    pub p95_latency_secs: f64,
    /// 99th-percentile submit→commit latency. Unit: seconds.
    pub p99_latency_secs: f64,
}

/// The `ingress` section of a [`RunReport`]: client-RPC admission outcomes,
/// per lane, plus fleet-level retry accounting. All-zero with
/// `enabled: false` when the scenario carried no ingress load — the schema
/// never changes shape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IngressReport {
    /// True when the scenario ran an ingress client fleet.
    pub enabled: bool,
    /// Per-lane counters, indexed probe / normal / bulk.
    pub lanes: [IngressLaneReport; 3],
    /// Client retries after retryable refusals. Unit: attempts (count).
    pub retries: u64,
    /// Submissions abandoned after the retry budget. Unit: transactions.
    pub abandoned: u64,
    /// Transport-level failures (lost connections, malformed replies).
    /// Unit: attempts (count).
    pub transport_errors: u64,
}

impl IngressReport {
    /// Total accepted submissions across lanes.
    pub fn accepted(&self) -> u64 {
        self.lanes.iter().map(|l| l.accepted).sum()
    }

    /// Total observed commits across lanes.
    pub fn committed(&self) -> u64 {
        self.lanes.iter().map(|l| l.committed).sum()
    }

    /// Total accepted-then-lost across lanes.
    pub fn lost(&self) -> u64 {
        self.lanes.iter().map(|l| l.lost).sum()
    }

    /// Total shed (busy + rate-limited) across lanes.
    pub fn shed(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.shed_busy + l.shed_rate_limited)
            .sum()
    }

    /// The section as a single-line JSON object — exactly the value the
    /// `ingress` key of [`RunReport::to_json`] carries, reusable standalone
    /// by the bench trajectory's ingress rows.
    pub fn to_json(&self) -> String {
        let lanes: Vec<String> = ["probe", "normal", "bulk"]
            .iter()
            .zip(self.lanes.iter())
            .map(|(name, l)| {
                format!(
                    concat!(
                        "{{\"lane\":{},\"accepted\":{},\"committed\":{},\"lost\":{},",
                        "\"shed_busy\":{},\"shed_rate_limited\":{},\"rejected_syncing\":{},",
                        "\"duplicate\":{},\"p50_latency_secs\":{},\"p95_latency_secs\":{},",
                        "\"p99_latency_secs\":{}}}"
                    ),
                    json_string(name),
                    l.accepted,
                    l.committed,
                    l.lost,
                    l.shed_busy,
                    l.shed_rate_limited,
                    l.rejected_syncing,
                    l.duplicate,
                    json_f64(l.p50_latency_secs),
                    json_f64(l.p95_latency_secs),
                    json_f64(l.p99_latency_secs)
                )
            })
            .collect();
        format!(
            "{{\"enabled\":{},\"lanes\":[{}],\"retries\":{},\"abandoned\":{},\"transport_errors\":{}}}",
            self.enabled,
            lanes.join(","),
            self.retries,
            self.abandoned,
            self.transport_errors
        )
    }
}

/// The `execution` section of a [`RunReport`]: the pipelined execution
/// engine's counters, summed over the measured nodes' shards. All-zero with
/// `enabled: false` when the cluster ran without
/// [`ClusterBuilder::with_execution`](crate::ClusterBuilder::with_execution)
/// — the schema never changes shape.
///
/// Counts cover the whole run; `transitions_per_sec` is averaged across the
/// measured nodes over the measurement window, the executed-transitions
/// companion to `tps` (which counts *ordered* transactions — an executed
/// transition is an ordered transaction whose operation decoded and
/// applied).
///
/// The conflicting-workload scenario of docs/SCENARIOS.md: half the
/// executable filler's operations land on a 4-entry hot set
/// (`conflict_pct: 50`), so the apply stage's conflict partitioning has to
/// serialize real dependency chains — and the engine must still agree with
/// itself: zero root mismatches, and a receipt histogram that accounts for
/// every executed transaction:
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use std::time::Duration;
///
/// let params = ProtocolParams::new(4)
///     .with_batch_size(8)
///     .with_tx_size(64)
///     .with_fill_ops(FillOps { accounts: 64, conflict_pct: 50 });
/// let cluster = ClusterBuilder::<FloCluster>::new(params)
///     .with_execution(ExecConfig::with_genesis(64, 1_000_000));
/// let scenario = Scenario::new("exec-conflict50")
///     .ideal()
///     .run_for(Duration::from_millis(400))
///     .with_warmup(Duration::ZERO);
/// let report = Simulator.run(&cluster, &scenario).unwrap();
/// let e = &report.execution;
/// assert!(e.enabled && e.root_mismatches == 0);
/// assert_eq!(e.receipts.iter().sum::<u64>(), e.executed_txs);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecutionReport {
    /// True when the cluster ran with the execution engine enabled.
    pub enabled: bool,
    /// Committed blocks executed, summed over measured nodes' shards.
    /// Unit: blocks (count).
    pub executed_blocks: u64,
    /// Transactions executed (every transaction of every executed block,
    /// whatever its receipt). Unit: transactions (count).
    pub executed_txs: u64,
    /// Successfully applied state transitions (`applied` receipts).
    /// Unit: transitions (count).
    pub applied_transitions: u64,
    /// Applied transitions per second within the measurement window,
    /// averaged across the measured nodes. Unit: transitions / second.
    pub transitions_per_sec: f64,
    /// Receipt counts by kind, indexed per
    /// [`fireledger_types::Receipt::KIND_LABELS`]. Unit: receipts (count).
    pub receipts: [u64; fireledger_types::Receipt::KINDS],
    /// Delivered execution-root claims cross-checked against local
    /// execution. Unit: checks (count).
    pub root_checks: u64,
    /// Cross-checks that diverged — typed execution faults, 0 on any
    /// honest cluster. Unit: mismatches (count).
    pub root_mismatches: u64,
    /// Engine resets (kill-restart rebuilds) over the run. Unit: resets
    /// (count).
    pub resets: u64,
}

impl ExecutionReport {
    /// The section as a single-line JSON object — the value of the
    /// `execution` key of [`RunReport::to_json`], reusable standalone by
    /// the bench trajectory's execution rows.
    pub fn to_json(&self) -> String {
        let receipts: Vec<String> = fireledger_types::Receipt::KIND_LABELS
            .iter()
            .zip(self.receipts.iter())
            .map(|(label, count)| format!("{}:{}", json_string(label), count))
            .collect();
        format!(
            concat!(
                "{{\"enabled\":{},\"executed_blocks\":{},\"executed_txs\":{},",
                "\"applied_transitions\":{},\"transitions_per_sec\":{},",
                "\"receipts\":{{{}}},\"root_checks\":{},\"root_mismatches\":{},",
                "\"resets\":{}}}"
            ),
            self.enabled,
            self.executed_blocks,
            self.executed_txs,
            self.applied_transitions,
            json_f64(self.transitions_per_sec),
            receipts.join(","),
            self.root_checks,
            self.root_mismatches,
            self.resets,
        )
    }
}

/// Headline numbers of one run, in the units the paper uses.
///
/// Serialized by [`RunReport::to_json`]; the JSON key set is versioned by
/// [`RunReport::SCHEMA_VERSION`] (see there for the bump policy and
/// history).
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Protocol name ([`crate::ClusterProtocol::NAME`]). Unit: none.
    pub protocol: String,
    /// Scenario name. Unit: none.
    pub scenario: String,
    /// Runtime name: `"sim"`, `"threads"` or `"tcp"`. Determines the time
    /// base of every time-valued field (see the module docs).
    pub runtime: String,
    /// Name of the scenario's fault plan (`"none"` for a fault-free run).
    /// Unit: none.
    pub fault_plan: String,
    /// Durability configuration of the run: `"none"` when the cluster ran
    /// without a store, `"fsync-<policy>"` (`fsync-always`, `fsync-every64`,
    /// `fsync-os`, …) when [`ClusterBuilder::with_store`] gave every node a
    /// durable block log + WAL. Unit: none.
    ///
    /// [`ClusterBuilder::with_store`]: crate::ClusterBuilder::with_store
    pub durability: String,
    /// Cluster size n. Unit: nodes (count).
    pub n: usize,
    /// FLO workers ω (1 for single-instance protocols). Unit: workers
    /// (count).
    pub workers: usize,
    /// OS threads the cluster ran — protocol threads plus every
    /// runtime-owned helper (socket engine, pre-verify stages, fault delay
    /// line, RPC accept loops), snapshotted just before shutdown. `0` on
    /// `"sim"` (inline, nothing to count). This is the measurement behind
    /// the TCP reactor's O(n) scaling claim: on the reactor engine a
    /// fault-free, ingress-free cluster reports `n + reactor_threads`,
    /// versus `n + 2n(n−1)` on the legacy thread-per-peer engine. Unit:
    /// threads (count).
    pub threads: usize,
    /// Length of the measurement window (run duration minus warm-up).
    /// Unit: seconds — simulated on `"sim"`, wall-clock on `"threads"` /
    /// `"tcp"`.
    pub duration_secs: f64,
    /// Delivered transactions per second within the measurement window,
    /// averaged across the measured (correct, uncrashed) nodes. Unit:
    /// transactions / second.
    pub tps: f64,
    /// Delivered blocks per second within the measurement window, averaged
    /// across the measured nodes. Unit: blocks / second.
    pub bps: f64,
    /// Mean delivery latency. Unit: seconds. On `"sim"` this is simulated
    /// proposal→delivery time per block; on `"threads"`/`"tcp"` it is
    /// wall-clock submit→commit time over the scenario's injected
    /// transactions (zero under a purely saturated workload, which injects
    /// nothing to stamp).
    pub avg_latency_secs: f64,
    /// Median delivery latency (same basis as `avg_latency_secs`).
    /// Unit: seconds (0 = unmeasured).
    pub p50_latency_secs: f64,
    /// 95th-percentile delivery latency (same basis as
    /// `avg_latency_secs`). Unit: seconds (0 = unmeasured).
    pub p95_latency_secs: f64,
    /// 99th-percentile delivery latency (same basis as
    /// `avg_latency_secs`). Unit: seconds (0 = unmeasured).
    pub p99_latency_secs: f64,
    /// Recovery procedures started per second (rps in Figure 12). Unit:
    /// recoveries / second.
    pub recoveries_per_sec: f64,
    /// OBBC fallback invocations over the whole run. Unit: invocations
    /// (count).
    pub fallbacks: u64,
    /// Messages sent by the measured nodes over the whole run. Unit:
    /// messages (count; 0 = unmeasured).
    pub msgs_sent: u64,
    /// Bytes sent by the measured nodes over the whole run, per the
    /// `WireSize` model. Unit: bytes (count; 0 = unmeasured).
    pub bytes_sent: u64,
    /// Signatures produced over the whole run. Unit: signatures (count;
    /// 0 = unmeasured).
    pub signatures: u64,
    /// Signature verifications performed over the whole run. Unit:
    /// verifications (count; 0 = unmeasured).
    pub verifications: u64,
    /// Empirical latency CDF as `(latency_secs, cumulative_fraction)`
    /// points (Figures 8 and 15). Units: seconds × dimensionless fraction
    /// in `[0, 1]`. Empty when latency is not measured.
    pub latency_cdf: Vec<(f64, f64)>,
    /// Relative time spent between the A→B, B→C, C→D and D→E lifecycle
    /// events (Figure 9). Unit: dimensionless fractions summing to ≈ 1
    /// (all zero when unmeasured).
    pub phase_breakdown: [f64; 4],
    /// Per-node delivery counters, one entry per node of the cluster
    /// (whole-run counts — see [`NodeDeliveries`]).
    pub per_node: Vec<NodeDeliveries>,
    /// Client-RPC ingress outcomes (see [`IngressReport`]); all-zero with
    /// `enabled: false` when the scenario carried no ingress load.
    pub ingress: IngressReport,
    /// Execution-engine outcomes (see [`ExecutionReport`]); all-zero with
    /// `enabled: false` when the cluster ran without execution.
    pub execution: ExecutionReport,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl RunReport {
    /// The report as a single-line JSON object.
    ///
    /// The key set is the report's schema: it is identical for every
    /// protocol and runtime, which is what lets downstream tooling diff runs
    /// across the whole experiment matrix.
    pub fn to_json(&self) -> String {
        let cdf: Vec<String> = self
            .latency_cdf
            .iter()
            .map(|(lat, frac)| format!("[{},{}]", json_f64(*lat), json_f64(*frac)))
            .collect();
        let per_node: Vec<String> = self
            .per_node
            .iter()
            .map(|d| {
                format!(
                    "{{\"node\":{},\"blocks\":{},\"txs\":{},\"first_delivery_secs\":{},\"last_delivery_secs\":{},\"max_gap_secs\":{}}}",
                    d.node,
                    d.blocks,
                    d.txs,
                    json_f64(d.first_delivery_secs),
                    json_f64(d.last_delivery_secs),
                    json_f64(d.max_gap_secs)
                )
            })
            .collect();
        let ingress = self.ingress.to_json();
        let execution = self.execution.to_json();
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"protocol\":{},\"scenario\":{},\"runtime\":{},",
                "\"fault_plan\":{},\"durability\":{},",
                "\"n\":{},\"workers\":{},\"threads\":{},\"duration_secs\":{},",
                "\"tps\":{},\"bps\":{},",
                "\"avg_latency_secs\":{},\"p50_latency_secs\":{},",
                "\"p95_latency_secs\":{},\"p99_latency_secs\":{},",
                "\"recoveries_per_sec\":{},\"fallbacks\":{},",
                "\"msgs_sent\":{},\"bytes_sent\":{},",
                "\"signatures\":{},\"verifications\":{},",
                "\"latency_cdf\":[{}],\"phase_breakdown\":[{},{},{},{}],",
                "\"per_node\":[{}],\"ingress\":{},\"execution\":{}}}"
            ),
            Self::SCHEMA_VERSION,
            json_string(&self.protocol),
            json_string(&self.scenario),
            json_string(&self.runtime),
            json_string(if self.fault_plan.is_empty() {
                "none"
            } else {
                &self.fault_plan
            }),
            json_string(if self.durability.is_empty() {
                "none"
            } else {
                &self.durability
            }),
            self.n,
            self.workers,
            self.threads,
            json_f64(self.duration_secs),
            json_f64(self.tps),
            json_f64(self.bps),
            json_f64(self.avg_latency_secs),
            json_f64(self.p50_latency_secs),
            json_f64(self.p95_latency_secs),
            json_f64(self.p99_latency_secs),
            json_f64(self.recoveries_per_sec),
            self.fallbacks,
            self.msgs_sent,
            self.bytes_sent,
            self.signatures,
            self.verifications,
            cdf.join(","),
            json_f64(self.phase_breakdown[0]),
            json_f64(self.phase_breakdown[1]),
            json_f64(self.phase_breakdown[2]),
            json_f64(self.phase_breakdown[3]),
            per_node.join(","),
            ingress,
            execution,
        )
    }

    /// The top-level JSON keys, in emission order — the report's schema.
    ///
    /// Kept as a constant next to the `to_json` format string; the
    /// `schema_matches_emitted_json` test guards against the two drifting
    /// apart.
    pub fn schema(&self) -> Vec<String> {
        Self::SCHEMA.iter().map(|k| k.to_string()).collect()
    }

    /// Version of the report schema (the JSON key set *and* the documented
    /// meaning/units of each field).
    ///
    /// Bump policy: any key addition, removal, reordering, or change to a
    /// field's unit or time base is a schema change and must increment this
    /// constant and extend the history below. Downstream tooling that diffs
    /// `JSON:` lines across runs should treat differing schema versions as
    /// incomparable.
    ///
    /// History:
    ///
    /// * **1** — initial schema (PR 1): 21 keys, `runtime` ∈ {`"sim"`,
    ///   `"threads"`}; field units undocumented (wall-clock vs simulated
    ///   time was implicit).
    /// * **2** — adds the leading `schema_version` key (21 → 22 keys) so
    ///   the version is visible in the data itself; `runtime` gains the
    ///   value `"tcp"`; units and time bases documented on every field,
    ///   including that real-time runtimes report wall-clock seconds. No
    ///   v1 key changed, so v1 consumers parse v2 reports unchanged.
    /// * **3** — fault-injection support: adds the top-level `fault_plan`
    ///   key (22 → 23 keys; the scenario's plan name, `"none"` when
    ///   fault-free) after `runtime`, and extends every `per_node` entry
    ///   with the delivery-timeline keys `first_delivery_secs`,
    ///   `last_delivery_secs` and `max_gap_secs` (stall/recovery metrics;
    ///   see [`NodeDeliveries`]). Pre-v3 `per_node` keys are unchanged, so
    ///   v2 consumers that ignore unknown keys parse v3 reports.
    /// * **4** — durable-ledger support: adds the top-level `durability`
    ///   key (23 → 24 keys) after `fault_plan` — `"none"` for a volatile
    ///   run, `"fsync-<policy>"` when the cluster persisted through a
    ///   configured store. No other key changed, so v3 consumers that
    ///   ignore unknown keys parse v4 reports.
    /// * **5** — client-RPC ingress: adds the trailing top-level `ingress`
    ///   key (24 → 25 keys), an object with `enabled`, per-lane
    ///   probe/normal/bulk counters (accepted / committed / lost / shed /
    ///   duplicate plus submit→commit latency percentiles) and fleet-level
    ///   `retries` / `abandoned` / `transport_errors`. Always emitted —
    ///   `enabled: false` with zeros when the scenario carried no ingress
    ///   load. No other key changed, so v4 consumers that ignore unknown
    ///   keys parse v5 reports.
    /// * **6** — pipelined execution: adds the trailing top-level
    ///   `execution` key (25 → 26 keys), an object with `enabled`, the
    ///   engine counters (`executed_blocks`, `executed_txs`,
    ///   `applied_transitions`, `transitions_per_sec`), a `receipts` object
    ///   keyed by receipt kind, and the root cross-check counters
    ///   (`root_checks`, `root_mismatches`, `resets`). Always emitted —
    ///   `enabled: false` with zeros when the cluster ran without
    ///   execution. No other key changed, so v5 consumers that ignore
    ///   unknown keys parse v6 reports.
    /// * **7** — thread accounting for the TCP reactor engine: adds the
    ///   top-level `threads` key (26 → 27 keys) after `workers` — the OS
    ///   threads the cluster ran, snapshotted just before shutdown (`0` on
    ///   `"sim"`). This is the number the O(n)-threads scaling claim is
    ///   verified against. No other key changed, so v6 consumers that
    ///   ignore unknown keys parse v7 reports.
    pub const SCHEMA_VERSION: u32 = 7;

    /// The schema as a constant.
    pub const SCHEMA: [&'static str; 27] = [
        "schema_version",
        "protocol",
        "scenario",
        "runtime",
        "fault_plan",
        "durability",
        "n",
        "workers",
        "threads",
        "duration_secs",
        "tps",
        "bps",
        "avg_latency_secs",
        "p50_latency_secs",
        "p95_latency_secs",
        "p99_latency_secs",
        "recoveries_per_sec",
        "fallbacks",
        "msgs_sent",
        "bytes_sent",
        "signatures",
        "verifications",
        "latency_cdf",
        "phase_breakdown",
        "per_node",
        "ingress",
        "execution",
    ];

    /// Prints a human-readable row plus a machine-readable `JSON:` line.
    pub fn emit(&self, label: &str) {
        println!(
            "{label:<28} {:<9}/{:<7} n={:<3} ω={:<2} net={:<9} | tps={:>10.0} bps={:>8.1} lat(avg)={:>7.3}s p95={:>7.3}s rps={:>5.2} msgs={:>8}",
            self.protocol,
            self.runtime,
            self.n,
            self.workers,
            self.scenario,
            self.tps,
            self.bps,
            self.avg_latency_secs,
            self.p95_latency_secs,
            self.recoveries_per_sec,
            self.msgs_sent,
        );
        println!("JSON: {}", self.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            protocol: "flo".into(),
            scenario: "test".into(),
            runtime: "sim".into(),
            n: 4,
            workers: 2,
            duration_secs: 1.5,
            tps: 1000.0,
            bps: 10.0,
            latency_cdf: vec![(0.01, 0.5), (0.02, 1.0)],
            phase_breakdown: [0.1, 0.2, 0.3, 0.4],
            per_node: vec![
                NodeDeliveries {
                    node: 0,
                    blocks: 15,
                    txs: 1500,
                    ..Default::default()
                },
                NodeDeliveries {
                    node: 1,
                    blocks: 15,
                    txs: 1500,
                    ..Default::default()
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn json_is_wellformed_and_contains_headline_fields() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"protocol\":\"flo\""));
        assert!(json.contains("\"tps\":1000"));
        assert!(json.contains("\"per_node\":[{\"node\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn schema_is_independent_of_values() {
        let empty = RunReport::default().schema();
        let full = sample().schema();
        assert_eq!(empty, full);
        assert!(full.contains(&"tps".to_string()));
        assert!(full.contains(&"per_node".to_string()));
        assert!(full.contains(&"fault_plan".to_string()));
        assert!(full.contains(&"durability".to_string()));
        assert!(full.contains(&"ingress".to_string()));
        assert!(full.contains(&"execution".to_string()));
        assert!(full.contains(&"threads".to_string()));
        assert_eq!(full.len(), 27);
        assert_eq!(full[0], "schema_version");
    }

    #[test]
    fn execution_section_emits_disabled_zeros_and_populated_counters() {
        let json = RunReport::default().to_json();
        assert!(json.contains("\"execution\":{\"enabled\":false,\"executed_blocks\":0"));
        assert!(json.contains("\"receipts\":{\"applied\":0,"));
        let mut r = sample();
        r.execution.enabled = true;
        r.execution.executed_blocks = 12;
        r.execution.executed_txs = 480;
        r.execution.applied_transitions = 450;
        r.execution.transitions_per_sec = 300.0;
        r.execution.receipts[0] = 450;
        r.execution.receipts[1] = 30;
        r.execution.root_checks = 9;
        let json = r.to_json();
        assert!(json.contains("\"enabled\":true"));
        assert!(json.contains("\"applied_transitions\":450"));
        assert!(json.contains("\"transitions_per_sec\":300"));
        assert!(json.contains("\"applied\":450,\"insufficient_funds\":30"));
        assert!(json.contains("\"root_checks\":9,\"root_mismatches\":0,\"resets\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn ingress_section_emits_disabled_zeros_and_populated_lanes() {
        let json = RunReport::default().to_json();
        assert!(json.contains("\"ingress\":{\"enabled\":false,\"lanes\":[{\"lane\":\"probe\""));
        let mut r = sample();
        r.ingress.enabled = true;
        r.ingress.lanes[1].accepted = 40;
        r.ingress.lanes[1].committed = 40;
        r.ingress.lanes[2].shed_busy = 7;
        r.ingress.lanes[1].p99_latency_secs = 0.25;
        r.ingress.retries = 3;
        assert_eq!(r.ingress.accepted(), 40);
        assert_eq!(r.ingress.lost(), 0);
        assert_eq!(r.ingress.shed(), 7);
        let json = r.to_json();
        assert!(json.contains("\"enabled\":true"));
        assert!(json.contains("\"lane\":\"normal\",\"accepted\":40,\"committed\":40,\"lost\":0"));
        assert!(json.contains(
            "\"lane\":\"bulk\",\"accepted\":0,\"committed\":0,\"lost\":0,\"shed_busy\":7"
        ));
        assert!(json.contains("\"p99_latency_secs\":0.25"));
        assert!(json.contains("\"retries\":3,\"abandoned\":0,\"transport_errors\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fault_plan_defaults_to_none_and_timeline_fields_emit() {
        let json = sample().to_json();
        assert!(json.contains("\"fault_plan\":\"none\""));
        assert!(json.contains("\"durability\":\"none\""));
        assert!(json.contains("\"first_delivery_secs\":"));
        let named = RunReport {
            fault_plan: "partition-heal".into(),
            durability: "fsync-every64".into(),
            ..Default::default()
        };
        let json = named.to_json();
        assert!(json.contains("\"fault_plan\":\"partition-heal\""));
        assert!(json.contains("\"durability\":\"fsync-every64\""));
    }

    #[test]
    fn timeline_from_computes_stall_metrics() {
        let d = NodeDeliveries::default().timeline_from(&[0.1, 0.2, 0.9, 1.0]);
        assert_eq!(d.first_delivery_secs, 0.1);
        assert_eq!(d.last_delivery_secs, 1.0);
        assert!((d.max_gap_secs - 0.7).abs() < 1e-12);
        // Degenerate series.
        let empty = NodeDeliveries::default().timeline_from(&[]);
        assert_eq!(
            (
                empty.first_delivery_secs,
                empty.last_delivery_secs,
                empty.max_gap_secs
            ),
            (0.0, 0.0, 0.0)
        );
        let one = NodeDeliveries::default().timeline_from(&[0.5]);
        assert_eq!(one.max_gap_secs, 0.0);
        assert_eq!(one.first_delivery_secs, 0.5);
    }

    #[test]
    fn schema_matches_emitted_json() {
        // Every schema key must appear as a top-level key in the emitted
        // JSON, in schema order — guards the const list against drifting
        // from the format string.
        let json = sample().to_json();
        let mut from = 0usize;
        for key in RunReport::SCHEMA {
            let needle = format!("\"{key}\":");
            let at = json[from..]
                .find(&needle)
                .unwrap_or_else(|| panic!("key {key} missing or out of order"));
            from += at + needle.len();
        }
    }

    #[test]
    fn json_escapes_strings() {
        let r = RunReport {
            scenario: "with \"quotes\"\nand newline".into(),
            ..Default::default()
        };
        let json = r.to_json();
        assert!(json.contains("with \\\"quotes\\\"\\nand newline"));
    }

    #[test]
    fn non_finite_rates_become_zero() {
        let r = RunReport {
            tps: f64::NAN,
            bps: f64::INFINITY,
            ..Default::default()
        };
        let json = r.to_json();
        assert!(json.contains("\"tps\":0"));
        assert!(json.contains("\"bps\":0"));
    }
}
