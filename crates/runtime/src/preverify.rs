//! The FLO pre-verification hook: off-loop batch validation of headers and
//! block bodies for the real-time runtimes.
//!
//! [`FloPreVerifier`] implements `fireledger_net`'s
//! [`PreVerify`] for both FLO-level and single-worker messages. Installed
//! by [`crate::Runtime`] implementations when a cluster is built with
//! [`crate::ClusterBuilder::crypto_threads`] ≥ 2, it runs on each node's
//! pre-verify stage thread and does two things per drained batch:
//!
//! 1. **Header signatures** — every `Header`, piggybacked `Vote` header and
//!    `PullHeaderReply` in the batch is signature-checked as *one*
//!    [`CryptoPool::batch_verify`] call; the verdicts are memoized on the
//!    header values (`SignedHeader::sig_cache`), so the consensus loop's
//!    own `verify_header_cached` becomes a cache read. Headers the loop
//!    would reject wholesale (wrong claimed sender, bad signature on a
//!    standalone header) are dropped before they reach the loop.
//! 2. **Body commitments** — every `BlockData` / `PullBlockReply` body is
//!    merkle-hashed (leaf digesting parallelized through the pool) and
//!    compared against the hash it is announced under; mismatches are
//!    dropped. Workers marked with `set_preverified_ingress` then record
//!    the announced hash as the verified root instead of re-hashing β
//!    transactions on the loop.
//!
//! Dropping is only used where the loop could never accept the message:
//! for header signatures the verdict is exactly the in-loop one, and for
//! bodies the stage is *at least as strong* — the in-loop path stores
//! bodies first-wins before validating them (a mismatched body can occupy
//! its announced slot and block the genuine one), while the stage rejects
//! the mismatch before it can squat. On honest traffic the two paths are
//! indistinguishable; `tests/tests/preverify.rs` pins ledger transparency
//! and that a Byzantine mis-signer is neutralized identically either way.

use crate::builder::BuildContext;
use fireledger::{FloMsg, WorkerMsg};
use fireledger_crypto::CryptoPool;
use fireledger_net::{PreVerify, Verdict};
use fireledger_types::{Hash, NodeId, SignedHeader, Transaction};
use std::sync::Mutex;

/// Off-loop batch verifier for FLO / worker traffic (see the module docs).
pub struct FloPreVerifier {
    pool: CryptoPool,
    /// Merkle leaf scratch, reused across batches. The stage calls
    /// `check_batch` from one thread per node, so this lock is uncontended;
    /// it exists because `PreVerify` takes `&self`.
    scratch: Mutex<Vec<Hash>>,
}

impl FloPreVerifier {
    /// Builds the verifier over the cluster's crypto pool.
    pub fn new(ctx: &BuildContext) -> Self {
        FloPreVerifier {
            pool: ctx.pool.clone(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The signature and body checks a worker message needs before the
    /// loop, if any.
    fn units_of<'a>(from: NodeId, msg: &'a WorkerMsg) -> Units<'a> {
        match msg {
            WorkerMsg::Header { header } => {
                if header.proposer() != from {
                    // The loop only accepts headers from their claimed
                    // proposer; dropping the impostor copy is the same
                    // unconditional reject, paid earlier.
                    Units::Reject
                } else {
                    Units::Header {
                        header,
                        drop_if_bad: true,
                    }
                }
            }
            WorkerMsg::Vote {
                piggyback: Some(header),
                ..
            } if header.proposer() == from => Units::Header {
                header,
                // The vote itself must survive even when its piggyback is
                // junk — the loop ignores the header (the memoized verdict
                // says so) but still counts the vote.
                drop_if_bad: false,
            },
            WorkerMsg::PullHeaderReply { header } => Units::Header {
                header,
                drop_if_bad: true,
            },
            WorkerMsg::BlockData { payload_hash, txs }
            | WorkerMsg::PullBlockReply { payload_hash, txs } => Units::Body {
                announced: *payload_hash,
                txs,
            },
            _ => Units::None,
        }
    }

    /// Batch implementation shared by the `FloMsg` and `WorkerMsg` hooks.
    fn check_worker_batch(&self, items: &[(NodeId, &WorkerMsg)]) -> Vec<Verdict> {
        let units: Vec<Units<'_>> = items
            .iter()
            .map(|(from, msg)| Self::units_of(*from, msg))
            .collect();

        // One pooled signature pass over every header in the batch; the
        // verdicts are memoized on the header values, and because those
        // values are *moved* into the loop, its `verify_header_cached`
        // becomes a cache read.
        let indices: Vec<usize> = units
            .iter()
            .enumerate()
            .filter_map(|(i, u)| matches!(u, Units::Header { .. }).then_some(i))
            .collect();
        let headers: Vec<&SignedHeader> = indices
            .iter()
            .map(|i| match &units[*i] {
                Units::Header { header, .. } => *header,
                _ => unreachable!("filtered to headers"),
            })
            .collect();
        let sig_verdicts = self.pool.batch_verify_headers(&headers);
        let mut sig_ok = vec![true; units.len()];
        for (i, ok) in indices.iter().zip(&sig_verdicts) {
            sig_ok[*i] = *ok;
        }

        // Bodies: parallel-merkle each one and compare against its
        // announced digest.
        let mut scratch = self.scratch.lock().expect("preverify scratch");
        units
            .iter()
            .enumerate()
            .map(|(i, unit)| match unit {
                Units::Reject => Verdict::Drop,
                Units::None => Verdict::Forward,
                Units::Header { drop_if_bad, .. } => {
                    if *drop_if_bad && !sig_ok[i] {
                        Verdict::Drop
                    } else {
                        Verdict::Forward
                    }
                }
                Units::Body { announced, txs } => {
                    if self.pool.merkle_root_par(txs, &mut scratch) == *announced {
                        Verdict::Forward
                    } else {
                        Verdict::Drop
                    }
                }
            })
            .collect()
    }
}

/// What one message contributes to the batch.
enum Units<'a> {
    /// Nothing to verify; forward as-is.
    None,
    /// Rejected on structural grounds alone (no crypto needed).
    Reject,
    /// A signed header to check; `drop_if_bad` when in-loop handling of a
    /// bad signature discards the whole message anyway.
    Header {
        header: &'a SignedHeader,
        drop_if_bad: bool,
    },
    /// A block body to check against its announced merkle root.
    Body {
        announced: Hash,
        txs: &'a [Transaction],
    },
}

impl PreVerify<FloMsg> for FloPreVerifier {
    fn check(&self, from: NodeId, msg: &FloMsg) -> Verdict {
        self.check_batch(&[(from, msg)]).pop().expect("one verdict")
    }

    fn check_batch(&self, items: &[(NodeId, &FloMsg)]) -> Vec<Verdict> {
        let inner: Vec<(NodeId, &WorkerMsg)> = items
            .iter()
            .map(|(from, msg)| (*from, &msg.inner))
            .collect();
        self.check_worker_batch(&inner)
    }
}

impl PreVerify<WorkerMsg> for FloPreVerifier {
    fn check(&self, from: NodeId, msg: &WorkerMsg) -> Verdict {
        self.check_worker_batch(&[(from, msg)])
            .pop()
            .expect("one verdict")
    }

    fn check_batch(&self, items: &[(NodeId, &WorkerMsg)]) -> Vec<Verdict> {
        self.check_worker_batch(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::{merkle_root, verify_header_cached, SimKeyStore};
    use fireledger_types::{BlockHeader, Round, Signature, WorkerId, GENESIS_HASH};
    use std::sync::Arc;

    fn ctx() -> BuildContext {
        let crypto = SimKeyStore::generate(4, 7).shared();
        BuildContext {
            params: fireledger_types::ProtocolParams::new(4),
            pool: CryptoPool::inline(crypto.clone()),
            crypto,
            validity: Arc::new(fireledger::AcceptAll),
        }
    }

    fn signed_header(ctx: &BuildContext, proposer: u32, txs: &[Transaction]) -> SignedHeader {
        let header = BlockHeader::new(
            Round(0),
            WorkerId(0),
            NodeId(proposer),
            GENESIS_HASH,
            merkle_root(txs),
            txs.len() as u32,
            txs.iter().map(|t| t.payload.len() as u64).sum(),
        );
        let sig = ctx.crypto.sign(NodeId(proposer), &header.canonical_bytes());
        SignedHeader::new(header, sig)
    }

    fn tampered(signed: &SignedHeader) -> SignedHeader {
        let mut bytes = signed.signature.as_bytes().to_vec();
        if bytes.is_empty() {
            bytes = vec![0u8; 32];
        }
        bytes[0] ^= 0xFF;
        SignedHeader::new(signed.header.clone(), Signature::from(bytes))
    }

    #[test]
    fn verdicts_match_in_loop_rejection_rules() {
        let ctx = ctx();
        let pv = FloPreVerifier::new(&ctx);
        let txs: Vec<Transaction> = (0..4).map(|i| Transaction::zeroed(1, i, 32)).collect();
        let good = signed_header(&ctx, 1, &txs);
        let bad = tampered(&good);
        let root = merkle_root(&txs);

        let cases: Vec<(NodeId, WorkerMsg, Verdict)> = vec![
            // Valid header from its proposer: forward.
            (
                NodeId(1),
                WorkerMsg::Header {
                    header: good.clone(),
                },
                Verdict::Forward,
            ),
            // Header relayed by a node that is not its proposer: the loop
            // ignores it unconditionally — drop.
            (
                NodeId(2),
                WorkerMsg::Header {
                    header: good.clone(),
                },
                Verdict::Drop,
            ),
            // Tampered signature: drop.
            (
                NodeId(1),
                WorkerMsg::Header {
                    header: bad.clone(),
                },
                Verdict::Drop,
            ),
            // A vote with a tampered piggyback keeps flowing (the vote
            // counts; the header is rejected in-loop via the seeded memo).
            (
                NodeId(1),
                WorkerMsg::Vote {
                    round: Round(0),
                    proposer: NodeId(1),
                    vote: true,
                    piggyback: Some(bad.clone()),
                },
                Verdict::Forward,
            ),
            // Pulled headers may be relayed: valid one forwards...
            (
                NodeId(3),
                WorkerMsg::PullHeaderReply {
                    header: good.clone(),
                },
                Verdict::Forward,
            ),
            // ...tampered one drops.
            (
                NodeId(3),
                WorkerMsg::PullHeaderReply {
                    header: bad.clone(),
                },
                Verdict::Drop,
            ),
            // Body matching its announced root: forward.
            (
                NodeId(2),
                WorkerMsg::BlockData {
                    payload_hash: root,
                    txs: txs.clone(),
                },
                Verdict::Forward,
            ),
            // Body announced under a wrong digest: drop.
            (
                NodeId(2),
                WorkerMsg::BlockData {
                    payload_hash: Hash([9u8; 32]),
                    txs: txs.clone(),
                },
                Verdict::Drop,
            ),
            // Messages with nothing to verify pass through.
            (
                NodeId(2),
                WorkerMsg::PullHeader {
                    round: Round(0),
                    proposer: NodeId(1),
                },
                Verdict::Forward,
            ),
        ];

        // Single-item and whole-batch paths must agree.
        let batch: Vec<(NodeId, &WorkerMsg)> =
            cases.iter().map(|(from, msg, _)| (*from, msg)).collect();
        let batch_verdicts = PreVerify::<WorkerMsg>::check_batch(&pv, &batch);
        for ((from, msg, expected), got) in cases.iter().zip(batch_verdicts) {
            assert_eq!(got, *expected, "batch verdict for {msg:?} from {from}");
            assert_eq!(
                PreVerify::<WorkerMsg>::check(&pv, *from, msg),
                *expected,
                "single verdict for {msg:?}"
            );
        }
    }

    #[test]
    fn verdicts_seed_the_signature_memo() {
        let ctx = ctx();
        let pv = FloPreVerifier::new(&ctx);
        let good = signed_header(&ctx, 1, &[]);
        let msg = WorkerMsg::Header {
            header: good.clone(),
        };
        assert_eq!(
            PreVerify::<WorkerMsg>::check(&pv, NodeId(1), &msg),
            Verdict::Forward
        );
        // The memo on the *message's* header value is seeded...
        let WorkerMsg::Header { header } = &msg else {
            unreachable!()
        };
        assert_eq!(header.sig_cache().get(), Some(true));
        // ...so the loop-side check is a cache read (a panicking provider
        // proves no re-verification happens).
        struct NoVerify;
        impl fireledger_crypto::CryptoProvider for NoVerify {
            fn sign(&self, _: NodeId, _: &[u8]) -> Signature {
                unreachable!()
            }
            fn verify(&self, _: NodeId, _: &[u8], _: &Signature) -> bool {
                panic!("pre-verified header must not be re-verified")
            }
            fn cluster_size(&self) -> usize {
                4
            }
            fn cost_model(&self) -> fireledger_crypto::CostModel {
                fireledger_crypto::CostModel::free()
            }
            fn scheme(&self) -> &'static str {
                "no-verify"
            }
        }
        assert!(verify_header_cached(&NoVerify, header));
    }
}
