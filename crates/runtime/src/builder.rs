//! Cluster assembly: one way to build any protocol cluster.
//!
//! [`ClusterBuilder`] replaces the per-protocol `build_cluster`-style
//! constructors that used to be scattered across the workspace. It owns the
//! pieces every cluster needs — [`ProtocolParams`], a key directory, a
//! validity predicate, and a per-node [`NodeRole`] map — and asks the
//! protocol, through the [`ClusterProtocol`] trait, to construct each node.
//! The same builder value is consumed identically by both runtimes (see
//! [`crate::Runtime`]).

use crate::preverify::FloPreVerifier;
use fireledger::{
    AcceptAll, ClusterNode, EquivocatingNode, FloNode, SharedValidity, SilentProposerNode, Worker,
};
use fireledger_baselines::{BftSmartNode, HotStuffNode, PbftNode};
use fireledger_crypto::{CryptoPool, SharedCrypto, SimKeyStore};
use fireledger_exec::{ExecConfig, ExecShared, ExecStage};
use fireledger_net::PreVerify;
use fireledger_store::{FsyncPolicy, NodeStore, RecoveredState};
use fireledger_types::{
    Error, NodeId, Protocol, ProtocolParams, Result, WireCodec, WireSize, WorkerId,
};
use std::fmt;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The behaviour assigned to one node of a cluster.
///
/// Byzantine behaviours are *roles*, not fault plans — they change what a
/// node says, not what the network does — and compose freely with any
/// [`FaultPlan`](fireledger_types::FaultPlan). The two catalog snippets of
/// `docs/SCENARIOS.md`:
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use std::time::Duration;
///
/// // Silent proposer: every one of its turns forces a timeout + fallback.
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let cluster = ClusterBuilder::<FloCluster>::new(params)
///     .with_role(NodeId(3), NodeRole::SilentProposer);
/// let scenario = Scenario::new("silent").ideal().run_for(Duration::from_secs(2));
/// let report = Simulator.run(&cluster, &scenario).unwrap();
/// assert!(report.tps > 0.0);
/// ```
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use std::time::Duration;
///
/// // Equivocating proposer: chain validation catches the fork and the
/// // recovery procedure re-synchronizes.
/// let params = ProtocolParams::new(4).with_batch_size(8).with_tx_size(64);
/// let cluster = ClusterBuilder::<FloCluster>::new(params)
///     .with_role(NodeId(3), NodeRole::Equivocate);
/// let scenario = Scenario::new("byz").ideal().run_for(Duration::from_secs(2));
/// let report = Simulator.run(&cluster, &scenario).unwrap();
/// assert!(report.recoveries_per_sec > 0.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub enum NodeRole {
    /// An honest node that follows the protocol.
    #[default]
    Correct,
    /// An honest node that crashes (stops participating) at the given offset
    /// from the start of the run. The crash itself is enacted by the runtime.
    CrashAt(Duration),
    /// A Byzantine node that equivocates on every block it proposes (§7.4.2).
    Equivocate,
    /// A Byzantine node that participates in voting but never disseminates
    /// its own blocks, forcing a timeout + fallback on each of its turns.
    SilentProposer,
}

impl NodeRole {
    /// True for the Byzantine variants that require protocol-level support.
    pub fn is_byzantine(&self) -> bool {
        matches!(self, NodeRole::Equivocate | NodeRole::SilentProposer)
    }

    /// True for any role other than [`NodeRole::Correct`].
    pub fn is_faulty(&self) -> bool {
        !matches!(self, NodeRole::Correct)
    }
}

/// Everything a protocol needs to construct one node.
pub struct BuildContext {
    /// Protocol parameters shared by the whole cluster.
    pub params: ProtocolParams,
    /// The cluster key directory.
    pub crypto: SharedCrypto,
    /// The cluster's batch/parallel crypto executor (width set by
    /// [`ClusterBuilder::crypto_threads`]; always inline when the cluster
    /// is built for the simulator).
    pub pool: CryptoPool,
    /// The external validity predicate (protocols without external validity
    /// ignore it).
    pub validity: SharedValidity,
}

/// A protocol whose clusters [`ClusterBuilder`] can assemble.
///
/// Implemented by every protocol of the paper's experiment matrix:
///
/// | implementor       | protocol                                   |
/// |-------------------|--------------------------------------------|
/// | [`FloCluster`]    | FireLedger / FLO (ω workers per node)      |
/// | [`Worker`]        | a single WRB/OBBC FireLedger instance      |
/// | [`PbftNode`]      | classical PBFT                             |
/// | [`HotStuffNode`]  | chained HotStuff                           |
/// | [`BftSmartNode`]  | BFT-SMaRt-style pipelined ordering         |
pub trait ClusterProtocol: Protocol + Sized + Send + 'static
where
    Self::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    /// Short machine-readable protocol name, used in [`crate::RunReport`]s.
    const NAME: &'static str;

    /// Constructs the node `me` with the given role.
    ///
    /// Returns [`Error::Config`] when the protocol has no implementation of
    /// the requested Byzantine behaviour — a mis-configured experiment should
    /// fail loudly, not silently run an honest node.
    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self>;

    /// Constructs the node `me` bound to a durable store, rebuilding its
    /// state from whatever the store replayed. Called instead of
    /// [`ClusterProtocol::build_node`] when the cluster was configured with
    /// [`ClusterBuilder::with_store`] — both at first build (the store is
    /// empty, the node starts fresh but persisting) and on a
    /// [`fireledger_types::KillFault`] restart (the node resumes from its
    /// recovered prefix).
    ///
    /// The default ignores the store and builds a volatile node, which is
    /// correct for protocols without a persistence implementation: they run
    /// unchanged under a store-configured cluster, they just do not survive
    /// kills.
    fn build_durable_node(
        ctx: &BuildContext,
        me: NodeId,
        role: &NodeRole,
        store: Arc<NodeStore>,
        recovered: &RecoveredState,
    ) -> Result<Self> {
        let _ = (store, recovered);
        Self::build_node(ctx, me, role)
    }

    /// The protocol's off-loop message verification hook, if it has one.
    ///
    /// Real-time runtimes install it as a per-node pre-verify stage when
    /// the cluster was built with [`ClusterBuilder::crypto_threads`] ≥ 2
    /// (see [`fireledger_net::PreVerify`]). `None` — the default — means
    /// the protocol validates everything on its own loop.
    fn pre_verifier(_ctx: &BuildContext) -> Option<Arc<dyn PreVerify<Self::Msg>>> {
        None
    }

    /// Called by a real-time runtime on the freshly built nodes *after*
    /// deciding to install this protocol's pre-verify stage, so nodes may
    /// skip in-loop re-validation of work the stage already performed.
    /// Never called for simulator runs. The default does nothing.
    fn enable_preverified_ingress(_nodes: &mut [Self]) {}

    /// Installs the cluster's execution shards on this (freshly built)
    /// node — one [`ExecShared`] per worker stream. Called when the cluster
    /// was configured with [`ClusterBuilder::with_execution`], after
    /// construction (and after any restore-from-disk, though the hooks are
    /// order-tolerant). The default does nothing, which is correct for
    /// protocols without an execution pipeline: they order transactions but
    /// never execute them, exactly as before.
    fn install_execution(&mut self, _shards: &[ExecShared]) {}

    /// Puts this (freshly built) node into state-sync mode: on start it
    /// probes the cluster's tips and range-fetches whatever prefix it is
    /// missing before participating in consensus. The runtimes call it on a
    /// node rebuilt for a [`ClusterBuilder::with_late_join`] entry, so a
    /// node constructed mid-run catches up through the block-fetch
    /// sub-protocol instead of stalling. The default does nothing — correct
    /// for protocols without a synchronizer, which simply rejoin blind.
    fn begin_state_sync(&mut self) {}
}

fn unsupported_role(name: &str, role: &NodeRole) -> Error {
    Error::Config(format!(
        "protocol {name} does not implement the {role:?} role"
    ))
}

/// The FireLedger/FLO cluster node type ([`ClusterNode`] under a name that
/// reads naturally in `ClusterBuilder::<FloCluster>` turbofish position).
pub type FloCluster = ClusterNode;

impl ClusterProtocol for ClusterNode {
    const NAME: &'static str = "flo";

    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self> {
        let mut flo = FloNode::new(
            me,
            ctx.params.clone(),
            ctx.crypto.clone(),
            ctx.validity.clone(),
        );
        flo.set_crypto_pool(ctx.pool.clone());
        Ok(match role {
            NodeRole::Correct | NodeRole::CrashAt(_) => ClusterNode::Honest(flo),
            NodeRole::Equivocate => {
                ClusterNode::Equivocating(EquivocatingNode::new(flo, ctx.crypto.clone()))
            }
            NodeRole::SilentProposer => ClusterNode::Silent(SilentProposerNode::new(flo)),
        })
    }

    fn build_durable_node(
        ctx: &BuildContext,
        me: NodeId,
        role: &NodeRole,
        store: Arc<NodeStore>,
        recovered: &RecoveredState,
    ) -> Result<Self> {
        // Byzantine wrappers stay volatile: their misbehaviour is process
        // state by design, and recovering an equivocator from disk is not a
        // scenario the paper (or any sane deployment) contemplates.
        if role.is_byzantine() {
            return Self::build_node(ctx, me, role);
        }
        let mut flo = FloNode::recover_from_disk(
            me,
            ctx.params.clone(),
            ctx.crypto.clone(),
            ctx.validity.clone(),
            store,
            recovered,
        );
        flo.set_crypto_pool(ctx.pool.clone());
        Ok(ClusterNode::Honest(flo))
    }

    fn pre_verifier(ctx: &BuildContext) -> Option<Arc<dyn PreVerify<Self::Msg>>> {
        Some(Arc::new(FloPreVerifier::new(ctx)))
    }

    fn enable_preverified_ingress(nodes: &mut [Self]) {
        for node in nodes {
            node.flo_mut().set_preverified_ingress(true);
        }
    }

    fn install_execution(&mut self, shards: &[ExecShared]) {
        self.flo_mut().set_exec(shards);
    }

    fn begin_state_sync(&mut self) {
        self.flo_mut().begin_sync();
    }
}

impl ClusterProtocol for Worker {
    const NAME: &'static str = "wrb-obbc";

    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self> {
        if role.is_byzantine() {
            return Err(unsupported_role(Self::NAME, role));
        }
        let mut worker = Worker::new(
            me,
            WorkerId(0),
            ctx.params.clone(),
            ctx.crypto.clone(),
            ctx.validity.clone(),
        );
        worker.set_crypto_pool(ctx.pool.clone());
        Ok(worker)
    }

    fn pre_verifier(ctx: &BuildContext) -> Option<Arc<dyn PreVerify<Self::Msg>>> {
        Some(Arc::new(FloPreVerifier::new(ctx)))
    }

    fn enable_preverified_ingress(nodes: &mut [Self]) {
        for node in nodes {
            node.set_preverified_ingress(true);
        }
    }

    fn install_execution(&mut self, shards: &[ExecShared]) {
        self.set_exec(shards[0].clone());
    }

    fn begin_state_sync(&mut self) {
        Worker::begin_sync(self);
    }
}

impl ClusterProtocol for PbftNode {
    const NAME: &'static str = "pbft";

    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self> {
        if role.is_byzantine() {
            return Err(unsupported_role(Self::NAME, role));
        }
        Ok(PbftNode::new(me, ctx.params.clone(), ctx.crypto.clone()))
    }
}

impl ClusterProtocol for HotStuffNode {
    const NAME: &'static str = "hotstuff";

    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self> {
        if role.is_byzantine() {
            return Err(unsupported_role(Self::NAME, role));
        }
        Ok(HotStuffNode::new(
            me,
            ctx.params.clone(),
            ctx.crypto.clone(),
        ))
    }
}

impl ClusterProtocol for BftSmartNode {
    const NAME: &'static str = "bft-smart";

    fn build_node(ctx: &BuildContext, me: NodeId, role: &NodeRole) -> Result<Self> {
        if role.is_byzantine() {
            return Err(unsupported_role(Self::NAME, role));
        }
        Ok(BftSmartNode::new(
            me,
            ctx.params.clone(),
            ctx.crypto.clone(),
        ))
    }
}

/// Assembles a cluster of any [`ClusterProtocol`].
///
/// ```
/// use fireledger_runtime::prelude::*;
///
/// let params = ProtocolParams::new(4).with_batch_size(10);
/// let nodes = ClusterBuilder::<FloCluster>::new(params)
///     .with_seed(7)
///     .with_role(NodeId(3), NodeRole::Equivocate)
///     .build()
///     .unwrap();
/// assert_eq!(nodes.len(), 4);
/// ```
pub struct ClusterBuilder<P> {
    params: ProtocolParams,
    seed: u64,
    crypto: Option<SharedCrypto>,
    validity: SharedValidity,
    roles: Vec<NodeRole>,
    crypto_threads: usize,
    store: Option<(PathBuf, FsyncPolicy)>,
    late_join: Option<(NodeId, u64)>,
    exec: Option<ExecConfig>,
    tcp_engine: fireledger_net::TcpEngine,
    /// Per-node execution shards (one per worker stream), created lazily
    /// once per builder and shared by `build`, the rebuild hook and the
    /// report assembly — so a node rebuilt after a kill keeps its pre-kill
    /// engine identity (reset + replay) and the report reads the same
    /// engines the run fed.
    exec_shards: std::sync::OnceLock<Vec<Vec<ExecShared>>>,
    _protocol: PhantomData<fn() -> P>,
}

impl<P> ClusterBuilder<P>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    /// Starts a builder for an `params.n()`-node cluster with simulated
    /// (cheap) signatures, the accept-all validity predicate, and every node
    /// correct.
    pub fn new(params: ProtocolParams) -> Self {
        let n = params.n();
        ClusterBuilder {
            params,
            seed: 1,
            crypto: None,
            validity: std::sync::Arc::new(AcceptAll),
            roles: vec![NodeRole::Correct; n],
            crypto_threads: 1,
            store: None,
            late_join: None,
            exec: None,
            tcp_engine: fireledger_net::TcpEngine::default(),
            exec_shards: std::sync::OnceLock::new(),
            _protocol: PhantomData,
        }
    }

    /// Sets the TCP runtime's reactor-pool size: `k` nonblocking reactor
    /// threads multiplex the whole socket mesh (`k = 0` selects the
    /// documented default, [`fireledger_net::DEFAULT_REACTOR_THREADS`]).
    /// Only the `Tcp` runtime reads this — the simulator has no sockets and
    /// the threaded runtime's links are in-process channels.
    pub fn reactor_threads(mut self, k: usize) -> Self {
        self.tcp_engine = fireledger_net::TcpEngine::Reactor { threads: k };
        self
    }

    /// Pins the TCP runtime's socket engine explicitly — the escape hatch
    /// the before/after scaling benchmarks use to run the legacy
    /// thread-per-peer engine. Prefer [`ClusterBuilder::reactor_threads`].
    pub fn with_tcp_engine(mut self, engine: fireledger_net::TcpEngine) -> Self {
        self.tcp_engine = engine;
        self
    }

    /// The socket engine the TCP runtime will spawn.
    pub fn tcp_engine(&self) -> fireledger_net::TcpEngine {
        self.tcp_engine
    }

    /// Enables the pipelined execution engine (deterministic account/KV
    /// state machine, `fireledger-exec`) on every node: each worker stream
    /// gets an independent executor fed at the commit point, the node's own
    /// headers carry the lagged execution state root (WIRE_FORMAT.md §12),
    /// and delivered headers' claimed roots are cross-checked against local
    /// execution. Works identically on all three runtimes — execution runs
    /// inline at the deterministic delivery points under the simulator and
    /// on dedicated stage threads under the real-time runtimes. Protocols
    /// without an execution hook (the baselines) accept the configuration
    /// and simply keep ordering opaque payloads.
    ///
    /// The disjoint-workload scenario of docs/SCENARIOS.md: saturated
    /// *executable* filler ([`ProtocolParams::with_fill_ops`]) with
    /// `conflict_pct: 0`, so every conflict component is a single
    /// transaction — the partitioned apply's best case — and block
    /// contents are a pure function of the filler stream, which is what
    /// makes state roots comparable across runtimes at all:
    ///
    /// ```
    /// use fireledger_runtime::prelude::*;
    /// use std::time::Duration;
    ///
    /// let params = ProtocolParams::new(4)
    ///     .with_batch_size(8)
    ///     .with_tx_size(64)
    ///     .with_fill_ops(FillOps { accounts: 64, conflict_pct: 0 });
    /// let cluster = ClusterBuilder::<FloCluster>::new(params)
    ///     .with_execution(ExecConfig::with_genesis(64, 1_000_000));
    /// let scenario = Scenario::new("exec-disjoint")
    ///     .ideal()
    ///     .run_for(Duration::from_millis(400))
    ///     .with_warmup(Duration::ZERO);
    /// let report = Simulator.run(&cluster, &scenario).unwrap();
    /// assert!(report.execution.enabled);
    /// assert!(report.execution.applied_transitions > 0);
    /// assert_eq!(report.execution.root_mismatches, 0);
    /// ```
    pub fn with_execution(mut self, config: ExecConfig) -> Self {
        self.exec = Some(config);
        self
    }

    /// The execution configuration, when [`ClusterBuilder::with_execution`]
    /// set one.
    pub fn execution(&self) -> Option<&ExecConfig> {
        self.exec.as_ref()
    }

    /// The cluster's execution shards, `exec_shards()[node][worker]`,
    /// created on first use. `None` when execution is not enabled.
    pub fn exec_shards(&self) -> Option<&Vec<Vec<ExecShared>>> {
        let cfg = self.exec.as_ref()?;
        Some(self.exec_shards.get_or_init(|| {
            let pool = CryptoPool::new(self.crypto(), self.crypto_threads);
            (0..self.params.n())
                .map(|_| {
                    (0..self.params.workers)
                        .map(|_| ExecShared::new(cfg, pool.clone()))
                        .collect()
                })
                .collect()
        }))
    }

    /// Spawns one execution stage thread per shard, so delivered blocks are
    /// executed *off* the consensus loop. Real-time runtimes call this once
    /// per run and hold the stages for its duration (they drain and join on
    /// drop); the simulator never does — its execution stays inline at the
    /// deterministic delivery points. Empty without
    /// [`ClusterBuilder::with_execution`].
    pub fn spawn_exec_stages(&self) -> Vec<ExecStage> {
        self.exec_shards()
            .map(|all| {
                all.iter()
                    .flatten()
                    .map(fireledger_exec::spawn_stage)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Starts `node` mid-run instead of at genesis: the node stays dormant
    /// (off the network, no protocol state) until the rest of the cluster
    /// has delivered `at_round` blocks, then enters in state-sync mode and
    /// range-fetches the ledger it missed (see `fireledger::Synchronizer`).
    ///
    /// Every runtime honours the entry: the simulator gates the node behind
    /// a `LateJoinAdversary` and rebuilds it at the join point; the
    /// real-time runtimes spawn its thread dormant and restart it through
    /// the rebuild hook. A dormant node counts against the cluster's fault
    /// budget like any other fault, and is excluded from rate metrics.
    ///
    /// ```
    /// use fireledger_runtime::prelude::*;
    /// use std::time::Duration;
    ///
    /// let params = ProtocolParams::new(4)
    ///     .with_batch_size(8)
    ///     .with_tx_size(64)
    ///     .with_base_timeout(Duration::from_millis(20));
    /// let scenario = Scenario::new("late-join")
    ///     .ideal()
    ///     .run_for(Duration::from_secs(2))
    ///     .with_warmup(Duration::ZERO);
    /// let cluster = ClusterBuilder::<FloCluster>::new(params)
    ///     .with_late_join(NodeId(3), 200); // join once node 0 has 200 blocks
    /// let (report, deliveries) = Simulator.run_full(&cluster, &scenario).unwrap();
    /// assert!(report.tps > 0.0);
    /// // The joiner fetched past its join point, byte-identical to the cluster.
    /// assert!(deliveries[3].len() > 200);
    /// let common = deliveries[0].len().min(deliveries[3].len());
    /// assert_eq!(deliveries[0][..common], deliveries[3][..common]);
    /// ```
    ///
    /// # Panics
    /// Panics if `node` is outside the cluster.
    pub fn with_late_join(mut self, node: NodeId, at_round: u64) -> Self {
        assert!(
            node.as_usize() < self.roles.len(),
            "late-join node {node} outside the cluster"
        );
        self.late_join = Some((node, at_round));
        self
    }

    /// The `(node, at_round)` late-join entry, when
    /// [`ClusterBuilder::with_late_join`] set one.
    pub fn late_join(&self) -> Option<(NodeId, u64)> {
        self.late_join
    }

    /// Gives every node a durable store under `dir` (node `i` persists into
    /// `dir/node-i`), syncing per `policy`.
    ///
    /// With a store configured, each node appends its committed blocks to a
    /// segmented block log and its not-yet-committed protocol state to a
    /// consensus WAL (see the `fireledger-store` crate), and a
    /// [`fireledger_types::KillFault`] in the scenario's fault plan can
    /// destroy the node's process state outright and rebuild it from disk
    /// mid-run. Protocols without a persistence implementation accept the
    /// configuration and simply stay volatile (see
    /// [`ClusterProtocol::build_durable_node`]).
    pub fn with_store(mut self, dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Self {
        self.store = Some((dir.into(), policy));
        self
    }

    /// Width of the cluster's parallel crypto pipeline (default 1 =
    /// everything inline, the exact pre-pipeline behaviour).
    ///
    /// With `threads` ≥ 2, nodes run batchable crypto — block-body merkle
    /// roots, recovery-version and panic-proof signature batches — through
    /// a [`CryptoPool`] of that width (clamped to the machine's available
    /// parallelism), and the real-time runtimes additionally install the
    /// protocol's [`PreVerify`] stage so inbound messages are verified
    /// *off* the consensus loop.
    ///
    /// The **simulator ignores the width**: it always executes crypto
    /// inline. Simulated time already charges the modelled cost of every
    /// operation, and determinism requires a run's results (and its
    /// RunReport JSON) to be independent of host thread counts — so the
    /// knob changes real-time wall-clock performance only, never any
    /// protocol outcome.
    pub fn crypto_threads(mut self, threads: usize) -> Self {
        self.crypto_threads = threads.max(1);
        self
    }

    /// Seed for deterministic key derivation (and, by convention, for the
    /// scenario driving this cluster).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an explicit crypto provider instead of the seed-derived
    /// [`SimKeyStore`].
    pub fn with_crypto(mut self, crypto: SharedCrypto) -> Self {
        self.crypto = Some(crypto);
        self
    }

    /// Uses an explicit external validity predicate.
    pub fn with_validity(mut self, validity: SharedValidity) -> Self {
        self.validity = validity;
        self
    }

    /// Assigns `role` to `node`.
    ///
    /// # Panics
    /// Panics if `node` is outside the cluster.
    pub fn with_role(mut self, node: NodeId, role: NodeRole) -> Self {
        self.roles[node.as_usize()] = role;
        self
    }

    /// Assigns `role` to the last `k` nodes — the shape of the paper's fault
    /// experiments (§7.4), which always fail the tail of the cluster.
    pub fn with_last_k(mut self, k: usize, role: NodeRole) -> Self {
        let n = self.roles.len();
        for i in n.saturating_sub(k)..n {
            self.roles[i] = role.clone();
        }
        self
    }

    /// The protocol parameters this builder was created with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The builder's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The role map.
    pub fn roles(&self) -> &[NodeRole] {
        &self.roles
    }

    /// The nodes whose role is [`NodeRole::Correct`] — the set experiment
    /// metrics average over.
    pub fn correct_nodes(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_faulty())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// The `(node, offset)` pairs of all [`NodeRole::CrashAt`] roles.
    pub fn crash_times(&self) -> Vec<(NodeId, Duration)> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                NodeRole::CrashAt(at) => Some((NodeId(i as u32), *at)),
                _ => None,
            })
            .collect()
    }

    /// The crypto provider the built cluster will share.
    pub fn crypto(&self) -> SharedCrypto {
        self.crypto
            .clone()
            .unwrap_or_else(|| SimKeyStore::generate(self.params.n(), self.seed).shared())
    }

    /// The store configuration, if [`ClusterBuilder::with_store`] set one.
    pub fn store_config(&self) -> Option<(&Path, FsyncPolicy)> {
        self.store
            .as_ref()
            .map(|(dir, policy)| (dir.as_path(), *policy))
    }

    /// The directory node `node` persists into (`dir/node-<i>`), when a
    /// store is configured.
    pub fn node_store_dir(&self, node: NodeId) -> Option<PathBuf> {
        self.store
            .as_ref()
            .map(|(dir, _)| dir.join(format!("node-{}", node.0)))
    }

    /// The run report's `durability` value: `"none"` without a store,
    /// `"fsync-<label>"` (e.g. `fsync-always`, `fsync-every64`, `fsync-os`)
    /// with one.
    pub fn durability_label(&self) -> String {
        match &self.store {
            None => "none".to_string(),
            Some((_, policy)) => format!("fsync-{}", policy.label()),
        }
    }

    /// Builds the cluster: one node per index, with its assigned role.
    ///
    /// # The fault-budget invariant
    ///
    /// The combined number of faulty roles — [`NodeRole::CrashAt`] plus the
    /// Byzantine variants — must not exceed the cluster's tolerance
    /// `f = ⌊(n − 1) / 3⌋`. BFT safety and liveness are only guaranteed up
    /// to `f` faults, so a role map that schedules more is a mis-configured
    /// experiment whose results would be meaningless; it fails here with
    /// [`Error::FaultBudgetExceeded`] instead of silently running.
    /// (Scenario-level crash events and fault-plan node faults are validated
    /// against the same budget by the runtimes, which see both sides.)
    pub fn build(&self) -> Result<Vec<P>> {
        let crypto = self.crypto();
        let pool = CryptoPool::new(crypto.clone(), self.crypto_threads);
        self.build_with_pool(pool)
    }

    /// [`ClusterBuilder::build`] with the cluster forced onto a fully
    /// inline crypto pool, regardless of [`ClusterBuilder::crypto_threads`].
    /// The simulator builds through this so its results (and allocation
    /// traces) stay bit-identical across pool widths.
    pub fn build_inline(&self) -> Result<Vec<P>> {
        self.build_with_pool(CryptoPool::inline(self.crypto()))
    }

    fn build_with_pool(&self, pool: CryptoPool) -> Result<Vec<P>> {
        let faulty = self.roles.iter().filter(|r| r.is_faulty()).count();
        let f = self.params.f();
        if faulty > f {
            return Err(Error::FaultBudgetExceeded { faulty, f });
        }
        let ctx = BuildContext {
            params: self.params.clone(),
            crypto: pool.crypto().clone(),
            pool,
            validity: self.validity.clone(),
        };
        // A builder reused across runs must hand each run pristine engines:
        // the shards are cached on the builder (so rebuild hooks and the
        // report see the same Arcs), so any state a previous run left in
        // them is cleared here.
        if let Some(all) = self.exec_shards() {
            for shard in all.iter().flatten() {
                let stats = shard.stats();
                if stats.executed_blocks > 0 || stats.root_checks > 0 {
                    shard.reset();
                }
            }
        }
        (0..self.params.n())
            .map(|i| {
                let me = NodeId(i as u32);
                let mut node = match self.node_store_dir(me) {
                    None => P::build_node(&ctx, me, &self.roles[i]),
                    Some(dir) => {
                        let (store, recovered) = NodeStore::open(&dir, self.store_policy())
                            .map_err(|e| Error::Io(format!("store open {}: {e}", dir.display())))?;
                        P::build_durable_node(&ctx, me, &self.roles[i], Arc::new(store), &recovered)
                    }
                }?;
                if let Some(all) = self.exec_shards() {
                    node.install_execution(&all[i]);
                }
                Ok(node)
            })
            .collect()
    }

    fn store_policy(&self) -> FsyncPolicy {
        self.store
            .as_ref()
            .map(|(_, p)| *p)
            .unwrap_or(FsyncPolicy::OsDefault)
    }

    /// The node-rebuild hook the runtimes install for
    /// [`fireledger_types::KillFault`] restarts: given a node id, it reopens
    /// the node's store (when one is configured), replays it, and constructs
    /// the node from the recovered state. Without a store the hook builds a
    /// fresh volatile node — a kill without a disk is total amnesia, and the
    /// restarted node rejoins with an empty ledger.
    ///
    /// The hook runs on node threads (real-time runtimes) or mid-simulation,
    /// so it cannot return an error; configuration problems were already
    /// surfaced by the initial [`ClusterBuilder::build`], and a store that
    /// fails to *open* on restart degrades to the amnesiac fresh build
    /// rather than taking the thread down.
    pub fn rebuilder(&self) -> Arc<dyn Fn(NodeId) -> P + Send + Sync> {
        let crypto = self.crypto();
        // Inline crypto for rebuilt nodes: correct on every runtime (the
        // pool only affects wall-clock performance), and the simulator
        // requires it for determinism.
        let pool = CryptoPool::inline(crypto.clone());
        let ctx = BuildContext {
            params: self.params.clone(),
            crypto,
            pool,
            validity: self.validity.clone(),
        };
        let roles = self.roles.clone();
        let store = self.store.clone();
        let exec_shards = self.exec_shards().cloned();
        Arc::new(move |me: NodeId| {
            let role = roles.get(me.as_usize()).cloned().unwrap_or_default();
            let durable = store.as_ref().and_then(|(dir, policy)| {
                let dir = dir.join(format!("node-{}", me.0));
                NodeStore::open(&dir, *policy).ok()
            });
            let mut node = match durable {
                Some((store, recovered)) => {
                    P::build_durable_node(&ctx, me, &role, Arc::new(store), &recovered)
                }
                None => P::build_node(&ctx, me, &role),
            }
            .expect("rebuilding a node that built at spawn time cannot fail");
            if let Some(shards) = &exec_shards {
                // A kill destroys process state: the node's engines restart
                // from genesis and re-execute whatever prefix the disk (or
                // state sync) can prove — `install_execution` re-feeds any
                // restored definite prefix after the reset.
                let mine = &shards[me.as_usize()];
                for shard in mine {
                    shard.reset();
                }
                node.install_execution(mine);
            }
            node
        })
    }

    /// The protocol's pre-verify hook for this cluster, when the pipeline
    /// is enabled (`crypto_threads` ≥ 2) and the protocol has one. The
    /// real-time runtimes install it as each node's ingress stage.
    pub fn pre_verifier(&self) -> Option<Arc<dyn PreVerify<P::Msg>>> {
        if self.crypto_threads < 2 {
            return None;
        }
        let crypto = self.crypto();
        let ctx = BuildContext {
            params: self.params.clone(),
            crypto: crypto.clone(),
            pool: CryptoPool::new(crypto, self.crypto_threads),
            validity: self.validity.clone(),
        };
        P::pre_verifier(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Protocol;

    fn params(n: usize) -> ProtocolParams {
        ProtocolParams::new(n).with_batch_size(4).with_tx_size(32)
    }

    #[test]
    fn builds_every_protocol_of_the_matrix() {
        let p = params(4);
        assert_eq!(
            ClusterBuilder::<FloCluster>::new(p.clone())
                .build()
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            ClusterBuilder::<Worker>::new(p.clone())
                .build()
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            ClusterBuilder::<PbftNode>::new(p.clone())
                .build()
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            ClusterBuilder::<HotStuffNode>::new(p.clone())
                .build()
                .unwrap()
                .len(),
            4
        );
        assert_eq!(
            ClusterBuilder::<BftSmartNode>::new(p)
                .build()
                .unwrap()
                .len(),
            4
        );
    }

    #[test]
    fn node_ids_are_sequential() {
        let nodes = ClusterBuilder::<FloCluster>::new(params(7))
            .build()
            .unwrap();
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.node_id(), NodeId(i as u32));
        }
    }

    #[test]
    fn byzantine_roles_wrap_flo_nodes() {
        // n = 7 tolerates f = 2, so two Byzantine roles stay inside the
        // fault budget `build()` enforces.
        let nodes = ClusterBuilder::<FloCluster>::new(params(7))
            .with_role(NodeId(5), NodeRole::SilentProposer)
            .with_role(NodeId(6), NodeRole::Equivocate)
            .build()
            .unwrap();
        assert!(matches!(nodes[0], ClusterNode::Honest(_)));
        assert!(matches!(nodes[5], ClusterNode::Silent(_)));
        assert!(matches!(nodes[6], ClusterNode::Equivocating(_)));
    }

    #[test]
    fn byzantine_roles_are_rejected_by_protocols_without_them() {
        let err = ClusterBuilder::<HotStuffNode>::new(params(4))
            .with_role(NodeId(3), NodeRole::Equivocate)
            .build()
            .err()
            .expect("equivocation must be rejected");
        assert!(err.to_string().contains("hotstuff"));
        assert!(ClusterBuilder::<PbftNode>::new(params(4))
            .with_role(NodeId(0), NodeRole::SilentProposer)
            .build()
            .is_err());
    }

    #[test]
    fn crash_roles_build_honest_nodes_and_report_times() {
        let b = ClusterBuilder::<FloCluster>::new(params(4))
            .with_role(NodeId(3), NodeRole::CrashAt(Duration::from_millis(100)));
        let nodes = b.build().unwrap();
        assert!(matches!(nodes[3], ClusterNode::Honest(_)));
        assert_eq!(
            b.crash_times(),
            vec![(NodeId(3), Duration::from_millis(100))]
        );
        assert_eq!(b.correct_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fault_budget_over_f_is_a_typed_build_error() {
        // n = 4 tolerates f = 1: one crash role is fine, a second faulty
        // role of either flavour busts the budget.
        let ok = ClusterBuilder::<FloCluster>::new(params(4))
            .with_role(NodeId(3), NodeRole::CrashAt(Duration::ZERO));
        assert!(ok.build().is_ok());

        let crash_plus_byz = ClusterBuilder::<FloCluster>::new(params(4))
            .with_role(NodeId(2), NodeRole::CrashAt(Duration::ZERO))
            .with_role(NodeId(3), NodeRole::Equivocate);
        match crash_plus_byz.build() {
            Err(Error::FaultBudgetExceeded { faulty, f }) => {
                assert_eq!((faulty, f), (2, 1));
            }
            Err(other) => panic!("expected FaultBudgetExceeded, got {other:?}"),
            Ok(_) => panic!("over-budget role map must not build"),
        }

        let two_crashes = ClusterBuilder::<FloCluster>::new(params(4))
            .with_last_k(2, NodeRole::CrashAt(Duration::ZERO));
        assert!(matches!(
            two_crashes.build(),
            Err(Error::FaultBudgetExceeded { faulty: 2, f: 1 })
        ));

        // n = 7 tolerates f = 2: crash + equivocate together stay legal.
        let n7 = ClusterBuilder::<FloCluster>::new(params(7))
            .with_role(NodeId(5), NodeRole::CrashAt(Duration::ZERO))
            .with_role(NodeId(6), NodeRole::Equivocate);
        assert!(n7.build().is_ok());
    }

    #[test]
    fn with_last_k_marks_the_tail() {
        let b = ClusterBuilder::<FloCluster>::new(params(7)).with_last_k(2, NodeRole::Equivocate);
        assert_eq!(b.correct_nodes().len(), 5);
        assert!(b.roles()[5].is_byzantine());
        assert!(b.roles()[6].is_byzantine());
    }

    #[test]
    fn same_seed_same_keys() {
        let a = ClusterBuilder::<FloCluster>::new(params(4))
            .with_seed(9)
            .crypto();
        let b = ClusterBuilder::<FloCluster>::new(params(4))
            .with_seed(9)
            .crypto();
        let sig_a = a.sign(NodeId(0), b"x");
        assert!(b.verify(NodeId(0), b"x", &sig_a));
    }
}
