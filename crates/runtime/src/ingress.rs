//! The ingress soak harness: an open-loop client fleet driving the §11 RPC
//! sub-protocol against a cluster's admission gates.
//!
//! Three pieces, each runtime-agnostic:
//!
//! * [`IngressLoad`] — the scenario knob ([`crate::Scenario::with_ingress`]):
//!   client count, think time, payload size, retry budget and the
//!   [`AdmissionConfig`] every node's gate runs.
//! * [`ClusterIngress`] — one [`IngressGate`] per node behind a single
//!   [`RpcHandler`], so the TCP runtime's socket listeners, the threaded
//!   runtime's channel port and the simulator's sliced driver all dispatch
//!   into identical admission state.
//! * [`ClientFleet`] — a deterministic, sans-IO fleet of open-loop clients:
//!   every client submits on a seeded lane mix, backs off with jittered
//!   exponential delays on retryable refusals ([`SubmitStatus::Busy`] /
//!   [`SubmitStatus::RateLimited`]), fails over to the next node on
//!   [`SubmitStatus::Syncing`], and accounts every accepted transaction
//!   until it is observed committed. The fleet never reads a clock — the
//!   driver passes `now_nanos` — so the simulator replays it bit-identically.
//!
//! The accounting the soak exists for is **accepted-then-lost**: a
//! transaction the gate acked `Accepted` but no node ever delivered. Under
//! the supported fault plans (partitions, crash-recover pauses) that count
//! must end at zero — the admission pipeline's whole contract is that work
//! it cannot see through gets *refused*, visibly, instead of accepted and
//! dropped.

use fireledger::{AdmissionConfig, Availability, IngressGate};
use fireledger_net::{NodeStatus, RealtimeCluster, RpcHandler};
use fireledger_types::rpc::{Lane, RpcMsg, SubmitStatus};
use fireledger_types::{Delivery, NodeId, Transaction, TxOp};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::report::{IngressLaneReport, IngressReport};
use crate::scenario::Scenario;

/// Client-side retry ceiling on the per-attempt back-off delay.
const MAX_BACKOFF: Duration = Duration::from_millis(200);

/// Size of the shared hot account set a conflicting transfer credits
/// ([`PayloadKind::Transfers`]): small enough that conflicting transfers
/// genuinely collide in the executor's conflict partitioning.
const HOT_ACCOUNTS: u64 = 4;

/// What the client fleet puts inside each submitted transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// Zero-filled bytes of the load's `tx_size` — ordered and charged,
    /// executed as a no-op (`Receipt::Opaque`). The default.
    Opaque,
    /// §12.1 `Transfer` ops against the executor's genesis accounts, for
    /// exec-enabled clusters (`ClusterBuilder::with_execution` with at
    /// least `accounts` genesis accounts).
    ///
    /// Client *i* debits its private account `i mod accounts` with a
    /// fleet-tracked nonce. With probability `conflict_pct`% the transfer
    /// credits one of the `HOT_ACCOUNTS` (4) top accounts — a key conflict
    /// the parallel apply must serialize — otherwise it is a self-transfer,
    /// whose footprint stays inside the client's own account and conflicts
    /// with nobody. `tx_size` is ignored: an encoded transfer is 34 bytes.
    Transfers {
        /// Account id space (keep ≥ the client count so private accounts
        /// stay private, and ≤ the exec genesis account count so every
        /// account exists from round 0).
        accounts: u64,
        /// Percent (0–100) of transfers aimed at the hot account set.
        conflict_pct: u8,
    },
}

/// Open-loop ingress load riding on a [`Scenario`] (see
/// [`Scenario::with_ingress`]).
///
/// The snippet below is the `docs/SCENARIOS.md` "ingress under
/// partition-heal" entry — a client fleet submitting straight through a
/// split-and-heal, with the zero accepted-then-lost contract asserted on
/// the report:
///
/// ```
/// use fireledger_runtime::prelude::*;
/// use fireledger_runtime::catalog;
/// use std::time::Duration;
///
/// let plan = catalog::partition_heal(4, Duration::from_millis(300), Duration::from_millis(600));
/// let scenario = Scenario::new("ingress-soak")
///     .ideal()
///     .with_faults(plan)
///     .run_for(Duration::from_millis(1200))
///     .with_warmup(Duration::ZERO)
///     .with_ingress(IngressLoad::new(8, Duration::from_millis(10), 64));
/// let params = ProtocolParams::new(4)
///     .with_batch_size(8)
///     .with_tx_size(64)
///     .with_fill_blocks(false);
/// let report = Simulator
///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
///     .unwrap();
/// assert!(report.ingress.enabled);
/// assert_eq!(report.ingress.lost(), 0, "accepted work must commit");
/// assert_eq!(report.ingress.accepted(), report.ingress.committed());
/// ```
#[derive(Clone, Debug)]
pub struct IngressLoad {
    /// Number of open-loop clients.
    pub clients: usize,
    /// Mean think time between a client's submissions (±25% jitter).
    pub think_time: Duration,
    /// Transaction payload size in bytes.
    pub tx_size: usize,
    /// Retries a client spends on one submission before abandoning it.
    pub max_retries: u32,
    /// Tail of the run during which clients stop submitting, so everything
    /// accepted has time to commit before the loss accounting closes.
    pub drain: Duration,
    /// The admission policy installed on every node's gate.
    pub admission: AdmissionConfig,
    /// What each submitted transaction carries ([`PayloadKind::Opaque`] by
    /// default; [`PayloadKind::Transfers`] drives the execution engine).
    pub payload: PayloadKind,
}

impl IngressLoad {
    /// A fleet of `clients` submitting `tx_size`-byte payloads every
    /// `think_time` (default admission policy, 6 retries, 400 ms drain).
    pub fn new(clients: usize, think_time: Duration, tx_size: usize) -> Self {
        IngressLoad {
            clients,
            think_time,
            tx_size,
            max_retries: 6,
            drain: Duration::from_millis(400),
            admission: AdmissionConfig::default(),
            payload: PayloadKind::Opaque,
        }
    }

    /// Overrides what each submitted transaction carries.
    pub fn with_payload(mut self, payload: PayloadKind) -> Self {
        self.payload = payload;
        self
    }

    /// Overrides the admission policy.
    ///
    /// The snippet below is the `docs/SCENARIOS.md` "ingress-overload"
    /// entry — shrunken budgets against an aggressive fleet must produce
    /// typed sheds, never silent loss:
    ///
    /// ```
    /// use fireledger_runtime::prelude::*;
    /// use fireledger::AdmissionConfig;
    /// use std::time::Duration;
    ///
    /// let admission = AdmissionConfig {
    ///     capacity: 4,      // tiny per-lane queues
    ///     rate_per_sec: 50, // and a tight token bucket
    ///     burst: 5,
    ///     ..Default::default()
    /// };
    /// let scenario = Scenario::new("ingress-overload")
    ///     .ideal()
    ///     .run_for(Duration::from_millis(800))
    ///     .with_ingress(
    ///         IngressLoad::new(24, Duration::from_millis(2), 64)
    ///             .with_admission(admission)
    ///             .with_max_retries(1),
    ///     );
    /// let params = ProtocolParams::new(4)
    ///     .with_batch_size(8)
    ///     .with_tx_size(64)
    ///     .with_fill_blocks(false);
    /// let report = Simulator
    ///     .run(&ClusterBuilder::<FloCluster>::new(params), &scenario)
    ///     .unwrap();
    /// assert!(report.ingress.shed() > 0, "overload must shed, visibly");
    /// assert_eq!(report.ingress.lost(), 0, "…but never lose accepted work");
    /// ```
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Overrides the per-submission retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the no-new-submissions drain tail.
    pub fn with_drain(mut self, drain: Duration) -> Self {
        self.drain = drain;
        self
    }
}

/// xorshift64*: tiny, seedable, good enough for think-time jitter and lane
/// mixing — and fully deterministic, which the simulator requires.
#[derive(Clone, Debug)]
struct DetRng(u64);

impl DetRng {
    fn new(seed: u64) -> Self {
        DetRng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One admission gate per node behind a single [`RpcHandler`]: the piece a
/// runtime plugs its client listeners into ([`TcpCluster::serve_rpc`] /
/// [`ThreadedCluster::attach_rpc`]), and the driver mirrors availability
/// into.
///
/// [`TcpCluster::serve_rpc`]: fireledger_net::TcpCluster::serve_rpc
/// [`ThreadedCluster::attach_rpc`]: fireledger_net::ThreadedCluster::attach_rpc
#[derive(Debug)]
pub struct ClusterIngress {
    gates: Vec<Arc<IngressGate>>,
    /// Wall-clock origin for listener-driven calls (the sim path passes its
    /// own virtual time through [`ClusterIngress::handle_at`] instead).
    origin: Instant,
}

impl ClusterIngress {
    /// One gate per node, all running `cfg`, all initially `Up`.
    pub fn new(n: usize, cfg: AdmissionConfig) -> Self {
        ClusterIngress {
            gates: (0..n)
                .map(|_| Arc::new(IngressGate::new(cfg.clone())))
                .collect(),
            origin: Instant::now(),
        }
    }

    /// The per-node gates, index-aligned with node ids.
    pub fn gates(&self) -> &[Arc<IngressGate>] {
        &self.gates
    }

    /// Mirrors `node`'s availability into its gate.
    pub fn set_availability(&self, node: usize, a: Availability) {
        self.gates[node].set_availability(a);
    }

    /// Dispatches one client message against `node`'s gate at an explicit
    /// time — the simulator's entry point.
    pub fn handle_at(
        &self,
        node: usize,
        msg: &RpcMsg,
        now_nanos: u64,
    ) -> (RpcMsg, Option<Transaction>) {
        self.gates[node].handle(msg, now_nanos)
    }
}

impl RpcHandler for ClusterIngress {
    fn handle(&self, node: NodeId, msg: &RpcMsg) -> (RpcMsg, Option<Transaction>) {
        let now = self.origin.elapsed().as_nanos() as u64;
        self.handle_at(node.as_usize(), msg, now)
    }
}

/// Per-node downtime windows `(node, from_nanos, to_nanos)` compiled from a
/// scenario's crash events and fault plan, each opened `guard` early: the
/// driver flips the node's gate to `Down` *before* the fault lands, so no
/// submission is accepted into a pool that is about to stop listening —
/// the knowable half of the accepted-then-lost contract. (The gate mirror
/// of the node's own loop covers the unplanned half: state-sync phases.)
pub(crate) fn planned_down_windows(scenario: &Scenario, guard: Duration) -> Vec<(usize, u64, u64)> {
    let nanos = |d: Duration| d.as_nanos() as u64;
    let lead = |d: Duration| nanos(d.saturating_sub(guard));
    let mut windows: Vec<(usize, u64, u64)> = Vec::new();
    for fault in &scenario.crashes {
        windows.push((fault.node.as_usize(), lead(fault.at), u64::MAX));
    }
    if let Some(plan) = &scenario.faults {
        for nf in &plan.node_faults {
            let to = nf.recover_at.map_or(u64::MAX, nanos);
            windows.push((nf.node.as_usize(), lead(nf.crash_at), to));
        }
        for kf in &plan.kill_faults {
            let to = kf.restart_at.map_or(u64::MAX, nanos);
            windows.push((kf.node.as_usize(), lead(kf.kill_at), to));
        }
    }
    windows
}

/// True when `node` sits inside a planned downtime window at `now_nanos`.
pub(crate) fn planned_down(windows: &[(usize, u64, u64)], node: usize, now_nanos: u64) -> bool {
    windows
        .iter()
        .any(|(w, from, to)| *w == node && (*from..*to).contains(&now_nanos))
}

/// The real-time ingress driver: owns the fleet and its commit cursors and
/// is stepped (every ~2 ms) by `drive_realtime`'s wait loops. Each step
/// mirrors availability into the gates — worst of the *planned* downtime
/// window and the node's own live status — serves every due client through
/// [`RealtimeCluster::rpc`], and feeds newly observed deliveries back into
/// the commit accounting.
pub(crate) struct IngressDrive {
    ci: Arc<ClusterIngress>,
    fleet: ClientFleet,
    /// Per-node count of deliveries already fed into the accounting.
    cursors: Vec<usize>,
    windows: Vec<(usize, u64, u64)>,
}

impl IngressDrive {
    pub(crate) fn new(
        ci: Arc<ClusterIngress>,
        load: &IngressLoad,
        n: usize,
        seed: u64,
        duration: Duration,
        windows: Vec<(usize, u64, u64)>,
    ) -> Self {
        let deadline = duration.saturating_sub(load.drain).as_nanos() as u64;
        IngressDrive {
            ci,
            fleet: ClientFleet::new(load, n, seed, deadline),
            cursors: vec![0; n],
            windows,
        }
    }

    pub(crate) fn step<C: RealtimeCluster>(&mut self, running: &C, now: Duration) {
        let now_nanos = now.as_nanos() as u64;
        for node in 0..self.cursors.len() {
            let planned = planned_down(&self.windows, node, now_nanos);
            let a = match running.node_status(NodeId(node as u32)) {
                _ if planned => Availability::Down,
                NodeStatus::Down => Availability::Down,
                NodeStatus::Syncing => Availability::Syncing,
                NodeStatus::Up => Availability::Up,
            };
            self.ci.set_availability(node, a);
        }
        self.fleet.poll(now_nanos, &mut |node, msg| {
            running.rpc(NodeId(node as u32), msg)
        });
        for (i, cursor) in self.cursors.iter_mut().enumerate() {
            let ds = running.deliveries(NodeId(i as u32));
            if ds.len() < *cursor {
                // A kill cleared this node's delivery log; rescan from the
                // start (note_commits is idempotent per transaction).
                *cursor = 0;
            }
            for d in &ds[*cursor..] {
                self.ci.gates()[i].note_commit(d.round, d.block.txs.iter());
                self.fleet.note_commits(now_nanos, d.block.txs.iter());
            }
            *cursor = ds.len();
        }
    }

    /// Accepted transactions not yet observed committed.
    pub(crate) fn outstanding(&self) -> u64 {
        self.fleet.lost()
    }

    /// Final scan over the post-shutdown delivery logs — closes the race
    /// between the last step and the shutdown snapshot — then the report.
    pub(crate) fn finish(mut self, deliveries: &[Vec<Delivery>], end_nanos: u64) -> IngressReport {
        for (i, ds) in deliveries.iter().enumerate() {
            let from = match self.cursors.get(i) {
                Some(&c) if c <= ds.len() => c,
                _ => 0,
            };
            for d in &ds[from..] {
                self.fleet.note_commits(end_nanos, d.block.txs.iter());
            }
        }
        self.fleet.finish()
    }
}

/// Client-side per-lane outcome counters (the client's view — the gates
/// keep their own, which match under a lossless transport).
#[derive(Clone, Copy, Debug, Default)]
struct LaneCounts {
    accepted: u64,
    committed: u64,
    shed_busy: u64,
    shed_rate_limited: u64,
    rejected_syncing: u64,
    duplicate: u64,
}

#[derive(Clone, Debug)]
struct Client {
    id: u64,
    /// Current target node (rotates on `Syncing` and transport failure).
    node: usize,
    /// Next sequence number to submit.
    seq: u64,
    /// Lane of the in-flight submission (chosen fresh per sequence, stable
    /// across its retries).
    lane: Lane,
    /// Retry attempt for the current sequence (0 = fresh).
    attempt: u32,
    /// Earliest `now_nanos` at which this client acts again; `u64::MAX`
    /// once drained.
    next_at: u64,
    /// Payload of the in-flight submission — built once per sequence so
    /// retries resubmit identical bytes (the dedup key is `(client, seq)`,
    /// but two gates admitting different bytes under one id would make the
    /// executed ledger depend on which admission won).
    pending: Vec<u8>,
    /// This client's transfer nonce ([`PayloadKind::Transfers`]): advanced
    /// on every admitted submission, mirroring the state machine's
    /// per-account nonce as long as the client's account is private to it.
    nonce: u64,
    rng: DetRng,
}

impl Client {
    /// Builds the payload for this client's next fresh submission.
    fn build_payload(&mut self, kind: &PayloadKind, tx_size: usize) -> Vec<u8> {
        match kind {
            PayloadKind::Opaque => vec![0u8; tx_size],
            PayloadKind::Transfers {
                accounts,
                conflict_pct,
            } => {
                let accounts = (*accounts).max(1);
                let from = (self.id - 1) % accounts;
                let to = if self.rng.below(100) < *conflict_pct as u64 {
                    // Credit the shared hot set: a key conflict the
                    // executor's parallel apply must serialize.
                    accounts - 1 - self.rng.below(HOT_ACCOUNTS.min(accounts))
                } else {
                    // Self-transfer: valid, consumes the nonce, and its
                    // footprint never leaves this client's own account.
                    from
                };
                TxOp::Transfer {
                    from,
                    to,
                    amount: 1,
                    nonce: self.nonce,
                }
                .encode_payload()
                .to_vec()
            }
        }
    }
}

/// A deterministic open-loop client fleet (see the module docs).
#[derive(Debug)]
pub struct ClientFleet {
    cfg: IngressLoad,
    n_nodes: usize,
    clients: Vec<Client>,
    /// Accepted-but-unobserved submissions: id → (lane, accept time).
    /// Whatever is left here when the run closes is accepted-then-lost.
    outstanding: HashMap<(u64, u64), (Lane, u64)>,
    counts: [LaneCounts; 3],
    /// Per-lane submit→commit latency samples in seconds.
    samples: [Vec<f64>; 3],
    retries: u64,
    abandoned: u64,
    transport_errors: u64,
    /// No new submissions at or past this time (the drain tail).
    deadline_nanos: u64,
}

impl ClientFleet {
    /// A fleet for an `n_nodes` cluster, seeded deterministically;
    /// submissions stop at `deadline_nanos`.
    pub fn new(cfg: &IngressLoad, n_nodes: usize, seed: u64, deadline_nanos: u64) -> Self {
        let mut boot = DetRng::new(seed ^ 0x1A9E_55ED);
        let think = cfg.think_time.as_nanos() as u64;
        let clients = (0..cfg.clients)
            .map(|i| Client {
                id: i as u64 + 1,
                node: i % n_nodes.max(1),
                seq: 0,
                lane: Lane::Normal,
                attempt: 0,
                // Stagger starts across one think interval so the fleet
                // does not arrive as a single synchronized burst.
                next_at: boot.below(think.max(1)),
                pending: Vec::new(),
                nonce: 0,
                rng: DetRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + 1)),
            })
            .collect();
        ClientFleet {
            cfg: cfg.clone(),
            n_nodes: n_nodes.max(1),
            clients,
            outstanding: HashMap::new(),
            counts: Default::default(),
            samples: Default::default(),
            retries: 0,
            abandoned: 0,
            transport_errors: 0,
            deadline_nanos,
        }
    }

    /// Runs every due client once against `port` (node index + request →
    /// reply; `None` is a transport failure). Call at a steady cadence with
    /// monotonically non-decreasing `now_nanos`.
    pub fn poll(&mut self, now_nanos: u64, port: &mut dyn FnMut(usize, &RpcMsg) -> Option<RpcMsg>) {
        let think = self.cfg.think_time.as_nanos() as u64;
        let max_retries = self.cfg.max_retries;
        let tx_size = self.cfg.tx_size;
        for ci in 0..self.clients.len() {
            if self.clients[ci].next_at > now_nanos {
                continue;
            }
            if now_nanos >= self.deadline_nanos {
                // Drained: pending unaccepted work is abandoned, not lost.
                if self.clients[ci].attempt > 0 {
                    self.abandoned += 1;
                }
                self.clients[ci].next_at = u64::MAX;
                continue;
            }
            let (id, seq, lane, msg) = {
                let payload_kind = self.cfg.payload;
                let c = &mut self.clients[ci];
                if c.attempt == 0 {
                    // Fresh submission: roll the lane — 1/8 probe, 5/8
                    // normal, 2/8 bulk — and build the payload once.
                    c.lane = match c.rng.below(8) {
                        0 => Lane::Probe,
                        6 | 7 => Lane::Bulk,
                        _ => Lane::Normal,
                    };
                    c.pending = c.build_payload(&payload_kind, tx_size);
                }
                let msg = RpcMsg::Submit {
                    client: c.id,
                    seq: c.seq,
                    lane: c.lane,
                    payload: c.pending.clone(),
                };
                (c.id, c.seq, c.lane, msg)
            };
            let reply = port(self.clients[ci].node, &msg);
            let counts = &mut self.counts[lane.index()];
            match reply {
                Some(RpcMsg::SubmitAck { status, .. }) => match status {
                    SubmitStatus::Accepted { .. } => {
                        counts.accepted += 1;
                        self.outstanding.insert((id, seq), (lane, now_nanos));
                        self.clients[ci].nonce += 1;
                        Self::advance(&mut self.clients[ci], now_nanos, think);
                    }
                    SubmitStatus::Busy { retry_after_ms } => {
                        counts.shed_busy += 1;
                        // First Busy: same node after the hinted back-off
                        // (transient overload). Repeated Busy: fail over —
                        // the node may be down, and a client cannot tell.
                        let rotate = self.clients[ci].attempt >= 1;
                        self.back_off(ci, now_nanos, think, retry_after_ms, max_retries, rotate);
                    }
                    SubmitStatus::RateLimited { retry_after_ms } => {
                        counts.shed_rate_limited += 1;
                        self.back_off(ci, now_nanos, think, retry_after_ms, max_retries, false);
                    }
                    SubmitStatus::Syncing => {
                        counts.rejected_syncing += 1;
                        // Fail over: a syncing node told us to go elsewhere.
                        self.back_off(ci, now_nanos, think, 5, max_retries, true);
                    }
                    SubmitStatus::Duplicate => {
                        // Terminal: the id is already admitted or committed
                        // — move on, never retry. It was admitted, so the
                        // transfer nonce advances like an accept.
                        counts.duplicate += 1;
                        self.clients[ci].nonce += 1;
                        Self::advance(&mut self.clients[ci], now_nanos, think);
                    }
                },
                Some(_) => {
                    // A §11 violation from the server side; treat like a
                    // torn connection.
                    self.transport_errors += 1;
                    self.back_off(ci, now_nanos, think, 10, max_retries, true);
                }
                None => {
                    self.transport_errors += 1;
                    self.back_off(ci, now_nanos, think, 10, max_retries, true);
                }
            }
        }
    }

    /// Moves `c` to its next fresh sequence after `now`.
    fn advance(c: &mut Client, now: u64, think: u64) {
        c.seq += 1;
        c.attempt = 0;
        // Think time ±25% jitter.
        let jitter = if think >= 4 {
            let half = think / 2;
            c.rng.below(half.max(1)).wrapping_sub(half / 2)
        } else {
            0
        };
        c.next_at = now + think.wrapping_add(jitter).max(1);
    }

    /// Books one retry (or the abandonment) of `ci`'s current submission:
    /// jittered exponential back-off seeded from the server's hint.
    fn back_off(
        &mut self,
        ci: usize,
        now: u64,
        think: u64,
        hint_ms: u32,
        max_retries: u32,
        rotate: bool,
    ) {
        let c = &mut self.clients[ci];
        if rotate {
            c.node = (c.node + 1) % self.n_nodes;
        }
        if c.attempt >= max_retries {
            self.abandoned += 1;
            Self::advance(c, now, think);
            return;
        }
        self.retries += 1;
        c.attempt += 1;
        let base = Duration::from_millis(hint_ms.max(1) as u64)
            .saturating_mul(1 << (c.attempt - 1).min(4))
            .min(MAX_BACKOFF)
            .as_nanos() as u64;
        c.next_at = now + base + c.rng.below(base / 2 + 1);
    }

    /// Marks every transaction of a committed block as observed: each one
    /// still outstanding books a commit and a latency sample for its lane.
    /// Feed every node's deliveries — the map makes duplicates idempotent.
    pub fn note_commits<'a>(
        &mut self,
        now_nanos: u64,
        txs: impl IntoIterator<Item = &'a Transaction>,
    ) {
        for tx in txs {
            if let Some((lane, submitted)) = self.outstanding.remove(&tx.id()) {
                self.counts[lane.index()].committed += 1;
                self.samples[lane.index()].push(now_nanos.saturating_sub(submitted) as f64 / 1e9);
            }
        }
    }

    /// Total accepted-but-never-observed-committed submissions so far.
    pub fn lost(&self) -> u64 {
        self.outstanding.len() as u64
    }

    /// Closes the accounting and produces the report's `ingress` section.
    pub fn finish(mut self) -> IngressReport {
        if std::env::var_os("FIRELEDGER_INGRESS_DEBUG").is_some() {
            for ((client, seq), (lane, at)) in &self.outstanding {
                eprintln!(
                    "LOST client={client} seq={seq} lane={} accepted_at={:.3}s",
                    lane.name(),
                    *at as f64 / 1e9
                );
            }
        }
        let mut lanes: [IngressLaneReport; 3] = Default::default();
        let mut lost_by_lane = [0u64; 3];
        for (lane, _) in self.outstanding.values() {
            lost_by_lane[lane.index()] += 1;
        }
        for (i, lane) in lanes.iter_mut().enumerate() {
            let c = self.counts[i];
            let samples = &mut self.samples[i];
            samples.sort_by(f64::total_cmp);
            let pct = |p: f64| -> f64 {
                if samples.is_empty() {
                    return 0.0;
                }
                let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
                samples[rank.clamp(1, samples.len()) - 1]
            };
            *lane = IngressLaneReport {
                accepted: c.accepted,
                committed: c.committed,
                lost: lost_by_lane[i],
                shed_busy: c.shed_busy,
                shed_rate_limited: c.shed_rate_limited,
                rejected_syncing: c.rejected_syncing,
                duplicate: c.duplicate,
                p50_latency_secs: pct(50.0),
                p95_latency_secs: pct(95.0),
                p99_latency_secs: pct(99.0),
            };
        }
        IngressReport {
            enabled: true,
            lanes,
            retries: self.retries,
            abandoned: self.abandoned,
            transport_errors: self.transport_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::Round;

    fn load() -> IngressLoad {
        IngressLoad::new(4, Duration::from_millis(10), 32).with_drain(Duration::from_millis(0))
    }

    #[test]
    fn fleet_is_deterministic_for_a_fixed_seed() {
        let run = || {
            let ingress = ClusterIngress::new(4, AdmissionConfig::default());
            let mut fleet = ClientFleet::new(&load(), 4, 7, u64::MAX);
            let mut admitted: Vec<Transaction> = Vec::new();
            for step in 0..200u64 {
                let now = step * 2_000_000; // 2 ms cadence
                let mut port = |node: usize, msg: &RpcMsg| {
                    let (reply, tx) = ingress.handle_at(node, msg, now);
                    admitted.extend(tx);
                    Some(reply)
                };
                fleet.poll(now, &mut port);
            }
            (
                admitted.iter().map(|t| t.id()).collect::<Vec<_>>(),
                fleet.lost(),
            )
        };
        assert_eq!(run(), run());
        assert!(run().0.len() > 10, "fleet submitted almost nothing");
    }

    #[test]
    fn commits_balance_accepts_and_latency_is_sampled() {
        let ingress = ClusterIngress::new(1, AdmissionConfig::default());
        let mut fleet = ClientFleet::new(&load(), 1, 3, u64::MAX);
        let mut admitted: Vec<Transaction> = Vec::new();
        for step in 0..100u64 {
            let now = step * 5_000_000;
            let mut port = |node: usize, msg: &RpcMsg| {
                let (reply, tx) = ingress.handle_at(node, msg, now);
                admitted.extend(tx);
                Some(reply)
            };
            fleet.poll(now, &mut port);
        }
        assert!(fleet.lost() > 0);
        let commit_at = 600_000_000u64;
        ingress.gates()[0].note_commit(Round(0), admitted.iter());
        fleet.note_commits(commit_at, admitted.iter());
        assert_eq!(fleet.lost(), 0, "every admitted tx was committed");
        let report = fleet.finish();
        assert!(report.enabled);
        assert_eq!(report.accepted(), report.committed());
        assert_eq!(report.lost(), 0);
        assert!(report.lanes.iter().any(|l| l.p99_latency_secs > 0.0));
    }

    #[test]
    fn refused_clients_back_off_and_eventually_abandon() {
        let ingress = ClusterIngress::new(2, AdmissionConfig::default());
        // Both nodes down: every submission is refused Busy.
        ingress.set_availability(0, Availability::Down);
        ingress.set_availability(1, Availability::Syncing);
        let cfg = load().with_max_retries(2);
        let mut fleet = ClientFleet::new(&cfg, 2, 9, u64::MAX);
        for step in 0..400u64 {
            let now = step * 2_000_000;
            let mut port = |node: usize, msg: &RpcMsg| Some(ingress.handle_at(node, msg, now).0);
            fleet.poll(now, &mut port);
        }
        let lost = fleet.lost();
        let report = fleet.finish();
        assert_eq!(lost, 0, "nothing was accepted, nothing can be lost");
        assert_eq!(report.accepted(), 0);
        assert!(report.retries > 0, "refusals must be retried");
        assert!(report.abandoned > 0, "retry budgets must expire");
        let shed: u64 = report
            .lanes
            .iter()
            .map(|l| l.shed_busy + l.rejected_syncing)
            .sum();
        assert!(shed > 0);
    }

    #[test]
    fn transfer_payloads_decode_and_mix_conflicting_and_disjoint_targets() {
        use fireledger_types::DecodedOp;
        let cfg = IngressLoad::new(8, Duration::from_millis(5), 64).with_payload(
            PayloadKind::Transfers {
                accounts: 64,
                conflict_pct: 50,
            },
        );
        let ingress = ClusterIngress::new(1, AdmissionConfig::default());
        let mut fleet = ClientFleet::new(&cfg, 1, 21, u64::MAX);
        let mut admitted: Vec<Transaction> = Vec::new();
        for step in 0..300u64 {
            let now = step * 2_000_000;
            let mut port = |node: usize, msg: &RpcMsg| {
                let (reply, tx) = ingress.handle_at(node, msg, now);
                admitted.extend(tx);
                Some(reply)
            };
            fleet.poll(now, &mut port);
        }
        assert!(admitted.len() > 20, "fleet admitted almost nothing");
        let (mut hot, mut disjoint) = (0u64, 0u64);
        let mut nonces: HashMap<u64, u64> = HashMap::new();
        for tx in &admitted {
            match TxOp::classify_payload(&tx.payload) {
                DecodedOp::Op(TxOp::Transfer {
                    from,
                    to,
                    amount,
                    nonce,
                }) => {
                    assert_eq!(amount, 1);
                    assert!(from < 64 && to < 64);
                    if to == from {
                        disjoint += 1;
                    } else {
                        assert!(to >= 64 - HOT_ACCOUNTS, "non-self target must be hot");
                        hot += 1;
                    }
                    // Per private account, nonces are exactly the admission
                    // order: 0, 1, 2, …
                    let expected = nonces.entry(from).or_insert(0);
                    assert_eq!(nonce, *expected, "nonce gap for account {from}");
                    *expected += 1;
                }
                other => panic!("expected a transfer payload, got {other:?}"),
            }
        }
        assert!(hot > 0, "a 50% conflict ratio produced no hot transfers");
        assert!(
            disjoint > 0,
            "a 50% conflict ratio produced only hot transfers"
        );
    }

    #[test]
    fn planned_windows_open_early_and_close_on_recovery() {
        use fireledger_types::FaultPlan;
        let s = Scenario::new("w").with_faults(FaultPlan::named("cr").crash_recover(
            NodeId(1),
            Duration::from_millis(100),
            Duration::from_millis(200),
        ));
        let windows = planned_down_windows(&s, Duration::from_millis(20));
        assert!(planned_down(
            &windows,
            1,
            Duration::from_millis(81).as_nanos() as u64
        ));
        assert!(planned_down(
            &windows,
            1,
            Duration::from_millis(150).as_nanos() as u64
        ));
        assert!(!planned_down(
            &windows,
            1,
            Duration::from_millis(79).as_nanos() as u64
        ));
        assert!(!planned_down(
            &windows,
            1,
            Duration::from_millis(200).as_nanos() as u64
        ));
        assert!(!planned_down(
            &windows,
            0,
            Duration::from_millis(150).as_nanos() as u64
        ));
    }
}
