//! # fireledger-runtime
//!
//! The unified assembly-and-driving surface of the FireLedger workspace: one
//! way to build, run and observe any protocol cluster on any runtime.
//!
//! The paper's whole evaluation is a single experiment matrix —
//! {FireLedger/FLO, PBFT, WRB/OBBC, HotStuff, BFT-SMaRt} × {single-DC, geo,
//! crash, Byzantine} × {simulation, real threads, real sockets}. This crate
//! makes each axis one value:
//!
//! * [`ClusterBuilder`] assembles a cluster of any [`ClusterProtocol`] from
//!   [`ProtocolParams`](fireledger_types::ProtocolParams) plus a per-node
//!   [`NodeRole`] map (correct / crash-at / equivocate / silent-proposer);
//! * [`Scenario`] describes the topology (single-DC, geo, custom latency
//!   matrix), the workload (saturated, open-loop rate, closed-loop clients)
//!   and the fault schedule with absolute trigger times;
//! * a [`Runtime`] — [`Simulator`] (deterministic discrete events),
//!   [`Threads`] (one OS thread per node, wall-clock time, in-process
//!   channels) or [`Tcp`] (wall-clock time over a real localhost
//!   `TcpStream` mesh speaking the binary wire format of
//!   `docs/WIRE_FORMAT.md`) — consumes both and returns a [`RunReport`]
//!   with an identical schema every way.
//!
//! ## Example: the same scenario across protocols and runtimes
//!
//! ```
//! use fireledger_runtime::prelude::*;
//! use std::time::Duration;
//!
//! let params = ProtocolParams::new(4)
//!     .with_batch_size(8)
//!     .with_tx_size(64)
//!     .with_base_timeout(Duration::from_millis(20));
//! let scenario = Scenario::new("smoke").ideal().run_for(Duration::from_millis(300));
//!
//! let flo = Simulator
//!     .run(&ClusterBuilder::<FloCluster>::new(params.clone()), &scenario)
//!     .unwrap();
//! let hs = Simulator
//!     .run(&ClusterBuilder::<HotStuffNode>::new(params), &scenario)
//!     .unwrap();
//! assert!(flo.tps > 0.0 && hs.tps > 0.0);
//! assert_eq!(flo.schema(), hs.schema());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod builder;
pub mod catalog;
mod ingress;
mod preverify;
mod report;
mod run;
mod scenario;

pub use builder::{BuildContext, ClusterBuilder, ClusterProtocol, FloCluster, NodeRole};
pub use fireledger_net::{TcpEngine, DEFAULT_REACTOR_THREADS};
pub use ingress::{ClientFleet, ClusterIngress, IngressLoad, PayloadKind};
pub use preverify::FloPreVerifier;
pub use report::{ExecutionReport, IngressLaneReport, IngressReport, NodeDeliveries, RunReport};
pub use run::{check_delivery_prefixes, CatchUp, Runtime, Simulator, Tcp, Threads};
pub use scenario::{FaultEvent, Scenario, Topology, Workload};

/// Everything a typical experiment needs, re-exported for
/// `use fireledger_runtime::prelude::*`.
pub mod prelude {
    pub use crate::{
        check_delivery_prefixes, CatchUp, ClusterBuilder, ClusterProtocol, ExecutionReport,
        FaultEvent, FloCluster, IngressLaneReport, IngressLoad, IngressReport, NodeDeliveries,
        NodeRole, PayloadKind, RunReport, Runtime, Scenario, Simulator, Tcp, TcpEngine, Threads,
        Topology, Workload, DEFAULT_REACTOR_THREADS,
    };
    pub use fireledger::{AcceptAll, ClusterNode, FloNode, Worker};
    pub use fireledger_baselines::{BftSmartNode, HotStuffNode, PbftNode};
    pub use fireledger_exec::{ExecConfig, ExecShared, SerialExecutor};
    pub use fireledger_store::FsyncPolicy;
    pub use fireledger_types::{
        Block, BlockHeader, ClusterConfig, Delivery, DiskFault, FaultPlan, FaultWindow, FillOps,
        KillFault, LinkSelector, NodeId, ProtocolParams, Round, Transaction, WorkerId,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::time::Duration;

    fn params(n: usize) -> ProtocolParams {
        ProtocolParams::new(n)
            .with_batch_size(8)
            .with_tx_size(64)
            .with_base_timeout(Duration::from_millis(20))
    }

    fn quick() -> Scenario {
        Scenario::new("unit")
            .ideal()
            .run_for(Duration::from_millis(300))
    }

    #[test]
    fn simulator_runs_all_five_protocols() {
        let s = quick();
        let p = params(4);
        let reports = [
            Simulator
                .run(&ClusterBuilder::<FloCluster>::new(p.clone()), &s)
                .unwrap(),
            Simulator
                .run(&ClusterBuilder::<Worker>::new(p.clone()), &s)
                .unwrap(),
            Simulator
                .run(&ClusterBuilder::<PbftNode>::new(p.clone()), &s)
                .unwrap(),
            Simulator
                .run(&ClusterBuilder::<HotStuffNode>::new(p.clone()), &s)
                .unwrap(),
            Simulator
                .run(&ClusterBuilder::<BftSmartNode>::new(p), &s)
                .unwrap(),
        ];
        let names: Vec<&str> = reports.iter().map(|r| r.protocol.as_str()).collect();
        assert_eq!(names, ["flo", "wrb-obbc", "pbft", "hotstuff", "bft-smart"]);
        for r in &reports {
            assert!(r.tps > 0.0, "{} produced no throughput", r.protocol);
            assert!(r.per_node.iter().all(|d| d.blocks > 0), "{}", r.protocol);
        }
    }

    #[test]
    fn simulated_runs_are_deterministic() {
        let s = quick().with_seed(5);
        let run = || {
            Simulator
                .run(
                    &ClusterBuilder::<FloCluster>::new(params(4)).with_seed(5),
                    &s,
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn crash_role_and_scenario_fault_agree() {
        // Crashing via a builder role and via a scenario fault event produce
        // the same simulated execution.
        let by_role = Simulator
            .run(
                &ClusterBuilder::<FloCluster>::new(params(4))
                    .with_role(NodeId(3), NodeRole::CrashAt(Duration::ZERO)),
                &quick(),
            )
            .unwrap();
        let by_scenario = Simulator
            .run(
                &ClusterBuilder::<FloCluster>::new(params(4)),
                &quick().crash(NodeId(3), Duration::ZERO),
            )
            .unwrap();
        assert!(by_role.tps > 0.0);
        assert_eq!(by_role.per_node[3].blocks, 0);
        assert_eq!(by_scenario.per_node[3].blocks, 0);
        assert_eq!(by_role.per_node[0].blocks, by_scenario.per_node[0].blocks);
    }

    #[test]
    fn equivocating_role_triggers_recoveries() {
        let report = Simulator
            .run(
                &ClusterBuilder::<FloCluster>::new(params(4))
                    .with_role(NodeId(3), NodeRole::Equivocate),
                &Scenario::new("byz").ideal().run_for(Duration::from_secs(2)),
            )
            .unwrap();
        assert!(report.recoveries_per_sec > 0.0);
        assert!(report.tps > 0.0);
    }

    #[test]
    fn open_loop_workload_reaches_protocols() {
        let p = params(4).with_fill_blocks(false);
        let s = Scenario::new("open")
            .ideal()
            .open_loop(500.0, 64)
            .run_for(Duration::from_millis(500))
            .with_warmup(Duration::ZERO);
        let report = Simulator
            .run(&ClusterBuilder::<FloCluster>::new(p), &s)
            .unwrap();
        assert!(report.tps > 0.0);
    }

    #[test]
    fn sim_ingress_soak_accepts_commits_and_loses_nothing() {
        let p = params(4).with_fill_blocks(false);
        let s = Scenario::new("ingress-smoke")
            .ideal()
            .run_for(Duration::from_secs(1))
            .with_seed(11)
            .with_ingress(
                crate::IngressLoad::new(8, Duration::from_millis(10), 64)
                    .with_drain(Duration::from_millis(300)),
            );
        let run = || {
            Simulator
                .run(
                    &ClusterBuilder::<FloCluster>::new(p.clone()).with_seed(11),
                    &s,
                )
                .unwrap()
        };
        let report = run();
        assert!(report.ingress.enabled);
        assert!(report.ingress.accepted() > 20, "{:?}", report.ingress);
        assert_eq!(report.ingress.lost(), 0, "{:?}", report.ingress);
        assert_eq!(
            report.ingress.accepted(),
            report.ingress.committed(),
            "{:?}",
            report.ingress
        );
        assert!(
            report
                .ingress
                .lanes
                .iter()
                .any(|l| l.p99_latency_secs > 0.0),
            "{:?}",
            report.ingress
        );
        // The sliced ingress drive must stay bit-deterministic.
        assert_eq!(report.to_json(), run().to_json());
    }

    #[test]
    fn sim_ingress_sheds_under_overload_with_typed_refusals() {
        let p = params(4).with_fill_blocks(false);
        // Tiny lane capacities + aggressive clients: the gates must shed.
        let admission = fireledger::AdmissionConfig {
            capacity: 4,
            rate_per_sec: 50,
            burst: 5,
            ..Default::default()
        };
        let s = Scenario::new("ingress-overload")
            .ideal()
            .run_for(Duration::from_millis(800))
            .with_ingress(
                crate::IngressLoad::new(24, Duration::from_millis(2), 64)
                    .with_admission(admission)
                    .with_max_retries(1),
            );
        let report = Simulator
            .run(&ClusterBuilder::<FloCluster>::new(p), &s)
            .unwrap();
        assert!(
            report.ingress.shed() > 0,
            "overload must shed: {:?}",
            report.ingress
        );
        assert_eq!(report.ingress.lost(), 0, "{:?}", report.ingress);
        assert!(report.ingress.retries > 0);
    }

    #[test]
    fn execution_pipeline_reports_and_stays_deterministic() {
        let p = params(4).with_fill_blocks(false);
        let s = Scenario::new("exec-smoke")
            .ideal()
            .run_for(Duration::from_secs(1))
            .with_seed(13)
            .with_ingress(
                IngressLoad::new(8, Duration::from_millis(5), 64)
                    .with_drain(Duration::from_millis(300))
                    .with_payload(PayloadKind::Transfers {
                        accounts: 64,
                        conflict_pct: 25,
                    }),
            );
        let run = || {
            Simulator
                .run(
                    &ClusterBuilder::<FloCluster>::new(p.clone())
                        .with_seed(13)
                        .with_execution(ExecConfig::with_genesis(64, 1_000_000)),
                    &s,
                )
                .unwrap()
        };
        let report = run();
        assert!(report.execution.enabled);
        assert!(
            report.execution.executed_blocks > 0,
            "{:?}",
            report.execution
        );
        assert!(report.execution.executed_txs > 0, "{:?}", report.execution);
        assert!(
            report.execution.applied_transitions > 0,
            "{:?}",
            report.execution
        );
        assert!(report.execution.transitions_per_sec > 0.0);
        assert!(report.execution.root_checks > 0, "{:?}", report.execution);
        assert_eq!(
            report.execution.root_mismatches, 0,
            "{:?}",
            report.execution
        );
        // Execution rides the deterministic slicing: bit-identical reruns.
        assert_eq!(report.to_json(), run().to_json());
    }

    #[test]
    fn tcp_runtime_matches_schema_and_delivers_over_real_sockets() {
        let s = Scenario::new("tcp").run_for(Duration::from_millis(400));
        let sim = Simulator
            .run(&ClusterBuilder::<FloCluster>::new(params(4)), &quick())
            .unwrap();
        let tcp = Tcp
            .run(&ClusterBuilder::<FloCluster>::new(params(4)), &s)
            .unwrap();
        assert_eq!(sim.schema(), tcp.schema());
        assert_eq!(tcp.runtime, "tcp");
        assert!(tcp.tps > 0.0, "tcp cluster delivered nothing");
        assert!(tcp.per_node.iter().all(|d| d.blocks > 0));
    }

    #[test]
    fn threaded_runtime_matches_schema_and_delivers() {
        let s = Scenario::new("threads").run_for(Duration::from_millis(400));
        let sim = Simulator
            .run(&ClusterBuilder::<FloCluster>::new(params(4)), &quick())
            .unwrap();
        let threaded = Threads
            .run(&ClusterBuilder::<FloCluster>::new(params(4)), &s)
            .unwrap();
        assert_eq!(sim.schema(), threaded.schema());
        assert_eq!(threaded.runtime, "threads");
        assert!(threaded.tps > 0.0, "threaded cluster delivered nothing");
        assert!(threaded.per_node.iter().all(|d| d.blocks > 0));
    }
}
