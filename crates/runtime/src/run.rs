//! The runtimes: one trait, two drivers.
//!
//! [`Runtime::run`] takes a [`ClusterBuilder`] and a [`Scenario`] and returns
//! a [`RunReport`]; [`Simulator`] executes the scenario on the deterministic
//! discrete-event simulator, [`Threads`] on real OS threads with wall-clock
//! time. The same two values drive both — which is the point: a scenario
//! debugged deterministically in the simulator can be re-run unchanged on
//! real threads.

use crate::builder::{ClusterBuilder, ClusterProtocol};
use crate::report::{NodeDeliveries, RunReport};
use crate::scenario::Scenario;
use fireledger_net::ThreadedCluster;
use fireledger_sim::{SimTime, Simulation};
use fireledger_types::{Delivery, NodeId, Result, Transaction, WireSize};
use std::fmt;
use std::time::{Duration, Instant};

/// Drives a cluster through a scenario.
pub trait Runtime {
    /// Short runtime name recorded in reports (`"sim"`, `"threads"`).
    fn name(&self) -> &'static str;

    /// Builds the cluster and runs the scenario to completion.
    fn run<P>(&self, cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Result<RunReport>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + Clone + Send + fmt::Debug + 'static;
}

/// The nodes to average rate metrics over: correct by role and not crashed by
/// the scenario.
fn measured_nodes<P>(cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Vec<NodeId>
where
    P: ClusterProtocol,
    P::Msg: WireSize + Clone + Send + fmt::Debug + 'static,
{
    let crashed = scenario.crashed_nodes();
    cluster
        .correct_nodes()
        .into_iter()
        .filter(|id| !crashed.contains(id))
        .collect()
}

fn delivery_counters(deliveries: &[Vec<Delivery>]) -> Vec<NodeDeliveries> {
    deliveries
        .iter()
        .enumerate()
        .map(|(i, ds)| NodeDeliveries {
            node: i as u32,
            blocks: ds.len() as u64,
            txs: ds.iter().map(|d| d.block.len() as u64).sum(),
        })
        .collect()
}

/// The deterministic discrete-event runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator;

impl Runtime for Simulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run<P>(&self, cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Result<RunReport>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + Clone + Send + fmt::Debug + 'static,
    {
        let nodes = cluster.build()?;
        let n = nodes.len();
        let adversary = scenario.crash_schedule(&cluster.crash_times());
        let mut sim = Simulation::with_adversary(scenario.sim_config(), nodes, Box::new(adversary));
        for (at, node, tx) in scenario.injection_schedule(n) {
            sim.inject_transaction_at(node, tx, at);
        }
        sim.metrics_mut()
            .set_window_start(SimTime::ZERO + scenario.warmup);
        sim.run_for(scenario.duration);

        let measured = measured_nodes(cluster, scenario);
        let summary = sim.summary_for(&measured);
        let per_node = (0..n)
            .map(|i| {
                let ds = sim.deliveries(NodeId(i as u32));
                NodeDeliveries {
                    node: i as u32,
                    blocks: ds.len() as u64,
                    txs: ds.iter().map(|d| d.block.len() as u64).sum(),
                }
            })
            .collect();
        Ok(RunReport {
            protocol: P::NAME.to_string(),
            scenario: scenario.name.clone(),
            runtime: self.name().to_string(),
            n,
            workers: cluster.params().workers,
            duration_secs: summary.duration_secs,
            tps: summary.tps,
            bps: summary.bps,
            avg_latency_secs: summary.avg_latency_secs,
            p50_latency_secs: summary.p50_latency_secs,
            p95_latency_secs: summary.p95_latency_secs,
            p99_latency_secs: summary.p99_latency_secs,
            recoveries_per_sec: summary.recoveries_per_sec,
            fallbacks: summary.fallbacks,
            msgs_sent: summary.msgs_sent,
            bytes_sent: summary.bytes_sent,
            signatures: summary.signatures,
            verifications: summary.verifications,
            latency_cdf: sim.metrics().latency_cdf(20),
            phase_breakdown: sim.metrics().phase_breakdown(),
            per_node,
        })
    }
}

/// The real-time threaded runtime.
///
/// The scenario's duration is wall-clock time here: a 2-second scenario takes
/// 2 real seconds. The warm-up window is honoured the same way as on the
/// simulator: deliveries are snapshotted once the warm-up elapses, and rates
/// cover only the measurement window. Latency percentiles, message counters
/// and the lifecycle breakdown are not instrumented on this runtime
/// (protocols pay real CPU instead of reporting observations), so those
/// report fields are zero — the schema is unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct Threads;

enum TimelineEvent {
    Crash(NodeId),
    Inject(NodeId, Transaction),
}

impl Runtime for Threads {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run<P>(&self, cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Result<RunReport>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + Clone + Send + fmt::Debug + 'static,
    {
        let nodes = cluster.build()?;
        let n = nodes.len();

        let mut timeline: Vec<(Duration, TimelineEvent)> = Vec::new();
        for fault in &scenario.crashes {
            timeline.push((fault.at, TimelineEvent::Crash(fault.node)));
        }
        for (node, at) in cluster.crash_times() {
            timeline.push((at, TimelineEvent::Crash(node)));
        }
        for (at, node, tx) in scenario.injection_schedule(n) {
            timeline.push((at.as_duration(), TimelineEvent::Inject(node, tx)));
        }
        timeline.sort_by_key(|(at, _)| *at);

        // A warm-up as long as the run would leave an empty measurement
        // window; fall back to measuring the whole run.
        let warmup = if scenario.warmup < scenario.duration {
            scenario.warmup
        } else {
            Duration::ZERO
        };
        let snapshot = |running: &ThreadedCluster<P::Msg>| -> Vec<(u64, u64)> {
            (0..n)
                .map(|i| {
                    let ds = running.deliveries(NodeId(i as u32));
                    (
                        ds.len() as u64,
                        ds.iter().map(|d| d.block.len() as u64).sum(),
                    )
                })
                .collect()
        };

        let running = ThreadedCluster::spawn(nodes);
        let start = Instant::now();
        let mut warmup_counts: Option<Vec<(u64, u64)>> = None;
        let mut warmup_at = Duration::ZERO;
        for (at, event) in timeline {
            if at >= scenario.duration {
                break;
            }
            // Snapshot delivery counters at the warm-up boundary, before any
            // event scheduled after it is applied.
            if warmup_counts.is_none() && at >= warmup {
                let now = start.elapsed();
                if warmup > now {
                    std::thread::sleep(warmup - now);
                }
                warmup_at = start.elapsed();
                warmup_counts = Some(snapshot(&running));
            }
            let now = start.elapsed();
            if at > now {
                std::thread::sleep(at - now);
            }
            match event {
                TimelineEvent::Crash(node) => running.crash(node),
                TimelineEvent::Inject(node, tx) => running.submit(node, tx),
            }
        }
        if warmup_counts.is_none() {
            let now = start.elapsed();
            if warmup > now {
                std::thread::sleep(warmup - now);
            }
            warmup_at = start.elapsed();
            warmup_counts = Some(snapshot(&running));
        }
        let now = start.elapsed();
        if scenario.duration > now {
            std::thread::sleep(scenario.duration - now);
        }
        let deliveries = running.shutdown();
        let elapsed = start.elapsed();
        let window_secs = (elapsed - warmup_at).as_secs_f64().max(1e-9);

        let per_node = delivery_counters(&deliveries);
        let at_warmup = warmup_counts.unwrap_or_else(|| vec![(0, 0); n]);
        let measured = measured_nodes(cluster, scenario);
        let k = measured.len().max(1) as f64;
        let (blocks, txs) = measured.iter().fold((0u64, 0u64), |(b, t), id| {
            let d = &per_node[id.as_usize()];
            let (wb, wt) = at_warmup[id.as_usize()];
            (
                b + d.blocks.saturating_sub(wb),
                t + d.txs.saturating_sub(wt),
            )
        });
        Ok(RunReport {
            protocol: P::NAME.to_string(),
            scenario: scenario.name.clone(),
            runtime: self.name().to_string(),
            n,
            workers: cluster.params().workers,
            duration_secs: window_secs,
            tps: txs as f64 / k / window_secs,
            bps: blocks as f64 / k / window_secs,
            per_node,
            ..Default::default()
        })
    }
}
