//! The runtimes: one trait, three drivers.
//!
//! [`Runtime::run`] takes a [`ClusterBuilder`] and a [`Scenario`] and returns
//! a [`RunReport`]; [`Runtime::run_full`] additionally returns every node's
//! delivered blocks, which is what lets experiment code prove that two
//! runtimes produced the *same ledger*, not merely similar rates.
//!
//! * [`Simulator`] executes the scenario on the deterministic discrete-event
//!   simulator;
//! * [`Threads`] runs one OS thread per node with wall-clock time, messages
//!   moved over in-process channels;
//! * [`Tcp`] runs one thread per node with wall-clock time and a real
//!   `TcpStream` mesh over localhost — every message is serialized through
//!   the binary wire format (`docs/WIRE_FORMAT.md`) and framed onto a
//!   socket.
//!
//! The same two values drive all three — which is the point: a scenario
//! debugged deterministically in the simulator can be re-run unchanged on
//! real threads or real sockets.

use crate::builder::{ClusterBuilder, ClusterProtocol};
use crate::ingress::{
    planned_down, planned_down_windows, ClientFleet, ClusterIngress, IngressDrive,
};
use crate::report::{ExecutionReport, NodeDeliveries, RunReport};
use crate::scenario::Scenario;
use fireledger::Availability;
use fireledger_net::{RealtimeCluster, TcpCluster, ThreadedCluster};
use fireledger_sim::{Adversary, LateJoinAdversary, PlanAdversary, SimTime, Simulation};
use fireledger_types::{
    Delivery, DiskFault, Error, NodeId, Result, Transaction, WireCodec, WireSize,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

/// How early an ingress gate is flipped `Down` ahead of a *planned* node
/// fault. Work accepted inside the guard window could still sit unproposed
/// in the node's pool when the fault lands, so the gate refuses (`Busy`)
/// early and clients fail over — the knowable half of the zero
/// accepted-then-lost contract.
const INGRESS_GUARD: Duration = Duration::from_millis(50);

/// Bounded extra wall-clock window a real-time run keeps stepping past its
/// scheduled end while accepted ingress work is still uncommitted. The
/// zero accepted-then-lost contract is about *eventual* commitment, and
/// the tail is genuinely long: after a heal-then-pause soak the resumed
/// node must detect its lag, range-fetch the gap, and only then propose
/// the transactions pooled while it was down — ~2s on an otherwise idle
/// host, more under load. The loop below exits the moment nothing is
/// outstanding, so a healthy run pays only the actual recovery time; the
/// bound exists so work that truly never commits is reported lost, not
/// waited on forever.
const INGRESS_QUIESCE_GRACE: Duration = Duration::from_secs(10);

/// Drives a cluster through a scenario.
pub trait Runtime {
    /// Short runtime name recorded in reports (`"sim"`, `"threads"`,
    /// `"tcp"`).
    fn name(&self) -> &'static str;

    /// Builds the cluster, runs the scenario to completion, and returns the
    /// report together with every node's delivered blocks in delivery order.
    fn run_full<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        scenario: &Scenario,
    ) -> Result<(RunReport, Vec<Vec<Delivery>>)>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static;

    /// Builds the cluster and runs the scenario to completion.
    fn run<P>(&self, cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Result<RunReport>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        self.run_full(cluster, scenario).map(|(report, _)| report)
    }
}

/// The nodes to average rate metrics over: correct by role and not faulted
/// (crashed or crash-recovered) by the scenario or its fault plan. A
/// late-join node is excluded too — it was down for most of the window.
fn measured_nodes<P>(cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Vec<NodeId>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let faulted = scenario.faulted_nodes();
    let late = cluster.late_join().map(|(node, _)| node);
    cluster
        .correct_nodes()
        .into_iter()
        .filter(|id| !faulted.contains(id) && late != Some(*id))
        .collect()
}

/// Enforces the fault-budget invariant across *both* fault surfaces: the
/// builder's role map and the scenario's crash events / fault-plan node
/// faults together must not schedule more than `f` faulty nodes. The
/// builder re-checks its own half in `build()`; this check sees the union
/// (a node that is both role-crashed and scenario-crashed counts once).
fn validate_fault_budget<P>(cluster: &ClusterBuilder<P>, scenario: &Scenario) -> Result<()>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let mut faulty: HashSet<NodeId> = cluster
        .roles()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_faulty())
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    faulty.extend(scenario.faulted_nodes());
    // A late-join node is down until its join round: it spends part of the
    // run as a faulty node and must fit in the same budget.
    if let Some((node, _)) = cluster.late_join() {
        faulty.insert(node);
    }
    let f = cluster.params().f();
    if faulty.len() > f {
        return Err(Error::FaultBudgetExceeded {
            faulty: faulty.len(),
            f,
        });
    }
    Ok(())
}

/// Checks that two runs of the same scenario produced the *same ledger*:
/// for every node, the shorter of the two delivery logs must be a prefix of
/// the longer one, and no node's common prefix may be empty.
///
/// Real-time runs cover a different amount of protocol time than simulated
/// runs of the same scenario, so the logs legitimately differ in *length*;
/// any divergence in *content* (a different block, a different transaction
/// order) is a wire-format or protocol bug. Returns the total number of
/// blocks compared, or a description of the first divergence.
///
/// **Precondition: fault-free scenarios only.** The empty-prefix rule is
/// deliberate strictness — it catches a node whose transport silently died
/// (delivering nothing looks "consistent" under pure prefix comparison).
/// The flip side is that a scenario with crashed or Byzantine nodes can
/// legitimately produce a node with blocks in one run and none in the
/// other, which this function reports as a divergence. Compare fault-free
/// runs (as `tests/tests/runtime_equivalence.rs` and the `protocol_matrix`
/// binary do), or restrict the slices to the correct nodes first.
pub fn check_delivery_prefixes(
    a: &[Vec<Delivery>],
    b: &[Vec<Delivery>],
) -> std::result::Result<usize, String> {
    if a.len() != b.len() {
        return Err(format!("node counts differ: {} vs {}", a.len(), b.len()));
    }
    let mut compared = 0;
    for (node, (da, db)) in a.iter().zip(b).enumerate() {
        let common = da.len().min(db.len());
        if common == 0 {
            return Err(format!(
                "node {node} has an empty common prefix ({} vs {} blocks)",
                da.len(),
                db.len()
            ));
        }
        for (i, (x, y)) in da.iter().zip(db).take(common).enumerate() {
            if x != y {
                // Full Delivery debug on both sides: the divergence can be in
                // the delivery metadata, the header, or the block summary.
                return Err(format!("node {node} diverges at block {i}: {x:?} vs {y:?}"));
            }
        }
        compared += common;
    }
    Ok(compared)
}

/// Applies an injected disk fault to a (closed) node store directory, best
/// effort: a missing directory or empty log simply leaves nothing to
/// corrupt, which the recovery path treats as a fresh store anyway.
fn apply_disk_fault(dir: &Path, fault: DiskFault) {
    match fault {
        DiskFault::TornWrite { cut } => {
            let _ = fireledger_store::inject::torn_write(dir, cut);
        }
        DiskFault::CorruptTail => {
            let _ = fireledger_store::inject::corrupt_tail(dir);
        }
        DiskFault::DiskFull { after_bytes } => {
            let _ = fireledger_store::inject::set_disk_full(dir, after_bytes);
        }
    }
}

/// The fault plan's kill-restart schedule as `(restart_at, node, disk_fault)`
/// triples in time order — kills with no restart never rebuild and need no
/// driving beyond the adversary's traffic suppression.
fn restart_schedule(scenario: &Scenario) -> Vec<(Duration, NodeId, Option<DiskFault>)> {
    let mut restarts: Vec<(Duration, NodeId, Option<DiskFault>)> = scenario
        .faults
        .iter()
        .flat_map(|plan| &plan.kill_faults)
        .filter_map(|kf| kf.restart_at.map(|at| (at, kf.node, kf.disk_fault)))
        .collect();
    restarts.sort_by_key(|(at, node, _)| (*at, node.0));
    restarts
}

/// The rebuild hook a real-time cluster installs: the builder's rebuilder,
/// additionally putting a rebuilt late-join node into state-sync mode so it
/// range-fetches the prefix it missed instead of rejoining blind. (A node
/// rebuilt from a durable store already starts syncing; this covers the
/// volatile late joiner, which has nothing on disk either.)
fn realtime_rebuilder<P>(
    cluster: &ClusterBuilder<P>,
) -> std::sync::Arc<dyn Fn(NodeId) -> P + Send + Sync>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let inner = cluster.rebuilder();
    match cluster.late_join() {
        None => inner,
        Some((late, _)) => std::sync::Arc::new(move |me: NodeId| {
            let mut node = inner(me);
            if me == late {
                node.begin_state_sync();
            }
            node
        }),
    }
}

/// The nodes to spawn dormant (late join) on a real-time runtime.
fn dormant_nodes<P>(cluster: &ClusterBuilder<P>) -> Vec<NodeId>
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    cluster
        .late_join()
        .map(|(node, _)| node)
        .into_iter()
        .collect()
}

/// Per-node counters plus the delivery-timeline (stall/recovery) metrics.
/// `times_secs[i]` holds node `i`'s delivery offsets in seconds, in
/// delivery order; an empty slice leaves that node's timeline fields zero.
fn delivery_counters(deliveries: &[Vec<Delivery>], times_secs: &[Vec<f64>]) -> Vec<NodeDeliveries> {
    deliveries
        .iter()
        .enumerate()
        .map(|(i, ds)| {
            NodeDeliveries {
                node: i as u32,
                blocks: ds.len() as u64,
                txs: ds.iter().map(|d| d.block.len() as u64).sum(),
                ..Default::default()
            }
            .timeline_from(times_secs.get(i).map(|t| t.as_slice()).unwrap_or(&[]))
        })
        .collect()
}

/// The report's `execution` section: the engine counters of the measured
/// nodes' shards, summed, with the applied-transition rate averaged across
/// the measured nodes the same way as `tps`. Every shard is drained first
/// (`ExecShared::finish`), so stage-thread lag at shutdown never
/// under-reports a run. All-zero, `enabled: false` when the cluster ran
/// without [`ClusterBuilder::with_execution`].
fn execution_section<P>(
    cluster: &ClusterBuilder<P>,
    measured: &[NodeId],
    window_secs: f64,
) -> ExecutionReport
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
{
    let Some(shards) = cluster.exec_shards() else {
        return ExecutionReport::default();
    };
    let mut section = ExecutionReport {
        enabled: true,
        ..Default::default()
    };
    for (i, node_shards) in shards.iter().enumerate() {
        let counted = measured.contains(&NodeId(i as u32));
        for shard in node_shards {
            shard.finish();
            if !counted {
                continue;
            }
            let s = shard.stats();
            section.executed_blocks += s.executed_blocks;
            section.executed_txs += s.executed_txs;
            section.applied_transitions += s.applied_transitions();
            for (dst, src) in section.receipts.iter_mut().zip(s.receipts) {
                *dst += src;
            }
            section.root_checks += s.root_checks;
            section.root_mismatches += s.root_mismatches;
            section.resets += s.resets;
        }
    }
    let k = measured.len().max(1) as f64;
    section.transitions_per_sec = section.applied_transitions as f64 / k / window_secs.max(1e-9);
    section
}

/// The deterministic discrete-event runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator;

impl Runtime for Simulator {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run_full<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        scenario: &Scenario,
    ) -> Result<(RunReport, Vec<Vec<Delivery>>)>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        validate_fault_budget(cluster, scenario)?;
        // Always an inline crypto pool: simulated time charges the modelled
        // crypto cost, and determinism requires results independent of any
        // host thread count (see `ClusterBuilder::crypto_threads`).
        let nodes = cluster.build_inline()?;
        let n = nodes.len();
        // The scenario's crash events and builder crash roles always apply;
        // a fault plan layers the full drop/delay/reorder/duplicate +
        // partition + crash-recover adversity on top through the same hook.
        let crashes = scenario.crash_schedule(&cluster.crash_times());
        let mut adversary: Box<dyn Adversary<P::Msg>> = match scenario.faults.clone() {
            Some(plan) => Box::new(PlanAdversary::new(plan, crashes)),
            None => Box::new(crashes),
        };
        // A late-join node is gated off the network (and reported crashed)
        // until the driver flips the join flag at its join round.
        let mut join_flag = None;
        if let Some((node, _)) = cluster.late_join() {
            let gated = LateJoinAdversary::new(adversary, node);
            join_flag = Some(gated.handle());
            adversary = Box::new(gated);
        }
        let mut sim = Simulation::with_adversary(scenario.sim_config(), nodes, adversary);
        for (at, node, tx) in scenario.injection_schedule(n) {
            sim.inject_transaction_at(node, tx, at);
        }
        sim.metrics_mut()
            .set_window_start(SimTime::ZERO + scenario.warmup);
        // A late join segments the drive first: run in short slices until a
        // reference node has delivered the join round, then flip the gated
        // node onto the network and rebuild it fresh in state-sync mode —
        // it starts at the join point with nothing and must range-fetch the
        // whole prefix through the block-fetch sub-protocol.
        if let Some((node, at_round)) = cluster.late_join() {
            let reference = measured_nodes(cluster, scenario)
                .into_iter()
                .next()
                .or_else(|| (0..n as u32).map(NodeId).find(|id| *id != node))
                .expect("a late join needs at least one other node");
            let slice = Duration::from_millis(10);
            let mut now = Duration::ZERO;
            while now < scenario.duration && (sim.deliveries(reference).len() as u64) < at_round {
                now = (now + slice).min(scenario.duration);
                sim.run_until(SimTime::ZERO + now);
            }
            join_flag
                .expect("late join implies a gated adversary")
                .store(true, std::sync::atomic::Ordering::SeqCst);
            let rebuild = cluster.rebuilder();
            sim.restart_node(node, move |old| {
                drop(old);
                let mut fresh = rebuild(node);
                fresh.begin_state_sync();
                fresh
            });
        }
        // Kill-restart faults segment the drive: the adversary already
        // suppresses the killed node's traffic inside its down window, so
        // the kill itself needs no driving — but at each restart point the
        // node's state machine must be torn down and rebuilt from its store
        // (total amnesia without one), which only the driver can do.
        let restarts = restart_schedule(scenario);
        let ingress_report = if let Some(load) = &scenario.ingress {
            if cluster.late_join().is_some() {
                return Err(Error::Config(
                    "an ingress load cannot be combined with a late join (both slice the drive)"
                        .into(),
                ));
            }
            // Ingress slices the whole drive: each 2 ms slice serves the
            // client fleet against the per-node gates (virtual time, fully
            // deterministic), injects what was admitted, advances simulated
            // time, then feeds newly delivered blocks back into the gates'
            // and the fleet's commit accounting.
            let slice = Duration::from_millis(2);
            let gates = ClusterIngress::new(n, load.admission.clone());
            let deadline = scenario.duration.saturating_sub(load.drain).as_nanos() as u64;
            let mut fleet = ClientFleet::new(load, n, scenario.seed, deadline);
            let windows = planned_down_windows(scenario, INGRESS_GUARD);
            let mut cursors = vec![0usize; n];
            let rebuild = cluster.rebuilder();
            let mut restarts = restarts.into_iter().peekable();
            let mut now = Duration::ZERO;
            while now < scenario.duration {
                let now_nanos = now.as_nanos() as u64;
                for node in 0..n {
                    gates.set_availability(
                        node,
                        if planned_down(&windows, node, now_nanos) {
                            Availability::Down
                        } else {
                            Availability::Up
                        },
                    );
                }
                while restarts.peek().is_some_and(|(at, _, _)| *at <= now) {
                    let (_, node, fault) = restarts.next().expect("peeked");
                    let dir = cluster.node_store_dir(node);
                    let rebuild = &rebuild;
                    sim.restart_node(node, move |old| {
                        drop(old);
                        if let (Some(dir), Some(fault)) = (dir.as_deref(), fault) {
                            apply_disk_fault(dir, fault);
                        }
                        rebuild(node)
                    });
                }
                let mut port = |node: usize, msg: &fireledger_types::rpc::RpcMsg| {
                    let (reply, tx) = gates.handle_at(node, msg, now_nanos);
                    if let Some(tx) = tx {
                        sim.inject_transaction_at(NodeId(node as u32), tx, SimTime::ZERO + now);
                    }
                    Some(reply)
                };
                fleet.poll(now_nanos, &mut port);
                now = (now + slice).min(scenario.duration);
                sim.run_until(SimTime::ZERO + now);
                let end_nanos = now.as_nanos() as u64;
                for (i, cursor) in cursors.iter_mut().enumerate() {
                    let ds = sim.deliveries(NodeId(i as u32));
                    for d in &ds[*cursor..] {
                        gates.gates()[i].note_commit(d.round, d.block.txs.iter());
                        fleet.note_commits(end_nanos, d.block.txs.iter());
                    }
                    *cursor = ds.len();
                }
            }
            Some(fleet.finish())
        } else if restarts.is_empty() {
            // Absolute deadline, not run_for: a late join may already have
            // consumed part of the run in slices above.
            sim.run_until(SimTime::ZERO + scenario.duration);
            None
        } else {
            let rebuild = cluster.rebuilder();
            for (at, node, fault) in restarts {
                if at >= scenario.duration {
                    break;
                }
                sim.run_until(SimTime::ZERO + at);
                let dir = cluster.node_store_dir(node);
                let rebuild = &rebuild;
                sim.restart_node(node, move |old| {
                    // Drop the old state machine first: that closes its
                    // store, so the disk fault hits settled files and the
                    // reopen below sees a consistent (if corrupted)
                    // directory.
                    drop(old);
                    if let (Some(dir), Some(fault)) = (dir.as_deref(), fault) {
                        apply_disk_fault(dir, fault);
                    }
                    rebuild(node)
                });
            }
            sim.run_until(SimTime::ZERO + scenario.duration);
            None
        };

        let measured = measured_nodes(cluster, scenario);
        let summary = sim.summary_for(&measured);
        let deliveries: Vec<Vec<Delivery>> = (0..n)
            .map(|i| sim.deliveries(NodeId(i as u32)).to_vec())
            .collect();
        let times_secs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                sim.delivery_times(NodeId(i as u32))
                    .iter()
                    .map(|t| t.as_secs_f64())
                    .collect()
            })
            .collect();
        let report = RunReport {
            protocol: P::NAME.to_string(),
            scenario: scenario.name.clone(),
            runtime: self.name().to_string(),
            fault_plan: scenario.fault_plan_name(),
            durability: cluster.durability_label(),
            n,
            workers: cluster.params().workers,
            // The simulator is single-threaded by construction; 0 means
            // "not measured" rather than "ran on zero threads".
            threads: 0,
            duration_secs: summary.duration_secs,
            tps: summary.tps,
            bps: summary.bps,
            avg_latency_secs: summary.avg_latency_secs,
            p50_latency_secs: summary.p50_latency_secs,
            p95_latency_secs: summary.p95_latency_secs,
            p99_latency_secs: summary.p99_latency_secs,
            recoveries_per_sec: summary.recoveries_per_sec,
            fallbacks: summary.fallbacks,
            msgs_sent: summary.msgs_sent,
            bytes_sent: summary.bytes_sent,
            signatures: summary.signatures,
            verifications: summary.verifications,
            latency_cdf: sim.metrics().latency_cdf(20),
            phase_breakdown: sim.metrics().phase_breakdown(),
            per_node: delivery_counters(&deliveries, &times_secs),
            ingress: ingress_report.unwrap_or_default(),
            execution: execution_section(cluster, &measured, summary.duration_secs),
        };
        Ok((report, deliveries))
    }
}

enum TimelineEvent {
    Crash(NodeId),
    Pause(NodeId),
    Resume(NodeId),
    Kill(NodeId),
    Restart(NodeId, Option<DiskFault>),
    Inject(NodeId, Transaction),
}

/// Drives an already-spawned real-time cluster through the scenario's
/// timeline (crashes, crash-recover pauses and injections at wall-clock
/// offsets), honours the warm-up window, and assembles the report. Shared
/// by [`Threads`] and [`Tcp`] — the two differ only in how the cluster was
/// spawned. Link faults and partitions are *not* driven from here: they
/// were compiled into the cluster's link shim at spawn time; this timeline
/// carries only the node-level events.
fn drive_realtime<P, C>(
    running: C,
    cluster: &ClusterBuilder<P>,
    scenario: &Scenario,
    runtime_name: &str,
    ingress: Option<std::sync::Arc<ClusterIngress>>,
) -> (RunReport, Vec<Vec<Delivery>>)
where
    P: ClusterProtocol,
    P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    C: RealtimeCluster,
{
    // Sleeping towards a deadline is replaced by short stepped waits when
    // an ingress fleet rides the run: each ~2 ms step serves due clients
    // and feeds observed deliveries back into the commit accounting.
    fn wait_stepping<C: RealtimeCluster>(
        running: &C,
        start: Instant,
        target: Duration,
        drive: &mut Option<IngressDrive>,
    ) {
        if drive.is_none() {
            let now = start.elapsed();
            if target > now {
                std::thread::sleep(target - now);
            }
            return;
        }
        loop {
            let now = start.elapsed();
            if let Some(d) = drive.as_mut() {
                d.step(running, now);
            }
            if now >= target {
                return;
            }
            std::thread::sleep((target - now).min(Duration::from_millis(2)));
        }
    }

    let n = cluster.params().n();
    let mut timeline: Vec<(Duration, TimelineEvent)> = Vec::new();
    for fault in &scenario.crashes {
        timeline.push((fault.at, TimelineEvent::Crash(fault.node)));
    }
    for (node, at) in cluster.crash_times() {
        timeline.push((at, TimelineEvent::Crash(node)));
    }
    if let Some(plan) = &scenario.faults {
        for nf in &plan.node_faults {
            match nf.recover_at {
                // A crash-recover fault pauses (state kept) and resumes;
                // a plain plan crash is as permanent as a scenario crash.
                Some(recover) => {
                    timeline.push((nf.crash_at, TimelineEvent::Pause(nf.node)));
                    timeline.push((recover, TimelineEvent::Resume(nf.node)));
                }
                None => timeline.push((nf.crash_at, TimelineEvent::Crash(nf.node))),
            }
        }
        // Kill-restart faults: the kill destroys the node's protocol state
        // (its store closes with it); the restart optionally injects a disk
        // fault into the settled store directory, then rebuilds the node
        // from whatever the disk can prove.
        for kf in &plan.kill_faults {
            timeline.push((kf.kill_at, TimelineEvent::Kill(kf.node)));
            if let Some(at) = kf.restart_at {
                timeline.push((at, TimelineEvent::Restart(kf.node, kf.disk_fault)));
            }
        }
    }
    for (at, node, tx) in scenario.injection_schedule(n) {
        timeline.push((at.as_duration(), TimelineEvent::Inject(node, tx)));
    }
    timeline.sort_by_key(|(at, _)| *at);

    // A warm-up as long as the run would leave an empty measurement
    // window; fall back to measuring the whole run.
    let warmup = if scenario.warmup < scenario.duration {
        scenario.warmup
    } else {
        Duration::ZERO
    };
    let snapshot = |running: &C| -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| {
                let ds = running.deliveries(NodeId(i as u32));
                (
                    ds.len() as u64,
                    ds.iter().map(|d| d.block.len() as u64).sum(),
                )
            })
            .collect()
    };

    let start = Instant::now();
    // The cluster's own clock origin: delivery timestamps are offsets from
    // it, so submit stamps must be taken against the *same* instant —
    // measuring them from `start` would inflate every latency by the
    // spawn→drive gap (mesh dialing, stage-thread spawning).
    let cluster_start = running.start();
    let mut ingress_drive = match (&scenario.ingress, ingress) {
        (Some(load), Some(ci)) => Some(IngressDrive::new(
            ci,
            load,
            n,
            scenario.seed,
            scenario.duration,
            planned_down_windows(scenario, INGRESS_GUARD),
        )),
        _ => None,
    };
    // A late join is driven by delivery progress, not time: poll a
    // reference node until it has delivered the join round, then restart
    // the dormant node — the rebuild hook brings it up in state-sync mode
    // and it range-fetches the prefix it missed. Timeline events keep
    // their absolute offsets; any whose offset passes during the wait fire
    // immediately after it.
    if let Some((node, at_round)) = cluster.late_join() {
        let reference = measured_nodes(cluster, scenario)
            .into_iter()
            .next()
            .or_else(|| (0..n as u32).map(NodeId).find(|id| *id != node))
            .expect("a late join needs at least one other node");
        while start.elapsed() < scenario.duration
            && (running.deliveries(reference).len() as u64) < at_round
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        running.restart(node);
    }
    let mut warmup_counts: Option<Vec<(u64, u64)>> = None;
    let mut warmup_at = Duration::ZERO;
    // Submit-time stamps of every injected transaction, keyed by identity:
    // matching them against delivery timestamps below yields real
    // submit→commit latency percentiles for the real-time runtimes.
    let mut submit_times: HashMap<(u64, u64), f64> = HashMap::new();
    for (at, event) in timeline {
        if at >= scenario.duration {
            break;
        }
        // Snapshot delivery counters at the warm-up boundary, before any
        // event scheduled after it is applied.
        if warmup_counts.is_none() && at >= warmup {
            wait_stepping(&running, start, warmup, &mut ingress_drive);
            warmup_at = start.elapsed();
            warmup_counts = Some(snapshot(&running));
        }
        wait_stepping(&running, start, at, &mut ingress_drive);
        match event {
            TimelineEvent::Crash(node) => running.crash(node),
            TimelineEvent::Pause(node) => running.pause(node),
            TimelineEvent::Resume(node) => running.resume(node),
            TimelineEvent::Kill(node) => running.kill(node),
            TimelineEvent::Restart(node, fault) => {
                if let (Some(dir), Some(fault)) = (cluster.node_store_dir(node), fault) {
                    apply_disk_fault(&dir, fault);
                }
                running.restart(node);
            }
            TimelineEvent::Inject(node, tx) => {
                submit_times.insert(tx.id(), cluster_start.elapsed().as_secs_f64());
                running.submit(node, tx);
            }
        }
    }
    if warmup_counts.is_none() {
        wait_stepping(&running, start, warmup, &mut ingress_drive);
        warmup_at = start.elapsed();
        warmup_counts = Some(snapshot(&running));
    }
    wait_stepping(&running, start, scenario.duration, &mut ingress_drive);
    // Quiesce: work the gates accepted near the drain deadline may still be
    // committing; give it a bounded grace before declaring it lost.
    if let Some(d) = ingress_drive.as_mut() {
        let grace_deadline = scenario.duration + INGRESS_QUIESCE_GRACE;
        while d.outstanding() > 0 && start.elapsed() < grace_deadline {
            std::thread::sleep(Duration::from_millis(2));
            d.step(&running, start.elapsed());
        }
    }
    // Snapshot the delivery timeline just before shutdown (the cluster's
    // clock dies with it). A delivery racing this snapshot at most loses
    // its timestamp, never its count.
    let times_secs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            running
                .delivery_times(NodeId(i as u32))
                .iter()
                .map(|t| t.as_secs_f64())
                .collect()
        })
        .collect();
    let threads = running.thread_count();
    let deliveries = running.shutdown();
    let elapsed = start.elapsed();
    let window_secs = (elapsed - warmup_at).as_secs_f64().max(1e-9);
    // Close the commit-observation race: a block delivered between the last
    // ingress step and the shutdown snapshot is only in `deliveries`.
    let ingress_report = ingress_drive
        .map(|d| d.finish(&deliveries, elapsed.as_nanos() as u64))
        .unwrap_or_default();

    let per_node = delivery_counters(&deliveries, &times_secs);
    let at_warmup = warmup_counts.unwrap_or_else(|| vec![(0, 0); n]);
    let measured = measured_nodes(cluster, scenario);
    let k = measured.len().max(1) as f64;
    let (blocks, txs) = measured.iter().fold((0u64, 0u64), |(b, t), id| {
        let d = &per_node[id.as_usize()];
        let (wb, wt) = at_warmup[id.as_usize()];
        (
            b + d.blocks.saturating_sub(wb),
            t + d.txs.saturating_sub(wt),
        )
    });

    // Submit→commit latency over the injected transactions: for each
    // measured node, an injected transaction's latency is the wall-clock
    // offset of the delivery containing it minus its submit offset. Empty
    // (fields stay zero) under a purely saturated workload, where there is
    // nothing with a submit time to measure.
    let mut samples: Vec<f64> = Vec::new();
    if !submit_times.is_empty() {
        for id in &measured {
            let node = id.as_usize();
            for (delivery, at) in deliveries[node].iter().zip(&times_secs[node]) {
                for tx in &delivery.block.txs {
                    if let Some(submitted) = submit_times.get(&tx.id()) {
                        samples.push((at - submitted).max(0.0));
                    }
                }
            }
        }
        samples.sort_by(f64::total_cmp);
    }
    let percentile = |pct: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let rank = ((pct / 100.0) * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    };
    let latency_cdf: Vec<(f64, f64)> = if samples.is_empty() {
        Vec::new()
    } else {
        let points = 20usize.min(samples.len());
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                (percentile(frac * 100.0), frac)
            })
            .collect()
    };

    let report = RunReport {
        protocol: P::NAME.to_string(),
        scenario: scenario.name.clone(),
        runtime: runtime_name.to_string(),
        fault_plan: scenario.fault_plan_name(),
        durability: cluster.durability_label(),
        n,
        workers: cluster.params().workers,
        threads,
        duration_secs: window_secs,
        tps: txs as f64 / k / window_secs,
        bps: blocks as f64 / k / window_secs,
        avg_latency_secs: if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        },
        p50_latency_secs: percentile(50.0),
        p95_latency_secs: percentile(95.0),
        p99_latency_secs: percentile(99.0),
        latency_cdf,
        per_node,
        ingress: ingress_report,
        execution: execution_section(cluster, &measured, window_secs),
        ..Default::default()
    };
    (report, deliveries)
}

/// The per-node ingress gate assembly for a real-time run, or `None` when
/// the scenario carries no ingress load.
fn realtime_ingress(scenario: &Scenario, n: usize) -> Option<std::sync::Arc<ClusterIngress>> {
    scenario
        .ingress
        .as_ref()
        .map(|load| std::sync::Arc::new(ClusterIngress::new(n, load.admission.clone())))
}

/// The real-time threaded runtime (in-process channels).
///
/// The scenario's duration is wall-clock time here: a 2-second scenario takes
/// 2 real seconds. The warm-up window is honoured the same way as on the
/// simulator: deliveries are snapshotted once the warm-up elapses, and rates
/// cover only the measurement window. Latency fields are real wall-clock
/// submit→commit measurements over the scenario's *injected* transactions
/// (each submit is stamped, and matched against the delivery timestamps of
/// the blocks that include it); under a purely saturated workload there is
/// nothing with a submit time and they stay zero. Message counters and the
/// lifecycle breakdown are not instrumented on this runtime (protocols pay
/// real CPU instead of reporting observations), so those report fields are
/// zero — the schema is unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct Threads;

impl Runtime for Threads {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn run_full<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        scenario: &Scenario,
    ) -> Result<(RunReport, Vec<Vec<Delivery>>)>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        validate_fault_budget(cluster, scenario)?;
        let mut nodes = cluster.build()?;
        // With the parallel crypto pipeline enabled, install the protocol's
        // pre-verify stage so inbound messages are validated off-loop, and
        // tell the nodes their ingress is pre-verified.
        let pre_verify = cluster.pre_verifier();
        if pre_verify.is_some() {
            P::enable_preverified_ingress(&mut nodes);
        }
        // With execution enabled, every shard gets a dedicated stage thread
        // so delivered blocks are executed off the consensus loops. Held
        // until the run is over (drained and joined on drop).
        let _exec_stages = cluster.spawn_exec_stages();
        let mut running = ThreadedCluster::spawn_cluster(
            nodes,
            scenario.faults.clone(),
            pre_verify,
            Some(realtime_rebuilder(cluster)),
            &dormant_nodes(cluster),
        );
        let ingress = realtime_ingress(scenario, cluster.params().n());
        if let Some(ci) = &ingress {
            running.attach_rpc(ci.clone());
        }
        Ok(drive_realtime(
            running,
            cluster,
            scenario,
            self.name(),
            ingress,
        ))
    }
}

/// The real-time TCP runtime (real sockets over localhost).
///
/// Timing semantics are identical to [`Threads`]; the difference is the
/// transport: every message is encoded through its `WireCodec` layout,
/// framed per `docs/WIRE_FORMAT.md`, written to a real `TcpStream`, and
/// decoded on the receiving node — so a run on this runtime validates the
/// entire wire format under protocol load, not just the protocol logic.
/// Socket setup failures surface as [`Error::Io`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Tcp;

impl Runtime for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn run_full<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        scenario: &Scenario,
    ) -> Result<(RunReport, Vec<Vec<Delivery>>)>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        validate_fault_budget(cluster, scenario)?;
        let mut nodes = cluster.build()?;
        let pre_verify = cluster.pre_verifier();
        if pre_verify.is_some() {
            P::enable_preverified_ingress(&mut nodes);
        }
        // Execution stage threads, as on the threaded runtime.
        let _exec_stages = cluster.spawn_exec_stages();
        let mut running = TcpCluster::spawn_engine(
            nodes,
            scenario.faults.clone(),
            pre_verify,
            Some(realtime_rebuilder(cluster)),
            &dormant_nodes(cluster),
            cluster.tcp_engine(),
        )
        .map_err(|e| Error::Io(format!("tcp mesh setup: {e}")))?;
        let ingress = realtime_ingress(scenario, cluster.params().n());
        if let Some(ci) = &ingress {
            running
                .serve_rpc(ci.clone())
                .map_err(|e| Error::Io(format!("rpc listeners: {e}")))?;
        }
        Ok(drive_realtime(
            running,
            cluster,
            scenario,
            self.name(),
            ingress,
        ))
    }
}

/// Timing of one late-join catch-up fetch, measured by
/// [`Threads::measure_catch_up`] / [`Tcp::measure_catch_up`].
///
/// The window starts the instant the dormant node is restarted (which
/// happens the moment a reference node's ledger reaches the join round) and
/// ends when the late node's own delivery log reaches that round — so it
/// covers exactly the range fetch of the missed prefix, not the live tail
/// the node keeps delivering afterwards.
#[derive(Clone, Copy, Debug)]
pub struct CatchUp {
    /// Rounds the late node had to fetch (the builder's join round).
    pub gap_rounds: u64,
    /// Wall-clock seconds from its restart to its `gap_rounds`-th delivery.
    pub fetch_secs: f64,
}

impl CatchUp {
    /// Fetched blocks per wall-clock second over the catch-up window.
    pub fn blocks_per_sec(&self) -> f64 {
        self.gap_rounds as f64 / self.fetch_secs.max(1e-9)
    }
}

/// Drives an already-spawned real-time cluster through a late-join
/// catch-up and times the range fetch. Shared by the two real-time
/// runtimes' `measure_catch_up`; `deadline` bounds the whole run (growing
/// the reference ledger to the join round *plus* the fetch itself).
fn time_catch_up<C: RealtimeCluster>(
    running: C,
    late: NodeId,
    gap: u64,
    n: usize,
    deadline: Duration,
) -> Result<CatchUp> {
    let reference = (0..n as u32)
        .map(NodeId)
        .find(|id| *id != late)
        .expect("a late join needs at least one other node");
    let _ = running.start();
    let start = Instant::now();
    while (running.deliveries(reference).len() as u64) < gap {
        if start.elapsed() > deadline {
            running.shutdown();
            return Err(Error::InvalidState(format!(
                "catch-up: reference {reference} did not reach round {gap} within {deadline:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let restart_at = Instant::now();
    running.restart(late);
    while (running.deliveries(late).len() as u64) < gap {
        if start.elapsed() > deadline {
            running.shutdown();
            return Err(Error::InvalidState(format!(
                "catch-up: late node {late} did not fetch {gap} rounds within {deadline:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let fetch_secs = restart_at.elapsed().as_secs_f64();
    running.shutdown();
    Ok(CatchUp {
        gap_rounds: gap,
        fetch_secs,
    })
}

impl Threads {
    /// Measures a late-join catch-up fetch on the threaded runtime: spawns
    /// `cluster` (which must carry a [`ClusterBuilder::with_late_join`]
    /// node) with the late node dormant, waits for a reference ledger to
    /// reach the join round, restarts the late node, and times its range
    /// fetch of the missed prefix. `deadline` bounds the whole run.
    pub fn measure_catch_up<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        deadline: Duration,
    ) -> Result<CatchUp>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        let (late, gap) = cluster.late_join().ok_or_else(|| {
            Error::Config("measure_catch_up needs ClusterBuilder::with_late_join".into())
        })?;
        let mut nodes = cluster.build()?;
        let pre_verify = cluster.pre_verifier();
        if pre_verify.is_some() {
            P::enable_preverified_ingress(&mut nodes);
        }
        let running = ThreadedCluster::spawn_cluster(
            nodes,
            None,
            pre_verify,
            Some(realtime_rebuilder(cluster)),
            &dormant_nodes(cluster),
        );
        time_catch_up(running, late, gap, cluster.params().n(), deadline)
    }
}

impl Tcp {
    /// Measures a late-join catch-up fetch on the TCP runtime — the
    /// socket-mesh counterpart of [`Threads::measure_catch_up`], so the
    /// timed fetch exercises the `SyncMsg` wire format end to end.
    pub fn measure_catch_up<P>(
        &self,
        cluster: &ClusterBuilder<P>,
        deadline: Duration,
    ) -> Result<CatchUp>
    where
        P: ClusterProtocol,
        P::Msg: WireSize + WireCodec + Clone + Send + Sync + fmt::Debug + 'static,
    {
        let (late, gap) = cluster.late_join().ok_or_else(|| {
            Error::Config("measure_catch_up needs ClusterBuilder::with_late_join".into())
        })?;
        let mut nodes = cluster.build()?;
        let pre_verify = cluster.pre_verifier();
        if pre_verify.is_some() {
            P::enable_preverified_ingress(&mut nodes);
        }
        let running = TcpCluster::spawn_engine(
            nodes,
            None,
            pre_verify,
            Some(realtime_rebuilder(cluster)),
            &dormant_nodes(cluster),
            cluster.tcp_engine(),
        )
        .map_err(|e| Error::Io(format!("tcp mesh setup: {e}")))?;
        time_catch_up(running, late, gap, cluster.params().n(), deadline)
    }
}
