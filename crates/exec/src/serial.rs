//! The naive serial reference executor.
//!
//! [`SerialExecutor`] is the specification the pipelined engine is measured
//! against: it applies every transaction of every block strictly in order on
//! one thread and computes roots with the sequential merkle path. No
//! partitioning, no pool, no pipeline — deliberately boring. The
//! differential battery (`tests/tests/exec_matrix.rs`) demands bit-identical
//! roots and receipts between this and [`crate::ExecShared`] at every width.

use crate::apply::execute_block;
use crate::state::StateMachine;
use fireledger_types::{Hash, Receipt, Transaction};

/// A strictly serial executor holding its own state.
#[derive(Clone, Debug, Default)]
pub struct SerialExecutor {
    state: StateMachine,
    blocks: u64,
}

impl SerialExecutor {
    /// An executor over the empty state.
    pub fn new() -> Self {
        SerialExecutor::default()
    }

    /// An executor over the deterministic genesis state (see
    /// [`StateMachine::with_genesis`]).
    pub fn with_genesis(accounts: u64, balance: u64) -> Self {
        SerialExecutor {
            state: StateMachine::with_genesis(accounts, balance),
            blocks: 0,
        }
    }

    /// Applies one block's transactions in order, returning their receipts.
    pub fn execute_block(&mut self, txs: &[Transaction]) -> Vec<Receipt> {
        self.blocks += 1;
        execute_block(&mut self.state, txs, 1)
    }

    /// The canonical state root, computed fully sequentially.
    pub fn root(&self) -> Hash {
        self.state.root_serial()
    }

    /// Number of blocks executed.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// A view of the underlying state (for test assertions).
    pub fn state(&self) -> &StateMachine {
        &self.state
    }
}
