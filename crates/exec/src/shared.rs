//! The pipelined executor: a shared handle consensus commits blocks into.
//!
//! [`ExecShared`] is the seam between ordering and execution. The consensus
//! layer enqueues each block at the moment it is *delivered* (committed,
//! immutable — execution never speculates and never rolls back), and one of
//! two drivers drains the queue:
//!
//! * **inline** (no stage attached — the simulator's mode): every enqueue
//!   executes immediately on the caller, so execution interleaves with the
//!   event loop at deterministic points and simulated runs stay
//!   bit-identical across hosts and thread counts;
//! * **stage thread** (threads/tcp runtimes): a dedicated per-node thread
//!   blocks on the queue and executes behind the commit frontier, which is
//!   the pipelining — ordering round `k+1` overlaps executing round `k`.
//!
//! A proposer reads [`ExecShared::prefix_root`] to stamp the lagged root
//! into the next header it builds. If the stage thread has not reached that
//! round yet, the call *work-steals* — it drains the queue inline up to the
//! needed round instead of blocking on the stage — so the consensus loop
//! can always make progress and a slow stage degrades throughput, never
//! liveness (and never deadlocks: the computation is bounded and owned by
//! whoever holds the lock).
//!
//! Roots carried in delivered headers are cross-checked against locally
//! executed roots ([`ExecShared::expect_prefix`]): a divergence is a typed,
//! observable fault — counted, detailed, and surfaced — never a silent
//! fork.

use crate::apply::execute_block;
use crate::state::StateMachine;
use fireledger_crypto::CryptoPool;
use fireledger_types::{Block, Hash, Receipt, Transaction};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Configuration for the execution stage (see
/// `ClusterBuilder::with_execution`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for the conflict-partitioned apply; `0` inherits the
    /// crypto pool's width. Every width computes identical results — this
    /// trades latency only.
    pub apply_width: usize,
    /// Accounts `0..genesis_accounts` exist from round 0 with
    /// `genesis_balance` each, so transfer workloads have accounts to move
    /// funds between. Part of the deterministic genesis: every replica
    /// derives the same base state and base root.
    pub genesis_accounts: u64,
    /// Initial balance of each genesis account.
    pub genesis_balance: u64,
    /// How many per-round roots to retain for lagged-root lookups and
    /// cross-checks; older roots are pruned.
    pub root_retention: u64,
    /// Bound on the stage queue (`0` = unbounded). With a stage attached,
    /// an [`ExecShared::enqueue`] against a full queue **blocks** until the
    /// stage frees a slot — a lagging executor back-pressures block
    /// assembly instead of growing the queue without limit. The
    /// [`ExecShared::lagging`] high-watermark (half the bound) lets a
    /// driver throttle proactively before enqueue blocks outright. Inline
    /// mode (no stage) never queues, so the bound is moot there.
    pub max_queue: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            apply_width: 0,
            genesis_accounts: 0,
            genesis_balance: 0,
            root_retention: 4096,
            max_queue: 4096,
        }
    }
}

impl ExecConfig {
    /// A config with `accounts` genesis accounts holding `balance` each.
    pub fn with_genesis(accounts: u64, balance: u64) -> Self {
        ExecConfig {
            genesis_accounts: accounts,
            genesis_balance: balance,
            ..ExecConfig::default()
        }
    }

    /// Sets the stage-queue bound (`0` = unbounded).
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }
}

/// The round `f + 3` lag between a header and the executed prefix whose
/// root it carries.
///
/// Overlord lags execution one block behind proposal; under BBFC(`f+1`)
/// finality the generalization is: when the proposer of round `k` builds
/// its header (on the piggyback vote path of round `k−1`), the newest
/// *definite* — hence delivered, hence executable — round is exactly
/// `k − (f+3)`. The header for round `k` therefore carries the state root
/// after executing delivered rounds `0 ..= k−(f+3)`; for `k < f+3` it
/// carries the genesis root. The rule is a pure function of `k`, so every
/// correct replica predicts and cross-checks the same root for the same
/// header on every runtime.
pub fn root_lag(f: u32) -> u64 {
    f as u64 + 3
}

/// The executed prefix a header at round `k` commits to under `lag`:
/// `None` = the genesis (empty-prefix) root, `Some(j)` = rounds `0..=j`.
pub fn prefix_for_header(k: u64, lag: u64) -> Option<u64> {
    k.checked_sub(lag)
}

/// Counters and identity facts about one executor, snapshot via
/// [`ExecShared::stats`]. All fields are deterministic in simulated runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Committed blocks executed.
    pub executed_blocks: u64,
    /// Transactions executed (every ordered tx, opaque fillers included).
    pub executed_txs: u64,
    /// Receipts by [`Receipt::kind_index`] — bucket 0 is `Applied`.
    pub receipts: [u64; Receipt::KINDS],
    /// Root cross-checks that matched.
    pub root_checks: u64,
    /// Root cross-checks that diverged (a typed fault, never silent).
    pub root_mismatches: u64,
    /// Cross-checks deferred past the retention window (counted, uncheckable).
    pub unverifiable_claims: u64,
    /// Times a consensus-loop `prefix_root` call drained the queue itself
    /// because the stage thread was behind (work-stealing assists).
    pub inline_assists: u64,
    /// Times this executor was reset for a restart-from-disk replay.
    pub resets: u64,
    /// The newest executed round, if any block has been executed.
    pub last_round: Option<u64>,
    /// The state root after the newest executed round (the genesis root
    /// when nothing has been executed yet).
    pub last_root: Hash,
}

impl ExecStats {
    /// State transitions actually applied (receipts in the `Applied`
    /// bucket) — the paper-facing "executed transitions" unit.
    pub fn applied_transitions(&self) -> u64 {
        self.receipts[0]
    }
}

/// One recorded root divergence: what the header claimed vs what local
/// execution produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootMismatch {
    /// The executed prefix the claim was about (`None` = genesis prefix).
    pub prefix: Option<u64>,
    /// The round of the header that carried the claim.
    pub claimed_at: u64,
    /// The root the header carried.
    pub claimed: Hash,
    /// The root local execution produced.
    pub local: Hash,
}

/// The verdict of a root cross-check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaimCheck {
    /// The claimed root equals the locally executed root.
    Match,
    /// The claimed root diverges from the locally executed root.
    Mismatch(RootMismatch),
    /// The local executor has not reached the claimed prefix yet; the check
    /// runs (and is counted) when it does.
    Deferred,
}

/// How many [`RootMismatch`] details to retain (counters keep counting).
const MAX_MISMATCH_DETAILS: usize = 16;

struct ExecCore {
    state: StateMachine,
    pool: CryptoPool,
    width: usize,
    genesis: (u64, u64),
    base_root: Hash,
    /// Rounds `0..next_round` are executed; `queue[i]` holds the block for
    /// round `next_round + i` (delivery is dense in rounds).
    next_round: u64,
    queue: VecDeque<Block>,
    /// Stage-queue bound (`0` = unbounded); see [`ExecConfig::max_queue`].
    max_queue: usize,
    /// Root after executing each round, pruned to the retention window.
    roots: BTreeMap<u64, Hash>,
    retention: u64,
    /// Claims whose prefix round is not executed yet, keyed by that round.
    pending_claims: BTreeMap<u64, Vec<(u64, Hash)>>,
    stats: ExecStats,
    mismatches: Vec<RootMismatch>,
    tx_scratch: Vec<Transaction>,
    hash_scratch: Vec<Hash>,
}

impl ExecCore {
    fn new(config: &ExecConfig, pool: CryptoPool) -> Self {
        let state = StateMachine::with_genesis(config.genesis_accounts, config.genesis_balance);
        let mut tx_scratch = Vec::new();
        let mut hash_scratch = Vec::new();
        let base_root = state.root_with_pool(&pool, &mut tx_scratch, &mut hash_scratch);
        let width = if config.apply_width == 0 {
            pool.threads()
        } else {
            config.apply_width
        };
        ExecCore {
            state,
            pool,
            width,
            genesis: (config.genesis_accounts, config.genesis_balance),
            base_root,
            next_round: 0,
            queue: VecDeque::new(),
            max_queue: config.max_queue,
            roots: BTreeMap::new(),
            retention: config.root_retention.max(8),
            pending_claims: BTreeMap::new(),
            stats: ExecStats {
                last_root: base_root,
                ..ExecStats::default()
            },
            mismatches: Vec::new(),
            tx_scratch,
            hash_scratch,
        }
    }

    /// Executes the front block of the queue. Returns false when idle.
    fn step(&mut self) -> bool {
        let Some(block) = self.queue.pop_front() else {
            return false;
        };
        let round = self.next_round;
        let receipts = execute_block(&mut self.state, &block.txs, self.width);
        for receipt in &receipts {
            self.stats.receipts[receipt.kind_index()] += 1;
        }
        self.stats.executed_txs += receipts.len() as u64;
        self.stats.executed_blocks += 1;
        let root =
            self.state
                .root_with_pool(&self.pool, &mut self.tx_scratch, &mut self.hash_scratch);
        self.roots.insert(round, root);
        if round >= self.retention {
            self.roots = self.roots.split_off(&(round - self.retention + 1));
        }
        self.stats.last_round = Some(round);
        self.stats.last_root = root;
        self.next_round = round + 1;
        // Claims deferred until this round can be judged now.
        if let Some(claims) = self.pending_claims.remove(&round) {
            for (claimed_at, claimed) in claims {
                self.judge(Some(round), claimed_at, claimed, root);
            }
        }
        true
    }

    fn drain(&mut self) {
        while self.step() {}
    }

    /// Drains until `round` is executed (or the queue runs dry short of it).
    fn drain_through(&mut self, round: u64) -> bool {
        let mut assisted = false;
        while self.next_round <= round && self.step() {
            assisted = true;
        }
        if assisted {
            self.stats.inline_assists += 1;
        }
        self.next_round > round
    }

    fn local_root(&self, prefix: Option<u64>) -> Option<Hash> {
        match prefix {
            None => Some(self.base_root),
            Some(round) => self.roots.get(&round).copied(),
        }
    }

    fn judge(
        &mut self,
        prefix: Option<u64>,
        claimed_at: u64,
        claimed: Hash,
        local: Hash,
    ) -> ClaimCheck {
        self.stats.root_checks += 1;
        if claimed == local {
            return ClaimCheck::Match;
        }
        self.stats.root_mismatches += 1;
        let detail = RootMismatch {
            prefix,
            claimed_at,
            claimed,
            local,
        };
        if self.mismatches.len() < MAX_MISMATCH_DETAILS {
            self.mismatches.push(detail.clone());
        }
        ClaimCheck::Mismatch(detail)
    }

    fn reset(&mut self) {
        let resets = self.stats.resets + 1;
        *self = ExecCore::new(
            &ExecConfig {
                apply_width: self.width,
                genesis_accounts: self.genesis.0,
                genesis_balance: self.genesis.1,
                root_retention: self.retention,
                max_queue: self.max_queue,
            },
            self.pool.clone(),
        );
        self.stats.resets = resets;
    }
}

struct Inner {
    core: Mutex<ExecCore>,
    work: Condvar,
    /// Signals a producer blocked on a full stage queue that a slot freed
    /// up (the stage stepped, a work-steal drained, or teardown began).
    space: Condvar,
    stage_attached: AtomicBool,
    shutdown: AtomicBool,
}

/// A cloneable shared handle to one executor (one consensus stream's state
/// shard — under FLO each worker stream owns its own).
#[derive(Clone)]
pub struct ExecShared {
    inner: Arc<Inner>,
}

impl ExecShared {
    /// Creates an executor over `pool` (whose width also defaults the apply
    /// width) with no stage attached: enqueues execute inline until
    /// [`ExecShared::attach_stage`].
    pub fn new(config: &ExecConfig, pool: CryptoPool) -> Self {
        ExecShared {
            inner: Arc::new(Inner {
                core: Mutex::new(ExecCore::new(config, pool)),
                work: Condvar::new(),
                space: Condvar::new(),
                stage_attached: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// The root of the genesis state (the root a header carries while the
    /// executed prefix is still empty).
    pub fn base_root(&self) -> Hash {
        self.lock().base_root
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecCore> {
        self.inner.core.lock().expect("exec state poisoned")
    }

    /// Hands a committed block to the executor. `round` must be the next
    /// round in the dense delivery order.
    ///
    /// With no stage attached the block executes before this returns (the
    /// simulator's deterministic slicing); with a stage attached the block
    /// is queued and the stage thread is woken. When the stage queue is at
    /// its [`ExecConfig::max_queue`] bound, the call **blocks** until the
    /// stage frees a slot — this is the execution-lag back-pressure that
    /// throttles block assembly behind a slow executor. Teardown
    /// ([`ExecShared::shutdown_stage`]) releases a blocked producer; its
    /// block is dropped, which is fine — teardown's [`ExecShared::finish`]
    /// only accounts blocks that were actually delivered to the queue.
    pub fn enqueue(&self, round: u64, block: &Block) {
        let mut core = self.lock();
        let expected = core.next_round + core.queue.len() as u64;
        if round < expected {
            // A replayed duplicate (e.g. re-emitted recovered prefix);
            // executing it again would double-apply.
            return;
        }
        assert_eq!(
            round, expected,
            "non-dense delivery into executor: got round {round}, expected {expected}"
        );
        if self.inner.stage_attached.load(Ordering::Acquire) {
            // `expected` is invariant under stage steps (each pop also
            // advances `next_round`), so the density check above stays
            // valid across this wait.
            while core.max_queue > 0
                && core.queue.len() >= core.max_queue
                && !self.inner.shutdown.load(Ordering::Acquire)
            {
                core = self.inner.space.wait(core).expect("exec state poisoned");
            }
            if core.max_queue > 0 && core.queue.len() >= core.max_queue {
                return; // teardown while blocked: drop the block
            }
            core.queue.push_back(block.clone());
            drop(core);
            self.inner.work.notify_one();
        } else {
            core.queue.push_back(block.clone());
            core.drain();
        }
    }

    /// Blocks queued for the stage right now (0 in inline mode's steady
    /// state — inline enqueues drain before returning).
    pub fn queue_len(&self) -> usize {
        self.lock().queue.len()
    }

    /// The high-watermark signal: true when the stage queue is more than
    /// half its [`ExecConfig::max_queue`] bound — the executor is lagging
    /// and block assembly should slow down before
    /// [`ExecShared::enqueue`] starts blocking outright. Always false when
    /// unbounded.
    pub fn lagging(&self) -> bool {
        let core = self.lock();
        core.max_queue > 0 && core.queue.len() * 2 > core.max_queue
    }

    /// The state root after executing delivered rounds `0..=?` — `None`
    /// asks for the genesis root (always available); `Some(j)` returns
    /// `None` only when round `j` has not been *delivered* yet (or its root
    /// aged out of retention).
    ///
    /// If round `j` is delivered but not yet executed, the call drains the
    /// queue inline (work-stealing from a lagging stage thread) so a
    /// proposer is never blocked behind the stage.
    pub fn prefix_root(&self, prefix: Option<u64>) -> Option<Hash> {
        let mut core = self.lock();
        if let Some(j) = prefix {
            if core.next_round <= j {
                core.drain_through(j);
                // A work-steal shrank the queue: release blocked producers.
                self.inner.space.notify_all();
            }
        }
        core.local_root(prefix)
    }

    /// Cross-checks a root claimed by a delivered header at `claimed_at`
    /// against local execution of the same prefix.
    ///
    /// An executed prefix judges immediately; an unexecuted one defers the
    /// check to the moment the stage executes that round (still counted in
    /// [`ExecStats`]). A pruned prefix is counted unverifiable.
    pub fn expect_prefix(&self, prefix: Option<u64>, claimed_at: u64, claimed: Hash) -> ClaimCheck {
        let mut core = self.lock();
        match prefix {
            None => {
                let local = core.base_root;
                core.judge(None, claimed_at, claimed, local)
            }
            Some(j) if j < core.next_round => match core.local_root(Some(j)) {
                Some(local) => core.judge(Some(j), claimed_at, claimed, local),
                None => {
                    core.stats.unverifiable_claims += 1;
                    ClaimCheck::Deferred
                }
            },
            Some(j) => {
                core.pending_claims
                    .entry(j)
                    .or_default()
                    .push((claimed_at, claimed));
                ClaimCheck::Deferred
            }
        }
    }

    /// Marks a stage thread as attached: enqueues stop executing inline and
    /// start waking the stage instead.
    pub fn attach_stage(&self) {
        self.inner.stage_attached.store(true, Ordering::Release);
    }

    /// The stage-thread body: executes queued blocks until
    /// [`ExecShared::shutdown_stage`] is called and the queue is empty.
    ///
    /// The lock is released between blocks, so the consensus loop's
    /// enqueues and root reads interleave with bounded wait.
    pub fn run_stage(&self) {
        loop {
            let mut core = self.lock();
            while core.queue.is_empty() {
                if self.inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                core = self.inner.work.wait(core).expect("exec state poisoned");
            }
            core.step();
            drop(core);
            // The queue just shrank: release a producer blocked on the
            // bound.
            self.inner.space.notify_all();
        }
    }

    /// Asks the stage thread (if any) to exit once its queue is drained.
    pub fn shutdown_stage(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify_all();
        self.inner.space.notify_all();
    }

    /// Drains any queued blocks inline — used at teardown to make stats
    /// reflect every delivered block even if the stage was behind.
    pub fn finish(&self) {
        self.lock().drain();
        self.inner.space.notify_all();
    }

    /// Resets to genesis for a restart-from-disk replay: state, queue,
    /// roots and pending claims are dropped; the reset is counted.
    pub fn reset(&self) {
        self.lock().reset();
        self.inner.space.notify_all();
    }

    /// A snapshot of the executor's counters.
    pub fn stats(&self) -> ExecStats {
        self.lock().stats.clone()
    }

    /// Details of recorded root divergences (capped; counters keep going).
    pub fn mismatches(&self) -> Vec<RootMismatch> {
        self.lock().mismatches.clone()
    }

    /// The root after the newest executed round (genesis root when nothing
    /// executed) — the number the identity matrices compare across nodes.
    pub fn latest_root(&self) -> Hash {
        self.lock().stats.last_root
    }
}

/// Spawns a dedicated stage thread draining `shard`, returning its handle.
///
/// The thread exits after [`ExecShared::shutdown_stage`]; [`ExecStage`]
/// joins on drop so a cluster teardown cannot leak execution threads.
pub fn spawn_stage(shard: &ExecShared) -> ExecStage {
    shard.attach_stage();
    let runner = shard.clone();
    let handle = std::thread::Builder::new()
        .name("exec-stage".into())
        .spawn(move || runner.run_stage())
        .expect("spawn exec stage");
    ExecStage {
        shard: shard.clone(),
        handle: Some(handle),
    }
}

/// Join guard for a spawned execution stage thread.
pub struct ExecStage {
    shard: ExecShared,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ExecStage {
    fn drop(&mut self) {
        self.shard.shutdown_stage();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_crypto::{CryptoPool, SimKeyStore};
    use fireledger_types::{BlockHeader, NodeId, Round, TxOp, WorkerId, GENESIS_HASH};
    use std::sync::Arc;

    fn pool() -> CryptoPool {
        CryptoPool::inline(Arc::new(SimKeyStore::generate(4, 0)))
    }

    fn block(round: u64, txs: Vec<Transaction>) -> Block {
        let header = BlockHeader::new(
            Round(round),
            WorkerId(0),
            NodeId(0),
            GENESIS_HASH,
            GENESIS_HASH,
            txs.len() as u32,
            0,
        );
        Block::new(header, txs)
    }

    fn transfer(seq: u64, from: u64, to: u64, amount: u64, nonce: u64) -> Transaction {
        Transaction {
            client: from,
            seq,
            payload: TxOp::Transfer {
                from,
                to,
                amount,
                nonce,
            }
            .encode_payload(),
        }
    }

    #[test]
    fn inline_mode_executes_on_enqueue() {
        let exec = ExecShared::new(&ExecConfig::with_genesis(4, 100), pool());
        let base = exec.base_root();
        exec.enqueue(0, &block(0, vec![transfer(0, 0, 1, 10, 0)]));
        let stats = exec.stats();
        assert_eq!(stats.executed_blocks, 1);
        assert_eq!(stats.applied_transitions(), 1);
        assert_ne!(stats.last_root, base);
        assert_eq!(exec.prefix_root(None), Some(base));
        assert_eq!(exec.prefix_root(Some(0)), Some(stats.last_root));
        // An undelivered round has no root yet.
        assert_eq!(exec.prefix_root(Some(5)), None);
    }

    #[test]
    fn duplicate_replay_is_ignored_and_gaps_panic() {
        let exec = ExecShared::new(&ExecConfig::default(), pool());
        let b = block(0, vec![]);
        exec.enqueue(0, &b);
        exec.enqueue(0, &b); // replayed duplicate: ignored
        assert_eq!(exec.stats().executed_blocks, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.enqueue(5, &block(5, vec![]));
        }));
        assert!(result.is_err(), "a delivery gap must be loud");
    }

    #[test]
    fn claims_check_immediately_or_deferred() {
        let exec = ExecShared::new(&ExecConfig::with_genesis(2, 50), pool());
        let base = exec.base_root();
        assert_eq!(exec.expect_prefix(None, 1, base), ClaimCheck::Match);
        assert!(matches!(
            exec.expect_prefix(None, 2, Hash([9; 32])),
            ClaimCheck::Mismatch(_)
        ));
        // A claim about a future round defers, then judges on execution.
        let claimed = {
            // Predict the root by running a twin executor.
            let twin = ExecShared::new(&ExecConfig::with_genesis(2, 50), pool());
            twin.enqueue(0, &block(0, vec![transfer(0, 0, 1, 5, 0)]));
            twin.latest_root()
        };
        assert_eq!(
            exec.expect_prefix(Some(0), 4, claimed),
            ClaimCheck::Deferred
        );
        exec.enqueue(0, &block(0, vec![transfer(0, 0, 1, 5, 0)]));
        let stats = exec.stats();
        assert_eq!(stats.root_checks, 3);
        assert_eq!(stats.root_mismatches, 1);
        assert_eq!(exec.mismatches().len(), 1);
    }

    #[test]
    fn bounded_queue_blocks_enqueue_until_the_stage_frees_a_slot() {
        let cfg = ExecConfig::with_genesis(4, 1000).with_max_queue(2);
        let exec = ExecShared::new(&cfg, pool());
        // Attach the stage flag without running a stage thread, so the
        // queue only drains when the test says so.
        exec.attach_stage();
        exec.enqueue(0, &block(0, vec![]));
        assert!(!exec.lagging(), "one of two queued is below the watermark");
        exec.enqueue(1, &block(1, vec![]));
        assert!(exec.lagging(), "full queue must trip the high watermark");
        assert_eq!(exec.queue_len(), 2);

        // A third enqueue must block on the bound...
        let blocked = {
            let exec = exec.clone();
            std::thread::spawn(move || exec.enqueue(2, &block(2, vec![])))
        };
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(
            !blocked.is_finished(),
            "enqueue sailed past a full bounded queue"
        );

        // ...until a drain frees slots; the blocked producer then lands
        // its block on the (now shorter) queue.
        exec.finish();
        blocked.join().expect("blocked producer");
        assert_eq!(exec.queue_len(), 1);
        assert!(!exec.lagging());
        exec.finish();
        assert_eq!(exec.stats().executed_blocks, 3);
        assert_eq!(exec.stats().last_round, Some(2));
    }

    #[test]
    fn teardown_releases_a_producer_blocked_on_the_bound() {
        let cfg = ExecConfig::with_genesis(2, 10).with_max_queue(1);
        let exec = ExecShared::new(&cfg, pool());
        exec.attach_stage();
        exec.enqueue(0, &block(0, vec![]));
        let blocked = {
            let exec = exec.clone();
            std::thread::spawn(move || exec.enqueue(1, &block(1, vec![])))
        };
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(!blocked.is_finished());
        // Shutdown must wake the producer, which drops its block.
        exec.shutdown_stage();
        blocked.join().expect("blocked producer");
        assert_eq!(exec.queue_len(), 1, "the dropped block was not queued");
    }

    #[test]
    fn stage_thread_executes_and_work_stealing_assists() {
        let exec = ExecShared::new(&ExecConfig::with_genesis(4, 100), pool());
        let stage = spawn_stage(&exec);
        for round in 0..50u64 {
            exec.enqueue(round, &block(round, vec![transfer(round, 0, 1, 1, round)]));
        }
        // The proposer-side read must be able to answer without waiting for
        // the stage to catch up.
        let root = exec.prefix_root(Some(49));
        assert!(root.is_some());
        drop(stage);
        let stats = exec.stats();
        assert_eq!(stats.executed_blocks, 50);
        assert_eq!(stats.last_round, Some(49));
    }

    #[test]
    fn reset_restores_genesis_and_counts() {
        let exec = ExecShared::new(&ExecConfig::with_genesis(2, 10), pool());
        let base = exec.base_root();
        exec.enqueue(0, &block(0, vec![transfer(0, 0, 1, 1, 0)]));
        assert_ne!(exec.latest_root(), base);
        exec.reset();
        assert_eq!(exec.latest_root(), base);
        assert_eq!(exec.stats().resets, 1);
        assert_eq!(exec.stats().executed_blocks, 0);
        // Replay reaches the identical root.
        exec.enqueue(0, &block(0, vec![transfer(0, 0, 1, 1, 0)]));
        assert_eq!(exec.prefix_root(Some(0)), Some(exec.latest_root()));
    }

    #[test]
    fn lag_rule_prefixes() {
        assert_eq!(root_lag(1), 4);
        assert_eq!(prefix_for_header(0, 4), None);
        assert_eq!(prefix_for_header(3, 4), None);
        assert_eq!(prefix_for_header(4, 4), Some(0));
        assert_eq!(prefix_for_header(10, 4), Some(6));
    }
}
