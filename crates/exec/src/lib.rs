//! # fireledger-exec
//!
//! The deterministic execution engine: an account/KV state machine applied
//! as a *pipeline stage behind consensus commit*, decoupling ordering from
//! execution (ROADMAP item 3; Overlord's layered design, adapted).
//!
//! Ordering in this workspace is cheap — crypto is off the consensus loop —
//! so executing transactions serially *inside* that loop would waste the
//! win. Instead the consensus layer hands each block to [`ExecShared`] at
//! the moment it is delivered (committed and immutable, so execution never
//! speculates and never rolls back), and execution proceeds behind the
//! commit frontier: on a dedicated stage thread under the real-time
//! runtimes, or inline at deterministic points under the simulator.
//!
//! The header for round `k` carries the canonical state root of the
//! executed prefix through round `k − (f+3)` — the newest round guaranteed
//! definite when that header is built (see [`root_lag`]) — and every
//! replica cross-checks delivered roots against its own execution
//! ([`ExecShared::expect_prefix`]); a divergence is a typed, counted fault.
//!
//! The crate is layered exactly like its proofs:
//!
//! * [`state`] — the state machine and one shared transition function;
//! * [`apply`] — conflict-partitioned (factorized) block application,
//!   identical results at every width;
//! * [`serial`] — the naive reference executor the differential battery
//!   compares against;
//! * [`shared`] — the pipelined executor handle, lag rule, root
//!   cross-checks and stage thread.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apply;
pub mod serial;
pub mod shared;
pub mod state;

pub use apply::execute_block;
pub use serial::SerialExecutor;
pub use shared::{
    prefix_for_header, root_lag, spawn_stage, ClaimCheck, ExecConfig, ExecShared, ExecStage,
    ExecStats, RootMismatch,
};
pub use state::{Account, StateAccess, StateMachine};
