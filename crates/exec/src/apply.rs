//! Conflict-partitioned block execution.
//!
//! The hot computation of the execution stage is "apply β ordered
//! transactions". Done naively that is serial even when most transactions
//! touch disjoint keys — the factorized-evaluation lesson: restructure the
//! computation so independent work never serializes. [`execute_block`]
//! partitions a block's ops into *conflict components* (union-find over the
//! account/KV keys each op touches), applies each component serially against
//! a scratch view of just its keys — components on scoped worker threads
//! when `width > 1` — and writes the disjoint deltas back.
//!
//! ## Determinism
//!
//! Components are disjoint by construction: any two ops sharing a key land
//! in the same component, so serial order *within* a component equals the
//! global serial order restricted to it, and components cannot observe each
//! other. The result — receipts in transaction order and the post-state —
//! is therefore a pure function of the input, identical at every width; the
//! differential tests in `tests/tests/exec_matrix.rs` pin this against the
//! fully serial reference executor.

use crate::state::{apply_op_on, Account, StateAccess, StateMachine};
use fireledger_types::{Bytes, DecodedOp, Receipt, Transaction, TxOp};
use std::collections::HashMap;

/// Blocks with fewer executable ops than this always run serially: the
/// partitioning bookkeeping has to outweigh a thread spawn to be worth it.
const PAR_THRESHOLD: usize = 16;

/// A key an op touches: account ids and KV keys live in disjoint namespaces.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Account(u64),
    Kv(u64),
}

/// The keys `op` touches, in a fixed small buffer (an op touches ≤ 2).
fn touched(op: &TxOp) -> [Option<Slot>; 2] {
    match op {
        TxOp::CreateAccount { account, .. } => [Some(Slot::Account(*account)), None],
        TxOp::Transfer { from, to, .. } => [Some(Slot::Account(*from)), Some(Slot::Account(*to))],
        TxOp::KvPut { key, .. } | TxOp::KvDelete { key } | TxOp::Cas { key, .. } => {
            [Some(Slot::Kv(*key)), None]
        }
    }
}

/// Union-find over op indices with path halving; no ranks — component
/// shapes here are tiny and the find path is the hot part.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Deterministic tie-break: the smaller index becomes the root,
            // so component identity is independent of union order.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// A per-component scratch view over exactly the keys its ops touch.
///
/// Extracted from the shared state before the fan-out, mutated in place by
/// the component's serial replay, written back after. `None` = the key does
/// not exist (distinct from untouched: untouched keys are absent from the
/// maps entirely, and a component op can never name one).
struct ScratchState {
    accounts: HashMap<u64, Option<Account>>,
    kv: HashMap<u64, Option<Bytes>>,
}

impl StateAccess for ScratchState {
    fn account(&self, id: u64) -> Option<Account> {
        *self.accounts.get(&id).expect("untouched account key")
    }
    fn set_account(&mut self, id: u64, account: Account) {
        self.accounts.insert(id, Some(account));
    }
    fn kv_get(&self, key: u64) -> Option<Bytes> {
        self.kv.get(&key).expect("untouched kv key").clone()
    }
    fn kv_set(&mut self, key: u64, value: Bytes) {
        self.kv.insert(key, Some(value));
    }
    fn kv_delete(&mut self, key: u64) {
        self.kv.insert(key, None);
    }
}

/// One conflict component: op indices in ascending (= serial) order plus
/// the scratch view of the keys they touch.
struct Component {
    ops: Vec<usize>,
    scratch: ScratchState,
}

/// Executes a block's transactions against `state`, returning one receipt
/// per transaction in order.
///
/// `width ≤ 1` (and small or fully conflicting blocks) take the serial
/// path; wider widths fan conflict components out across scoped worker
/// threads. Results are identical at every width.
pub fn execute_block(state: &mut StateMachine, txs: &[Transaction], width: usize) -> Vec<Receipt> {
    let decoded: Vec<DecodedOp> = txs
        .iter()
        .map(|tx| TxOp::classify_payload(&tx.payload))
        .collect();
    let executable = decoded
        .iter()
        .filter(|d| matches!(d, DecodedOp::Op(_)))
        .count();
    if width <= 1 || executable < PAR_THRESHOLD {
        return decoded
            .iter()
            .map(|d| match d {
                DecodedOp::Op(op) => state.apply_op(op),
                DecodedOp::Opaque => Receipt::Opaque,
                DecodedOp::Malformed => Receipt::Malformed,
            })
            .collect();
    }
    execute_partitioned(state, &decoded, width)
}

fn execute_partitioned(
    state: &mut StateMachine,
    decoded: &[DecodedOp],
    width: usize,
) -> Vec<Receipt> {
    // Group ops into conflict components: ops sharing any key are unioned.
    let mut uf = UnionFind::new(decoded.len());
    let mut first_touch: HashMap<Slot, usize> = HashMap::new();
    for (i, d) in decoded.iter().enumerate() {
        let DecodedOp::Op(op) = d else { continue };
        for slot in touched(op).into_iter().flatten() {
            match first_touch.get(&slot) {
                Some(&j) => uf.union(i, j),
                None => {
                    first_touch.insert(slot, i);
                }
            }
        }
    }

    // Materialize components in first-op order (deterministic), extracting
    // each one's scratch view from the shared state.
    let mut by_root: HashMap<usize, usize> = HashMap::new();
    let mut components: Vec<Component> = Vec::new();
    for (i, d) in decoded.iter().enumerate() {
        let DecodedOp::Op(op) = d else { continue };
        let root = uf.find(i);
        let idx = *by_root.entry(root).or_insert_with(|| {
            components.push(Component {
                ops: Vec::new(),
                scratch: ScratchState {
                    accounts: HashMap::new(),
                    kv: HashMap::new(),
                },
            });
            components.len() - 1
        });
        let comp = &mut components[idx];
        comp.ops.push(i);
        for slot in touched(op).into_iter().flatten() {
            match slot {
                Slot::Account(id) => {
                    comp.scratch
                        .accounts
                        .entry(id)
                        .or_insert_with(|| StateAccess::account(state, id));
                }
                Slot::Kv(key) => {
                    comp.scratch
                        .kv
                        .entry(key)
                        .or_insert_with(|| state.kv_get(key));
                }
            }
        }
    }

    let mut receipts = vec![Receipt::Opaque; decoded.len()];
    for (i, d) in decoded.iter().enumerate() {
        if matches!(d, DecodedOp::Malformed) {
            receipts[i] = Receipt::Malformed;
        }
    }

    // Replay each component serially against its scratch view; components
    // are disjoint, so any schedule produces the same result. One fully
    // conflicting block degenerates to one component — run it inline.
    let slots: Vec<(usize, Receipt)> = if components.len() == 1 {
        run_components(&mut components, decoded)
    } else {
        let threads = width.min(components.len());
        let chunk = components.len().div_ceil(threads);
        let mut out: Vec<(usize, Receipt)> = Vec::with_capacity(decoded.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = components
                .chunks_mut(chunk)
                .map(|chunk| scope.spawn(|| run_components(chunk, decoded)))
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("apply worker panicked"));
            }
        });
        out
    };
    for (i, receipt) in slots {
        receipts[i] = receipt;
    }

    // Write the disjoint deltas back.
    for comp in components {
        for (id, entry) in comp.scratch.accounts {
            if let Some(account) = entry {
                state.set_account(id, account);
            }
            // `None` means the account never came to exist (accounts are
            // never deleted, so an extracted `Some` can't become `None`).
        }
        for (key, entry) in comp.scratch.kv {
            match entry {
                Some(value) => state.kv_set(key, value),
                None => state.kv_delete(key),
            }
        }
    }
    receipts
}

/// Serially replays each component's ops against its scratch view.
fn run_components(components: &mut [Component], decoded: &[DecodedOp]) -> Vec<(usize, Receipt)> {
    let mut out = Vec::with_capacity(components.iter().map(|c| c.ops.len()).sum());
    for comp in components {
        for &i in &comp.ops {
            let DecodedOp::Op(op) = &decoded[i] else {
                unreachable!("components hold executable ops only");
            };
            out.push((i, apply_op_on(&mut comp.scratch, op)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireledger_types::DetRng;

    fn op_tx(seq: u64, op: &TxOp) -> Transaction {
        Transaction {
            client: 0,
            seq,
            payload: op.encode_payload(),
        }
    }

    /// A randomized mixed workload over a small hot key space (lots of
    /// conflicts) plus a large cold one (lots of disjoint components).
    fn random_block(rng: &mut DetRng, len: usize) -> Vec<Transaction> {
        (0..len as u64)
            .map(|seq| {
                let hot = rng.gen_below(4) == 0;
                let account = if hot {
                    rng.gen_below(4)
                } else {
                    rng.gen_below(1000)
                };
                let op = match rng.gen_below(7) {
                    0 => TxOp::CreateAccount {
                        account,
                        balance: rng.gen_below(1000),
                    },
                    1 | 2 => TxOp::Transfer {
                        from: account,
                        to: rng.gen_below(if hot { 4 } else { 1000 }),
                        amount: rng.gen_below(200),
                        nonce: rng.gen_below(3),
                    },
                    3 => TxOp::KvPut {
                        key: rng.gen_below(64),
                        value: Bytes::from(vec![rng.next_u64() as u8; 8]),
                    },
                    4 => TxOp::KvDelete {
                        key: rng.gen_below(64),
                    },
                    5 => TxOp::Cas {
                        key: rng.gen_below(64),
                        expect: None,
                        swap: Bytes::from(vec![7]),
                    },
                    // An opaque filler transaction.
                    _ => return Transaction::zeroed(9, seq, 32),
                };
                op_tx(seq, &op)
            })
            .collect()
    }

    #[test]
    fn partitioned_apply_equals_serial_at_every_width() {
        let mut rng = DetRng::seed_from_u64(0xE0);
        for case in 0..40 {
            let block = random_block(&mut rng, 96);
            let mut serial = StateMachine::with_genesis(8, 500);
            let serial_receipts = execute_block(&mut serial, &block, 1);
            for width in [2, 3, 4, 8] {
                let mut par = StateMachine::with_genesis(8, 500);
                let par_receipts = execute_block(&mut par, &block, width);
                assert_eq!(
                    serial_receipts, par_receipts,
                    "receipts diverged: case {case}, width {width}"
                );
                assert_eq!(serial, par, "state diverged: case {case}, width {width}");
                assert_eq!(serial.root_serial(), par.root_serial());
            }
        }
    }

    #[test]
    fn fully_conflicting_block_runs_in_one_component() {
        // Every op touches account 0 — the degenerate single-component case.
        let block: Vec<Transaction> = (0..32)
            .map(|seq| {
                op_tx(
                    seq,
                    &TxOp::Transfer {
                        from: 0,
                        to: 1,
                        amount: 1,
                        nonce: seq,
                    },
                )
            })
            .collect();
        let mut serial = StateMachine::with_genesis(2, 1000);
        let mut par = StateMachine::with_genesis(2, 1000);
        assert_eq!(
            execute_block(&mut serial, &block, 1),
            execute_block(&mut par, &block, 4)
        );
        assert_eq!(serial, par);
        assert_eq!(serial.account_state(0).unwrap().nonce, 32);
    }

    #[test]
    fn opaque_and_malformed_receipts_keep_their_positions() {
        let mut block = vec![
            Transaction::zeroed(1, 0, 16),
            op_tx(
                1,
                &TxOp::CreateAccount {
                    account: 1,
                    balance: 1,
                },
            ),
        ];
        block.push(Transaction {
            client: 1,
            seq: 2,
            payload: Bytes::from(vec![fireledger_types::OP_MAGIC, 0xFF]),
        });
        let mut state = StateMachine::new();
        assert_eq!(
            execute_block(&mut state, &block, 4),
            vec![Receipt::Opaque, Receipt::Applied, Receipt::Malformed]
        );
    }
}
