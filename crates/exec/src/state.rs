//! The deterministic account/KV state machine and its canonical root.
//!
//! [`StateMachine`] holds two sorted namespaces — accounts (balance + nonce)
//! and a raw KV store — and applies [`TxOp`]s with total, deterministic
//! semantics: every op yields exactly one [`Receipt`] and every replica that
//! applies the same ops in the same order reaches the same state.
//!
//! The transition function itself is written once, generically over
//! [`StateAccess`], and shared by the serial path and the
//! conflict-partitioned parallel path (`crate::apply`) — the two *cannot*
//! implement different semantics because they run the same code against
//! different views of the state.

use fireledger_crypto::{merkle_root_into, CryptoPool};
use fireledger_types::{Bytes, Hash, Receipt, Transaction, TxOp};
use std::collections::BTreeMap;

/// One account: a balance and a replay-protection nonce.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Account {
    /// Current balance in abstract units.
    pub balance: u64,
    /// Number of transfers this account has successfully debited.
    pub nonce: u64,
}

/// Read/write access to the subset of state an op touches.
///
/// [`StateMachine`] implements it over the full maps; the parallel apply
/// path implements it over per-component scratch views. [`apply_op_on`] is
/// generic over this trait so both paths share one transition function.
pub trait StateAccess {
    /// The account stored under `id`, if any.
    fn account(&self, id: u64) -> Option<Account>;
    /// Creates or overwrites the account under `id`.
    fn set_account(&mut self, id: u64, account: Account);
    /// The value stored under `key`, if any.
    fn kv_get(&self, key: u64) -> Option<Bytes>;
    /// Creates or overwrites the value under `key`.
    fn kv_set(&mut self, key: u64, value: Bytes);
    /// Removes `key`; removing an absent key is a no-op.
    fn kv_delete(&mut self, key: u64);
}

/// Applies one op against `view`, returning its receipt.
///
/// The guard order is part of the deterministic semantics (and pinned by
/// tests): a transfer checks existence of the debited account, existence of
/// the credited account, the nonce, then the balance — so a transfer that
/// fails several guards at once always yields the same receipt on every
/// replica.
pub fn apply_op_on<V: StateAccess>(view: &mut V, op: &TxOp) -> Receipt {
    match op {
        TxOp::CreateAccount { account, balance } => {
            if view.account(*account).is_some() {
                return Receipt::AccountExists { account: *account };
            }
            view.set_account(
                *account,
                Account {
                    balance: *balance,
                    nonce: 0,
                },
            );
            Receipt::Applied
        }
        TxOp::Transfer {
            from,
            to,
            amount,
            nonce,
        } => {
            let Some(mut src) = view.account(*from) else {
                return Receipt::UnknownAccount { account: *from };
            };
            let Some(dst) = view.account(*to) else {
                return Receipt::UnknownAccount { account: *to };
            };
            if src.nonce != *nonce {
                return Receipt::BadNonce {
                    expected: src.nonce,
                    got: *nonce,
                };
            }
            if src.balance < *amount {
                return Receipt::InsufficientFunds {
                    balance: src.balance,
                    needed: *amount,
                };
            }
            src.balance -= amount;
            src.nonce += 1;
            if from == to {
                // A self-transfer debits and credits the same account: the
                // credit lands on the already-debited balance, so only the
                // nonce advances.
                src.balance = src.balance.saturating_add(*amount);
                view.set_account(*from, src);
            } else {
                let mut dst = dst;
                dst.balance = dst.balance.saturating_add(*amount);
                view.set_account(*from, src);
                view.set_account(*to, dst);
            }
            Receipt::Applied
        }
        TxOp::KvPut { key, value } => {
            view.kv_set(*key, value.clone());
            Receipt::Applied
        }
        TxOp::KvDelete { key } => {
            view.kv_delete(*key);
            Receipt::Applied
        }
        TxOp::Cas { key, expect, swap } => {
            if view.kv_get(*key) != *expect {
                return Receipt::CasMismatch;
            }
            view.kv_set(*key, swap.clone());
            Receipt::Applied
        }
    }
}

/// The full account/KV state, with a canonical merkle root over its sorted
/// entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StateMachine {
    accounts: BTreeMap<u64, Account>,
    kv: BTreeMap<u64, Bytes>,
}

/// `seq` tag of an account leaf in the root's leaf encoding.
const ACCOUNT_LEAF: u64 = 0;
/// `seq` tag of a KV leaf in the root's leaf encoding.
const KV_LEAF: u64 = 1;

impl StateMachine {
    /// An empty state.
    pub fn new() -> Self {
        StateMachine::default()
    }

    /// A state pre-populated with accounts `0..accounts`, each holding
    /// `balance` — the deterministic genesis every replica of an
    /// exec-enabled cluster starts from, so transfer workloads have
    /// existing accounts to move funds between.
    pub fn with_genesis(accounts: u64, balance: u64) -> Self {
        let mut state = StateMachine::new();
        for id in 0..accounts {
            state.accounts.insert(id, Account { balance, nonce: 0 });
        }
        state
    }

    /// Applies one op, returning its receipt.
    pub fn apply_op(&mut self, op: &TxOp) -> Receipt {
        apply_op_on(self, op)
    }

    /// Number of existing accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Number of live KV entries.
    pub fn kv_count(&self) -> usize {
        self.kv.len()
    }

    /// The account stored under `id`, if any (test/inspection helper).
    pub fn account_state(&self, id: u64) -> Option<Account> {
        self.accounts.get(&id).copied()
    }

    /// The value stored under `key`, if any (test/inspection helper).
    pub fn kv_state(&self, key: u64) -> Option<Bytes> {
        self.kv.get(&key).cloned()
    }

    /// Iterates the sorted accounts (the parallel apply path extracts
    /// touched entries through [`StateAccess`], not through this).
    pub fn accounts(&self) -> impl Iterator<Item = (&u64, &Account)> {
        self.accounts.iter()
    }

    /// Serializes every state entry into `out` as leaf carriers for the
    /// merkle root: all accounts in key order, then all KV entries in key
    /// order, each packed into the workspace's [`Transaction`] type so the
    /// crypto pool's parallel merkle path is reused unchanged
    /// ([`CryptoPool::merkle_root_par`]). Account and KV leaves carry
    /// distinct `seq` tags, so an account id can never collide with an
    /// equal KV key.
    pub fn leaf_transactions(&self, out: &mut Vec<Transaction>) {
        out.clear();
        out.reserve(self.accounts.len() + self.kv.len());
        for (id, account) in &self.accounts {
            let mut payload = [0u8; 16];
            payload[..8].copy_from_slice(&account.balance.to_be_bytes());
            payload[8..].copy_from_slice(&account.nonce.to_be_bytes());
            out.push(Transaction::new(*id, ACCOUNT_LEAF, payload.to_vec()));
        }
        for (key, value) in &self.kv {
            out.push(Transaction::new(*key, KV_LEAF, value.clone()));
        }
    }

    /// The canonical state root: the merkle root over
    /// [`StateMachine::leaf_transactions`], leaf digests fanned out across
    /// `pool`'s width. Position-stable by construction — the root is a pure
    /// function of the state, independent of the pool width.
    pub fn root_with_pool(
        &self,
        pool: &CryptoPool,
        tx_scratch: &mut Vec<Transaction>,
        hash_scratch: &mut Vec<Hash>,
    ) -> Hash {
        self.leaf_transactions(tx_scratch);
        pool.merkle_root_par(tx_scratch, hash_scratch)
    }

    /// [`StateMachine::root_with_pool`] without a pool: the fully
    /// sequential root, for the serial reference executor and for tests.
    pub fn root_serial(&self) -> Hash {
        let mut txs = Vec::new();
        let mut scratch = Vec::new();
        self.leaf_transactions(&mut txs);
        merkle_root_into(&txs, &mut scratch)
    }
}

impl StateAccess for StateMachine {
    fn account(&self, id: u64) -> Option<Account> {
        self.accounts.get(&id).copied()
    }
    fn set_account(&mut self, id: u64, account: Account) {
        self.accounts.insert(id, account);
    }
    fn kv_get(&self, key: u64) -> Option<Bytes> {
        self.kv.get(&key).cloned()
    }
    fn kv_set(&mut self, key: u64, value: Bytes) {
        self.kv.insert(key, value);
    }
    fn kv_delete(&mut self, key: u64) {
        self.kv.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_transfer_lifecycle() {
        let mut s = StateMachine::new();
        assert_eq!(
            s.apply_op(&TxOp::CreateAccount {
                account: 1,
                balance: 100
            }),
            Receipt::Applied
        );
        assert_eq!(
            s.apply_op(&TxOp::CreateAccount {
                account: 1,
                balance: 5
            }),
            Receipt::AccountExists { account: 1 }
        );
        assert_eq!(
            s.apply_op(&TxOp::CreateAccount {
                account: 2,
                balance: 0
            }),
            Receipt::Applied
        );
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 1,
                to: 2,
                amount: 30,
                nonce: 0
            }),
            Receipt::Applied
        );
        assert_eq!(
            s.account_state(1),
            Some(Account {
                balance: 70,
                nonce: 1
            })
        );
        assert_eq!(
            s.account_state(2),
            Some(Account {
                balance: 30,
                nonce: 0
            })
        );
        // Replay of the same nonce is rejected.
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 1,
                to: 2,
                amount: 30,
                nonce: 0
            }),
            Receipt::BadNonce {
                expected: 1,
                got: 0
            }
        );
        // Over-draw.
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 1,
                to: 2,
                amount: 1000,
                nonce: 1
            }),
            Receipt::InsufficientFunds {
                balance: 70,
                needed: 1000
            }
        );
        // Unknown parties: debited account checked before credited.
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 9,
                to: 8,
                amount: 1,
                nonce: 0
            }),
            Receipt::UnknownAccount { account: 9 }
        );
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 1,
                to: 8,
                amount: 1,
                nonce: 1
            }),
            Receipt::UnknownAccount { account: 8 }
        );
    }

    #[test]
    fn zero_amount_and_self_transfers_consume_the_nonce() {
        let mut s = StateMachine::with_genesis(2, 50);
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 0,
                to: 1,
                amount: 0,
                nonce: 0
            }),
            Receipt::Applied
        );
        assert_eq!(
            s.account_state(0),
            Some(Account {
                balance: 50,
                nonce: 1
            })
        );
        assert_eq!(
            s.apply_op(&TxOp::Transfer {
                from: 0,
                to: 0,
                amount: 50,
                nonce: 1
            }),
            Receipt::Applied
        );
        assert_eq!(
            s.account_state(0),
            Some(Account {
                balance: 50,
                nonce: 2
            })
        );
    }

    #[test]
    fn kv_and_cas_semantics() {
        let mut s = StateMachine::new();
        let v1 = Bytes::from(vec![1]);
        let v2 = Bytes::from(vec![2]);
        // CAS against an absent key with a Some guard fails...
        assert_eq!(
            s.apply_op(&TxOp::Cas {
                key: 7,
                expect: Some(v1.clone()),
                swap: v2.clone()
            }),
            Receipt::CasMismatch
        );
        // ...and with a None guard succeeds (create-if-absent).
        assert_eq!(
            s.apply_op(&TxOp::Cas {
                key: 7,
                expect: None,
                swap: v1.clone()
            }),
            Receipt::Applied
        );
        assert_eq!(s.kv_state(7), Some(v1.clone()));
        assert_eq!(
            s.apply_op(&TxOp::Cas {
                key: 7,
                expect: Some(v1.clone()),
                swap: v2.clone()
            }),
            Receipt::Applied
        );
        assert_eq!(s.kv_state(7), Some(v2.clone()));
        // Put / delete are unconditional; deleting twice is still Applied.
        assert_eq!(
            s.apply_op(&TxOp::KvPut { key: 8, value: v1 }),
            Receipt::Applied
        );
        assert_eq!(s.apply_op(&TxOp::KvDelete { key: 8 }), Receipt::Applied);
        assert_eq!(s.apply_op(&TxOp::KvDelete { key: 8 }), Receipt::Applied);
        assert_eq!(s.kv_state(8), None);
    }

    #[test]
    fn root_tracks_state_and_namespaces_do_not_collide() {
        let mut a = StateMachine::new();
        let empty = a.root_serial();
        a.apply_op(&TxOp::CreateAccount {
            account: 5,
            balance: 9,
        });
        let with_account = a.root_serial();
        assert_ne!(empty, with_account);

        // Same numeric key in the KV namespace must hash differently.
        let mut b = StateMachine::new();
        b.apply_op(&TxOp::KvPut {
            key: 5,
            value: Bytes::from(9u64.to_be_bytes().to_vec()),
        });
        assert_ne!(with_account, b.root_serial());

        // Rebuilding the identical state reproduces the identical root.
        let mut c = StateMachine::new();
        c.apply_op(&TxOp::CreateAccount {
            account: 5,
            balance: 9,
        });
        assert_eq!(with_account, c.root_serial());
    }

    #[test]
    fn genesis_is_deterministic() {
        assert_eq!(
            StateMachine::with_genesis(16, 100).root_serial(),
            StateMachine::with_genesis(16, 100).root_serial()
        );
        assert_ne!(
            StateMachine::with_genesis(16, 100).root_serial(),
            StateMachine::with_genesis(17, 100).root_serial()
        );
        assert_ne!(
            StateMachine::with_genesis(16, 100).root_serial(),
            StateMachine::new().root_serial()
        );
    }
}
