//! The on-disk record and segment-footer framing.
//!
//! Both the block log and the WAL are sequences of one fixed-layout record
//! type (docs/WIRE_FORMAT.md §9). All integers are big-endian:
//!
//! ```text
//! record  :=  magic "FLSR" (4)  kind u8  len u32  crc u32  payload len×u8
//! ```
//!
//! `crc` is the CRC-32 (see [`crate::crc32()`]) over `kind ‖ len ‖ payload` —
//! the checksum covers the length field, so a corrupted length can never
//! cause a bogus oversized read to be accepted. `magic` is deliberately
//! outside the checksum: it is the resynchronization sentinel a scanner
//! checks first.
//!
//! A **sealed** segment additionally carries a footer after its last record:
//!
//! ```text
//! footer  :=  offsets count×u64  count u32  crc u32  magic "FLSF" (4)
//! ```
//!
//! The footer is written back-to-front so it can be located from the end of
//! the file without scanning: the last 12 bytes hold `count`, `crc` and the
//! footer magic, and `count × 8` bytes of record offsets precede them. `crc`
//! covers `offsets ‖ count`. A segment whose footer fails validation is
//! replayed by scanning its records instead — the footer is an index, never
//! the source of truth.

use crate::crc32::{crc32, Crc32};

/// Magic prefix of every record.
pub const RECORD_MAGIC: [u8; 4] = *b"FLSR";
/// Magic suffix of a sealed segment's footer.
pub const FOOTER_MAGIC: [u8; 4] = *b"FLSF";
/// Bytes of record framing before the payload: magic + kind + len + crc.
pub const RECORD_HEADER_LEN: usize = 13;
/// Fixed bytes of a footer after the offset table: count + crc + magic.
pub const FOOTER_FIXED_LEN: usize = 12;

/// Upper bound on a single record payload (16 MiB). A length above this is
/// treated as tail corruption rather than attempted as an allocation.
pub const MAX_PAYLOAD_LEN: u32 = 16 * 1024 * 1024;

/// Encodes one record: framing header followed by the payload.
pub fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&len.to_be_bytes());
    crc.update(payload);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(kind);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&crc.finish().to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// One decoded record: its kind byte and payload.
pub type Record = (u8, Vec<u8>);

/// Scans `bytes` front to back, returning every valid record and the byte
/// length of the valid prefix. Scanning stops at the first violation —
/// wrong magic, implausible length, truncated payload or CRC mismatch —
/// which is exactly the crash-consistent replay rule: a torn or corrupt
/// tail is cut back to the last intact record instead of failing the open.
pub fn scan_records(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            break;
        }
        if rest[..4] != RECORD_MAGIC {
            break;
        }
        let kind = rest[4];
        let len = u32::from_be_bytes([rest[5], rest[6], rest[7], rest[8]]);
        if len > MAX_PAYLOAD_LEN || (len as usize) > rest.len() - RECORD_HEADER_LEN {
            break;
        }
        let stored_crc = u32::from_be_bytes([rest[9], rest[10], rest[11], rest[12]]);
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len as usize];
        let mut crc = Crc32::new();
        crc.update(&[kind]);
        crc.update(&len.to_be_bytes());
        crc.update(payload);
        if crc.finish() != stored_crc {
            break;
        }
        records.push((kind, payload.to_vec()));
        pos += RECORD_HEADER_LEN + len as usize;
    }
    (records, pos)
}

/// Encodes a sealed segment's footer for records starting at `offsets`
/// (absolute byte offsets within the segment file, in record order).
pub fn encode_footer(offsets: &[u64]) -> Vec<u8> {
    let count = offsets.len() as u32;
    let mut out = Vec::with_capacity(offsets.len() * 8 + FOOTER_FIXED_LEN);
    for off in offsets {
        out.extend_from_slice(&off.to_be_bytes());
    }
    let mut crc = Crc32::new();
    crc.update(&out);
    crc.update(&count.to_be_bytes());
    let crc = crc.finish();
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// Validates and strips the footer of a sealed segment, returning the record
/// offsets and the byte length of the record region. `None` means the footer
/// is absent or corrupt and the caller should fall back to scanning.
pub fn decode_footer(bytes: &[u8]) -> Option<(Vec<u64>, usize)> {
    if bytes.len() < FOOTER_FIXED_LEN {
        return None;
    }
    let fixed = &bytes[bytes.len() - FOOTER_FIXED_LEN..];
    if fixed[8..12] != FOOTER_MAGIC {
        return None;
    }
    let count = u32::from_be_bytes([fixed[0], fixed[1], fixed[2], fixed[3]]) as usize;
    let stored_crc = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
    let table_len = count.checked_mul(8)?;
    let footer_len = table_len.checked_add(FOOTER_FIXED_LEN)?;
    if footer_len > bytes.len() {
        return None;
    }
    let table_start = bytes.len() - footer_len;
    let table = &bytes[table_start..table_start + table_len];
    if crc32(&bytes[table_start..bytes.len() - 8]) != stored_crc {
        return None;
    }
    let offsets = table
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Some((offsets, table_start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let encoded = encode_record(0x01, b"hello");
        let (records, valid) = scan_records(&encoded);
        assert_eq!(records, vec![(0x01, b"hello".to_vec())]);
        assert_eq!(valid, encoded.len());
    }

    #[test]
    fn scan_stops_at_torn_tail_and_keeps_prefix() {
        let mut bytes = encode_record(0x01, b"first");
        let prefix_len = bytes.len();
        let second = encode_record(0x02, b"second");
        // Append only half the second record — a torn write.
        bytes.extend_from_slice(&second[..second.len() / 2]);
        let (records, valid) = scan_records(&bytes);
        assert_eq!(records, vec![(0x01, b"first".to_vec())]);
        assert_eq!(valid, prefix_len);
    }

    #[test]
    fn scan_stops_at_crc_mismatch() {
        let mut bytes = encode_record(0x01, b"first");
        let mut second = encode_record(0x02, b"second");
        *second.last_mut().unwrap() ^= 0x40; // flip one payload bit
        let prefix_len = bytes.len();
        bytes.extend_from_slice(&second);
        let (records, valid) = scan_records(&bytes);
        assert_eq!(records.len(), 1);
        assert_eq!(valid, prefix_len);
    }

    #[test]
    fn corrupted_length_field_is_rejected_not_overread() {
        let mut bytes = encode_record(0x01, b"payload");
        bytes[5] = 0xFF; // blow up the length field far past the buffer
        let (records, valid) = scan_records(&bytes);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn footer_roundtrip_and_corruption() {
        let offsets = vec![0u64, 18, 57, 200];
        let mut seg = vec![0u8; 220]; // stand-in record region
        seg.extend_from_slice(&encode_footer(&offsets));
        let (decoded, region) = decode_footer(&seg).expect("valid footer");
        assert_eq!(decoded, offsets);
        assert_eq!(region, 220);

        // Any bit flip in the footer invalidates it.
        let mut broken = seg.clone();
        let n = broken.len();
        broken[n - 20] ^= 0x01;
        assert!(decode_footer(&broken).is_none());
        // A short file is not a footer.
        assert!(decode_footer(&seg[..8]).is_none());
    }
}
